//! Blocking and commit-delay instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-scheme registry handles: when a store names its scheme via
/// [`CcStats::for_scheme`], every wait is also recorded into global
/// `cc.<scheme>.*` wait-time histograms, making the paper's §6 scheme
/// comparison available live from one `Registry::snapshot()` instead of
/// only through per-store snapshots.
#[derive(Debug, Clone, Copy)]
struct SchemeObs {
    reader_wait: &'static wh_obs::Histogram,
    writer_wait: &'static wh_obs::Histogram,
    commit_delay: &'static wh_obs::Histogram,
    aborts: &'static wh_obs::Counter,
}

/// Counters of concurrency-control friction: how often and how long anyone
/// blocked, and how long writer commits were delayed. 2VNL's headline claim
/// is that all of these stay at zero while it runs (§1.2); the baselines make
/// them nonzero in characteristic places.
#[derive(Debug, Default)]
pub struct CcStats {
    reader_blocks: AtomicU64,
    reader_block_ns: AtomicU64,
    writer_blocks: AtomicU64,
    writer_block_ns: AtomicU64,
    commit_delays: AtomicU64,
    commit_delay_ns: AtomicU64,
    aborts: AtomicU64,
    obs: Option<SchemeObs>,
}

/// Point-in-time copy of [`CcStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CcStatsSnapshot {
    /// Times a reader had to wait for a lock.
    pub reader_blocks: u64,
    /// Total reader wait time (ns).
    pub reader_block_ns: u64,
    /// Times the writer had to wait for a lock.
    pub writer_blocks: u64,
    /// Total writer wait time (ns).
    pub writer_block_ns: u64,
    /// Writer commits that had to wait (2V2PL certify).
    pub commit_delays: u64,
    /// Total commit wait time (ns).
    pub commit_delay_ns: u64,
    /// Transactions aborted (lock timeouts).
    pub aborts: u64,
}

impl CcStats {
    /// Fresh zeroed counters, not bound to a scheme (no global reporting).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh counters that additionally report into the global registry
    /// under `cc.<scheme>.*` (e.g. `cc.s2pl.reader_wait_ns`). `scheme`
    /// should be a short stable identifier: `s2pl`, `2v2pl`, `mv2pl`, …
    pub fn for_scheme(scheme: &str) -> Self {
        let metric = |m: &str| wh_obs::registry::histogram(&format!("cc.{scheme}.{m}"));
        CcStats {
            obs: Some(SchemeObs {
                reader_wait: metric("reader_wait_ns"),
                writer_wait: metric("writer_wait_ns"),
                commit_delay: metric("commit_delay_ns"),
                aborts: wh_obs::registry::counter(&format!("cc.{scheme}.aborts")),
            }),
            ..Self::default()
        }
    }

    /// Record a reader wait of `d`.
    pub fn reader_blocked(&self, d: Duration) {
        self.reader_blocks.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        self.reader_block_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        if let Some(obs) = &self.obs {
            obs.reader_wait.record_duration(d);
        }
    }

    /// Record a writer wait of `d`.
    pub fn writer_blocked(&self, d: Duration) {
        self.writer_blocks.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        self.writer_block_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        if let Some(obs) = &self.obs {
            obs.writer_wait.record_duration(d);
        }
    }

    /// Record a delayed commit that waited `d`.
    pub fn commit_delayed(&self, d: Duration) {
        self.commit_delays.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        self.commit_delay_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        if let Some(obs) = &self.obs {
            obs.commit_delay.record_duration(d);
        }
    }

    /// Record an abort.
    pub fn aborted(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        if let Some(obs) = &self.obs {
            obs.aborts.inc();
        }
    }

    /// Copy the counters.
    pub fn snapshot(&self) -> CcStatsSnapshot {
        CcStatsSnapshot {
            reader_blocks: self.reader_blocks.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            reader_block_ns: self.reader_block_ns.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            writer_blocks: self.writer_blocks.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            writer_block_ns: self.writer_block_ns.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            commit_delays: self.commit_delays.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            commit_delay_ns: self.commit_delay_ns.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            aborts: self.aborts.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.reader_blocks.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.reader_block_ns.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.writer_blocks.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.writer_block_ns.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.commit_delays.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.commit_delay_ns.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.aborts.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
    }
}

impl CcStatsSnapshot {
    /// Total blocking events across readers, writers, and commits.
    pub fn total_blocks(&self) -> u64 {
        self.reader_blocks + self.writer_blocks + self.commit_delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = CcStats::new();
        s.reader_blocked(Duration::from_nanos(100));
        s.writer_blocked(Duration::from_nanos(200));
        s.commit_delayed(Duration::from_nanos(300));
        s.aborted();
        let snap = s.snapshot();
        assert_eq!(snap.reader_blocks, 1);
        assert_eq!(snap.reader_block_ns, 100);
        assert_eq!(snap.writer_blocks, 1);
        assert_eq!(snap.writer_block_ns, 200);
        assert_eq!(snap.commit_delays, 1);
        assert_eq!(snap.commit_delay_ns, 300);
        assert_eq!(snap.aborts, 1);
        assert_eq!(snap.total_blocks(), 3);
        s.reset();
        assert_eq!(s.snapshot(), CcStatsSnapshot::default());
    }

    #[test]
    fn for_scheme_reports_into_registry() {
        let s = CcStats::for_scheme("testscheme");
        s.reader_blocked(Duration::from_micros(100));
        s.aborted();
        // The per-instance view keeps working identically…
        assert_eq!(s.snapshot().reader_blocks, 1);
        // …and the global registry sees the same wait.
        let snap = wh_obs::registry::global().snapshot();
        if wh_obs::is_enabled() {
            assert!(snap.histogram("cc.testscheme.reader_wait_ns").count() >= 1);
            assert!(snap.counter("cc.testscheme.aborts") >= 1);
        }
    }
}
