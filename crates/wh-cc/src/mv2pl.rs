//! Multi-version 2PL with a version pool (transient versioning, \[CFL+82\]).
//!
//! Readers never block and never delay the writer: each reader works at its
//! begin-timestamp and, when the main tuple is too new, follows the tuple's
//! version chain into a separate **version pool**. The costs §6 attributes to
//! this family are made measurable here:
//!
//! * the writer's first touch of a tuple copies the old version into the
//!   pool — an extra page write per touched tuple;
//! * a reader needing an old version performs extra page reads chasing the
//!   chain;
//! * pool versions persist until garbage collection proves no active reader
//!   needs them.
//!
//! Writer-writer synchronization would use 2PL in the general algorithm; the
//! warehouse setting has a single maintenance writer (external protocol), so
//! no writer locks are exercised — matching the paper's framing that "all
//! multi-version algorithms use essentially the same technique for
//! synchronizing readers".

use crate::scheme::{CcError, CcResult, ConcurrencyScheme, ReaderTxn, WriterTxn};
use crate::stats::{CcStats, CcStatsSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};
use wh_storage::iostats::IoSnapshot;
use wh_storage::{IoStats, Rid, Table};
use wh_types::{Column, DataType, Schema, Value};

fn versioned_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
            Column::updatable("ts", DataType::Int64),
        ],
        &["key"],
    )
    .expect("versioned schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
}

/// A `(key, value)` store under MV2PL-style transient versioning.
pub struct Mv2plStore {
    main: Table,
    /// The version pool: superseded `(key, value, ts)` images.
    pool: Table,
    key_map: HashMap<u64, Rid>,
    /// Per-key chains of pool versions, newest first.
    chains: Mutex<HashMap<u64, Vec<(i64, Rid)>>>,
    /// Timestamp of the last committed writer.
    committed_ts: AtomicI64,
    /// Begin-timestamps of active readers (for GC).
    active_readers: Mutex<Vec<i64>>,
    stats: CcStats,
    io: Arc<IoStats>,
    /// \[BC92b\]'s refinement: a page-resident cache of each tuple's most
    /// recent old version. Serving from it costs no pool I/O (the version
    /// sits on the data page the reader already fetched); only deeper chain
    /// hops touch the pool. `None` = the classic \[CFL+82\] design.
    page_cache: Option<Mutex<HashMap<u64, (i64, i64)>>>,
}

impl Mv2plStore {
    /// Create a store with keys `0..n`, all values zero, at timestamp 0.
    pub fn populate(n: u64) -> CcResult<Self> {
        Self::build(n, false)
    }

    /// Like [`Mv2plStore::populate`] with the \[BC92b\] page-resident version
    /// cache enabled.
    pub fn populate_with_cache(n: u64) -> CcResult<Self> {
        Self::build(n, true)
    }

    fn build(n: u64, cached: bool) -> CcResult<Self> {
        let io = Arc::new(IoStats::new());
        let main = Table::create("mv2pl_main", versioned_schema(), Arc::clone(&io))?;
        let pool = Table::create("mv2pl_pool", versioned_schema(), Arc::clone(&io))?;
        let mut key_map = HashMap::with_capacity(n as usize);
        for k in 0..n {
            let rid = main.insert(&[Value::from(k as i64), Value::from(0), Value::from(0)])?;
            key_map.insert(k, rid);
        }
        Ok(Mv2plStore {
            main,
            pool,
            key_map,
            chains: Mutex::new(HashMap::new()),
            committed_ts: AtomicI64::new(0),
            active_readers: Mutex::new(Vec::new()),
            stats: CcStats::for_scheme(if cached { "mv2pl_cache" } else { "mv2pl" }),
            io,
            page_cache: cached.then(|| Mutex::new(HashMap::new())),
        })
    }

    fn rid(&self, key: u64) -> CcResult<Rid> {
        self.key_map
            .get(&key)
            .copied()
            .ok_or(CcError::NoSuchKey(key))
    }

    /// Number of versions currently parked in the pool.
    pub fn pool_len(&self) -> u64 {
        self.pool.len()
    }

    /// Garbage-collect pool versions no active reader can need: within each
    /// chain, everything older than the newest version visible at the oldest
    /// active begin-timestamp.
    pub fn gc(&self) -> CcResult<u64> {
        let min_ts = {
            let readers = self
                .active_readers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            readers
                .iter()
                .copied()
                .min()
                .unwrap_or_else(|| self.committed_ts.load(Ordering::SeqCst)) // ordering: mv2pl-ts SeqCst — the MV2PL commit timestamp is a global publication point
        };
        let mut chains = self.chains.lock().unwrap_or_else(PoisonError::into_inner);
        let mut reclaimed = 0;
        let mut dead = Vec::new();
        for (&key, chain) in chains.iter_mut() {
            // If the main tuple itself is visible at min_ts, no pool version
            // of this key can be needed by anyone.
            let main_visible = self
                .rid(key)
                .and_then(|rid| Ok(self.main.read(rid)?))
                .is_ok_and(|row| row[2].as_int().expect("ts column") <= min_ts); // lint: allow(no-panic) — invariant documented in the expect message
                                                                                 // chain is newest-first; the newest version with ts <= min_ts is
                                                                                 // still potentially visible (unless main covers it); everything
                                                                                 // older is dead.
            let cut = if main_visible {
                0
            } else {
                match chain.iter().position(|&(ts, _)| ts <= min_ts) {
                    Some(pos) => pos + 1,
                    None => chain.len(),
                }
            };
            for &(_, rid) in &chain[cut..] {
                if self.pool.delete(rid).is_ok() {
                    reclaimed += 1;
                }
            }
            chain.truncate(cut);
            if chain.is_empty() {
                dead.push(key);
            }
        }
        for key in dead {
            chains.remove(&key);
        }
        Ok(reclaimed)
    }
}

struct Reader<'s> {
    store: &'s Mv2plStore,
    ts: i64,
    finished: bool,
}

impl Reader<'_> {
    fn deregister(&mut self) {
        if !self.finished {
            let mut readers = self
                .store
                .active_readers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = readers.iter().position(|&t| t == self.ts) {
                readers.swap_remove(pos);
            }
            self.finished = true;
        }
    }
}

impl ReaderTxn for Reader<'_> {
    fn read(&mut self, key: u64) -> CcResult<i64> {
        let row = self.store.main.read(self.store.rid(key)?)?;
        let tuple_ts = row[2].as_int().expect("ts column"); // lint: allow(no-panic) — invariant documented in the expect message
        if tuple_ts <= self.ts {
            return Ok(row[1].as_int().expect("value column")); // lint: allow(no-panic) — invariant documented in the expect message
        }
        // Chase the version chain: newest-first, take the first ts <= ours.
        let chain = {
            let chains = self
                .store
                .chains
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            chains.get(&key).cloned().unwrap_or_default()
        };
        for (hop, (ts, rid)) in chain.into_iter().enumerate() {
            if ts <= self.ts {
                // [BC92b]: the newest old version may live on the data page
                // itself — serving it costs no pool I/O.
                if hop == 0 {
                    if let Some(cache) = &self.store.page_cache {
                        if let Some(&(cts, cval)) = cache
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .get(&key)
                        {
                            if cts == ts {
                                return Ok(cval);
                            }
                        }
                    }
                }
                let v = self.store.pool.read(rid)?;
                return Ok(v[1].as_int().expect("value column")); // lint: allow(no-panic) — invariant documented in the expect message
            }
            // Skipped (too-new) hops still cost a pool read in the classic
            // design: the chain is walked through the pool pages.
            let _ = self.store.pool.read(rid)?;
        }
        Err(CcError::VersionUnavailable(key))
    }

    fn finish(mut self: Box<Self>) {
        self.deregister();
    }
}

impl Drop for Reader<'_> {
    fn drop(&mut self) {
        self.deregister();
    }
}

struct Writer<'s> {
    store: &'s Mv2plStore,
    ts: i64,
    touched: Vec<u64>,
}

impl WriterTxn for Writer<'_> {
    fn update(&mut self, key: u64, value: i64) -> CcResult<()> {
        let rid = self.store.rid(key)?;
        let row = self.store.main.read(rid)?;
        let tuple_ts = row[2].as_int().expect("ts column"); // lint: allow(no-panic) — invariant documented in the expect message
        if tuple_ts < self.ts {
            // First touch in this transaction: copy the committed image out
            // to the version pool (the extra write I/O §6 talks about).
            let pool_rid = self.store.pool.insert(&row)?;
            self.store
                .chains
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .entry(key)
                .or_default()
                .insert(0, (tuple_ts, pool_rid));
            // Keep the page-resident copy of the displaced version ([BC92b]);
            // writing it is free — it shares the page write above.
            if let Some(cache) = &self.store.page_cache {
                cache
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    // lint: allow(no-panic) — invariant documented in the expect message
                    .insert(key, (tuple_ts, row[1].as_int().expect("value column")));
            }
            self.touched.push(key);
        }
        self.store.main.update(
            rid,
            &[
                Value::from(key as i64),
                Value::from(value),
                Value::from(self.ts),
            ],
        )?;
        Ok(())
    }

    fn commit(self: Box<Self>) -> CcResult<()> {
        // Publication is a single timestamp bump: readers that began earlier
        // keep resolving through the pool.
        self.store.committed_ts.store(self.ts, Ordering::SeqCst); // ordering: mv2pl-ts SeqCst — the MV2PL commit timestamp is a global publication point
        Ok(())
    }

    fn abort(self: Box<Self>) -> CcResult<()> {
        // Restore each touched tuple from its newest pool version.
        let mut chains = self
            .store
            .chains
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for key in &self.touched {
            let rid = self.store.rid(*key)?;
            if let Some(chain) = chains.get_mut(key) {
                if let Some((_, pool_rid)) = chain.first().copied() {
                    let old = self.store.pool.read(pool_rid)?;
                    self.store.main.update(rid, &old)?;
                    self.store.pool.delete(pool_rid)?;
                    chain.remove(0);
                }
                if chain.is_empty() {
                    chains.remove(key);
                }
            }
        }
        Ok(())
    }
}

impl ConcurrencyScheme for Mv2plStore {
    fn name(&self) -> &'static str {
        if self.page_cache.is_some() {
            "MV2PL+cache"
        } else {
            "MV2PL"
        }
    }

    fn begin_reader(&self) -> Box<dyn ReaderTxn + '_> {
        let ts = self.committed_ts.load(Ordering::SeqCst); // ordering: mv2pl-ts SeqCst — the MV2PL commit timestamp is a global publication point
        self.active_readers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ts);
        Box::new(Reader {
            store: self,
            ts,
            finished: false,
        })
    }

    fn begin_writer(&self) -> Box<dyn WriterTxn + '_> {
        Box::new(Writer {
            store: self,
            ts: self.committed_ts.load(Ordering::SeqCst) + 1, // ordering: mv2pl-ts SeqCst — the MV2PL commit timestamp is a global publication point
            touched: Vec::new(),
        })
    }

    fn cc_stats(&self) -> CcStatsSnapshot {
        self.stats.snapshot()
    }

    fn io_stats(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
        self.io.reset();
    }

    fn storage_bytes(&self) -> u64 {
        (self.main.len() + self.pool.len()) * self.main.codec().encoded_len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_isolation_for_readers() {
        let store = Mv2plStore::populate(10).unwrap();
        let mut old_reader = store.begin_reader();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        w.commit().unwrap();
        // Reader that began before the writer still sees 0 via the pool.
        assert_eq!(old_reader.read(3).unwrap(), 0);
        old_reader.finish();
        // New reader sees the committed value from main.
        let mut new_reader = store.begin_reader();
        assert_eq!(new_reader.read(3).unwrap(), 42);
        new_reader.finish();
    }

    #[test]
    fn uncommitted_writes_invisible() {
        let store = Mv2plStore::populate(10).unwrap();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(3).unwrap(), 0); // resolved through the pool
        r.finish();
        w.commit().unwrap();
    }

    #[test]
    fn writer_first_touch_costs_pool_write() {
        let store = Mv2plStore::populate(10).unwrap();
        store.reset_stats();
        let mut w = store.begin_writer();
        w.update(3, 1).unwrap();
        assert_eq!(store.pool_len(), 1);
        // Second update to the same key reuses the main tuple (no new copy).
        w.update(3, 2).unwrap();
        assert_eq!(store.pool_len(), 1);
        w.commit().unwrap();
    }

    #[test]
    fn old_reader_pays_extra_reads() {
        let store = Mv2plStore::populate(10).unwrap();
        let mut old_reader = store.begin_reader();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        w.commit().unwrap();
        store.reset_stats();
        old_reader.read(3).unwrap();
        let old_io = store.io_stats().page_reads;
        old_reader.finish();
        store.reset_stats();
        let mut new_reader = store.begin_reader();
        new_reader.read(3).unwrap();
        let new_io = store.io_stats().page_reads;
        new_reader.finish();
        assert!(
            old_io > new_io,
            "chain chase should cost extra reads ({old_io} vs {new_io})"
        );
    }

    #[test]
    fn multiple_generations_resolve_correctly() {
        let store = Mv2plStore::populate(4).unwrap();
        let mut r0 = store.begin_reader(); // ts 0
        for gen in 1..=3 {
            let mut w = store.begin_writer();
            w.update(1, gen * 100).unwrap();
            w.commit().unwrap();
        }
        let mut r3 = store.begin_reader(); // ts 3
        assert_eq!(r0.read(1).unwrap(), 0);
        assert_eq!(r3.read(1).unwrap(), 300);
        r0.finish();
        r3.finish();
        assert_eq!(store.pool_len(), 3);
    }

    #[test]
    fn gc_respects_active_readers() {
        let store = Mv2plStore::populate(4).unwrap();
        let mut r0 = store.begin_reader(); // needs ts<=0 versions
        for gen in 1..=3 {
            let mut w = store.begin_writer();
            w.update(1, gen * 100).unwrap();
            w.commit().unwrap();
        }
        // r0 is active at ts 0: the ts-0 version must survive GC.
        store.gc().unwrap();
        assert_eq!(r0.read(1).unwrap(), 0);
        r0.finish();
        // Now only the newest version matters; GC can drain the chain.
        let reclaimed = store.gc().unwrap();
        assert!(reclaimed > 0);
        assert_eq!(store.pool_len(), 0);
        let mut r = store.begin_reader();
        assert_eq!(r.read(1).unwrap(), 300);
        r.finish();
    }

    #[test]
    fn writer_abort_restores_main() {
        let store = Mv2plStore::populate(4).unwrap();
        let mut w = store.begin_writer();
        w.update(2, 9).unwrap();
        w.abort().unwrap();
        let mut r = store.begin_reader();
        assert_eq!(r.read(2).unwrap(), 0);
        r.finish();
        assert_eq!(store.pool_len(), 0);
    }

    /// Page reads charged to an old reader resolving one superseded tuple.
    fn old_reader_cost(store: &Mv2plStore) -> u64 {
        let mut old = store.begin_reader();
        let mut w = store.begin_writer();
        w.update(3, 42).unwrap();
        w.commit().unwrap();
        store.reset_stats();
        assert_eq!(old.read(3).unwrap(), 0);
        let n = store.io_stats().page_reads;
        old.finish();
        n
    }

    #[test]
    fn page_cache_serves_newest_old_version_without_pool_io() {
        let cached_reads = old_reader_cost(&Mv2plStore::populate_with_cache(8).unwrap());
        let classic_reads = old_reader_cost(&Mv2plStore::populate(8).unwrap());
        assert!(
            cached_reads < classic_reads,
            "cache should save the pool hop ({cached_reads} vs {classic_reads})"
        );
    }

    #[test]
    fn cache_does_not_serve_stale_versions() {
        // Two generations deep: the cache holds only the NEWEST old version;
        // an older reader must still resolve correctly through the pool.
        let store = Mv2plStore::populate_with_cache(4).unwrap();
        let mut r0 = store.begin_reader(); // ts 0
        for gen in 1..=2 {
            let mut w = store.begin_writer();
            w.update(1, gen * 100).unwrap();
            w.commit().unwrap();
        }
        let mut r1_like = store.begin_reader(); // ts 2 -> reads main
        assert_eq!(r0.read(1).unwrap(), 0); // pool, beyond the cache
        assert_eq!(r1_like.read(1).unwrap(), 200);
        r0.finish();
        r1_like.finish();
        assert_eq!(store.name(), "MV2PL+cache");
    }

    #[test]
    fn no_blocking_anywhere() {
        let store = Arc::new(Mv2plStore::populate(100).unwrap());
        std::thread::scope(|s| {
            let st = Arc::clone(&store);
            s.spawn(move || {
                for round in 0..5 {
                    let mut w = st.begin_writer();
                    for k in 0..100 {
                        w.update(k, round * 1000 + k as i64).unwrap();
                    }
                    w.commit().unwrap();
                }
            });
            for _ in 0..4 {
                let st = Arc::clone(&store);
                s.spawn(move || {
                    for _ in 0..20 {
                        let mut r = st.begin_reader();
                        let mut values = Vec::new();
                        for k in 0..100 {
                            values.push(r.read(k).unwrap());
                        }
                        r.finish();
                        // All values from one consistent generation.
                        let gen = values[0] / 1000;
                        for (k, v) in values.iter().enumerate() {
                            assert_eq!(
                                *v,
                                gen * 1000 + if gen == 0 && *v == 0 { 0 } else { k as i64 },
                                "inconsistent read within one reader"
                            );
                        }
                    }
                });
            }
        });
        assert_eq!(store.cc_stats().total_blocks(), 0);
    }
}
