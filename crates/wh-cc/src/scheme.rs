//! Common interface over the concurrency-control schemes.
//!
//! All schemes (including the 2VNL adapter in `wh-vnl`) expose the same
//! warehouse-shaped workload surface: long read-only *reader transactions*
//! and a single batch *writer* (the maintenance transaction), over a table of
//! `(key, value)` tuples stored in a real heap. The benches drive this
//! interface identically for every scheme and compare the instrumented
//! blocking ([`crate::CcStats`]) and logical I/O (`wh_storage::IoStats`).

use crate::stats::CcStatsSnapshot;
use std::fmt;
use wh_storage::iostats::IoSnapshot;

/// Errors from concurrency-controlled execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CcError {
    /// The transaction timed out waiting for a lock and must abort.
    Aborted,
    /// The requested key does not exist.
    NoSuchKey(u64),
    /// The version a reader needs is no longer available.
    VersionUnavailable(u64),
    /// Underlying storage failure.
    Storage(String),
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Aborted => write!(f, "transaction aborted (lock timeout)"),
            CcError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            CcError::VersionUnavailable(k) => {
                write!(f, "required version of key {k} is unavailable")
            }
            CcError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for CcError {}

impl From<wh_storage::StorageError> for CcError {
    fn from(e: wh_storage::StorageError) -> Self {
        CcError::Storage(e.to_string())
    }
}

/// Result alias for concurrency-controlled operations.
pub type CcResult<T> = Result<T, CcError>;

/// A read-only transaction (a reader session's unit of work).
pub trait ReaderTxn {
    /// Read the value of `key` as of this transaction's consistent view.
    fn read(&mut self, key: u64) -> CcResult<i64>;
    /// Finish the transaction, releasing any locks/registrations.
    fn finish(self: Box<Self>);
}

/// The (single) update transaction — the maintenance transaction's role.
pub trait WriterTxn {
    /// Set `key` to `value`.
    fn update(&mut self, key: u64, value: i64) -> CcResult<()>;
    /// Commit, making all updates visible. May block (2V2PL certify).
    fn commit(self: Box<Self>) -> CcResult<()>;
    /// Abort, undoing all updates.
    fn abort(self: Box<Self>) -> CcResult<()>;
}

/// A concurrency-control scheme over a populated `(key, value)` store.
pub trait ConcurrencyScheme: Send + Sync {
    /// Scheme name for reports ("S2PL", "2V2PL", "MV2PL", "2VNL").
    fn name(&self) -> &'static str;
    /// Begin a read-only transaction.
    fn begin_reader(&self) -> Box<dyn ReaderTxn + '_>;
    /// Begin the update transaction. Callers enforce the paper's external
    /// protocol: at most one writer at a time.
    fn begin_writer(&self) -> Box<dyn WriterTxn + '_>;
    /// Blocking instrumentation.
    fn cc_stats(&self) -> CcStatsSnapshot;
    /// Logical I/O counters (all heaps the scheme touches).
    fn io_stats(&self) -> IoSnapshot;
    /// Zero both counter sets.
    fn reset_stats(&self);
    /// Bytes of storage currently allocated to live tuples and versions.
    fn storage_bytes(&self) -> u64;
}

/// The `(key, value)` schema every scheme stores: `key BIGINT` unique,
/// `value BIGINT` updatable.
pub fn kv_schema() -> wh_types::Schema {
    wh_types::Schema::with_key_names(
        vec![
            wh_types::Column::new("key", wh_types::DataType::Int64),
            wh_types::Column::updatable("value", wh_types::DataType::Int64),
        ],
        &["key"],
    )
    .expect("kv schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
}
