//! Self-tests for the model checker: known-racy programs must fail, known-
//! correct ones must pass with the interleaving space exhausted.

use std::sync::Arc;
use wh_model::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use wh_model::sync::Mutex;
use wh_model::{try_model, Builder};

fn builder() -> Builder {
    Builder {
        max_preemptions: 3,
        max_iterations: 500_000,
    }
}

#[test]
fn lost_update_is_caught() {
    let r = try_model(builder(), || {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = wh_model::thread::spawn(move || {
            // ordering: model exercise — a deliberate lost-update race.
            let v = b.load(Ordering::SeqCst);
            b.store(v + 1, Ordering::SeqCst);
        });
        // ordering: model exercise — the racing half of the lost update.
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = r.expect_err("the lost-update interleaving must be found");
    assert!(failure.message.contains("lost update"), "{failure}");
}

#[test]
fn fetch_add_fixes_lost_update() {
    let r = try_model(builder(), || {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&a);
        let t = wh_model::thread::spawn(move || {
            // ordering: model exercise — RMW closes the race window.
            b.fetch_add(1, Ordering::SeqCst);
        });
        // ordering: model exercise — RMW closes the race window.
        a.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    let report = r.expect("fetch_add has no failing interleaving");
    assert!(report.iterations > 1, "expected multiple interleavings");
}

#[test]
fn mutex_guarantees_mutual_exclusion() {
    let r = try_model(builder(), || {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::clone(&a);
        let t = wh_model::thread::spawn(move || {
            let mut g = b.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = a.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*a.lock().unwrap(), 2);
    });
    r.expect("mutex increments cannot be lost");
}

#[test]
fn deadlock_is_detected() {
    let r = try_model(builder(), || {
        let m1 = Arc::new(Mutex::new(()));
        let m2 = Arc::new(Mutex::new(()));
        let (a1, a2) = (Arc::clone(&m1), Arc::clone(&m2));
        let t = wh_model::thread::spawn(move || {
            let _g2 = a2.lock().unwrap();
            let _g1 = a1.lock().unwrap();
        });
        let _g1 = m1.lock().unwrap();
        let _g2 = m2.lock().unwrap();
        drop((_g1, _g2));
        t.join().unwrap();
    });
    let failure = r.expect_err("opposite lock order must deadlock somewhere");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

#[test]
fn relaxed_publication_race_is_caught() {
    // The shape of the `current_vn_relaxed` concern: initialize data, then
    // publish a flag with Relaxed, consume on the other side with Relaxed.
    // Every SC interleaving reads consistent values, but there is no
    // happens-before edge, so the cell access must be flagged.
    let r = try_model(builder(), || {
        let data = Arc::new(wh_model::cell::UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = wh_model::thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            // ordering: model exercise — deliberately Relaxed, no hb edge.
            f2.store(1, Ordering::Relaxed);
        });
        // ordering: model exercise — deliberately Relaxed, no hb edge.
        if flag.load(Ordering::Relaxed) == 1 {
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
    let failure = r.expect_err("Relaxed publication must be flagged as a race");
    assert!(failure.message.contains("data race"), "{failure}");
}

#[test]
fn release_acquire_publication_is_clean() {
    let r = try_model(builder(), || {
        let data = Arc::new(wh_model::cell::UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = wh_model::thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            // ordering: model exercise — Release publishes the write above.
            f2.store(1, Ordering::Release);
        });
        // ordering: model exercise — Acquire pairs with the Release store.
        if flag.load(Ordering::Acquire) == 1 {
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
    r.expect("release/acquire publication is race-free");
}

#[test]
fn spawn_and_join_edges_are_hb() {
    // Writes before spawn and after join need no atomics at all.
    let r = try_model(builder(), || {
        let data = Arc::new(wh_model::cell::UnsafeCell::new(0u64));
        data.with_mut(|p| unsafe { *p = 7 });
        let d2 = Arc::clone(&data);
        let t = wh_model::thread::spawn(move || d2.with(|p| unsafe { *p }));
        let seen = t.join().unwrap();
        assert_eq!(seen, 7);
        data.with_mut(|p| unsafe { *p = 8 });
    });
    r.expect("spawn/join give full happens-before edges");
}

#[test]
fn three_thread_interleavings_are_explored() {
    // Two children plus the root: the checker must find the interleaving
    // where both children observe 0 and the final count is 1 short.
    let r = try_model(builder(), || {
        let a = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&a);
                wh_model::thread::spawn(move || {
                    // ordering: model exercise — racy read-modify-write.
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = r.expect_err("two racing children must lose an update");
    assert!(failure.message.contains("lost update"), "{failure}");
}

#[test]
fn preemption_bound_zero_misses_the_race_but_reports_exhaustion() {
    // With 0 preemptions only round-robin-free schedules run: each thread
    // executes to completion once started, so the lost update cannot occur
    // and the space is tiny. Documents what the bound trades away.
    let r = try_model(
        Builder {
            max_preemptions: 0,
            max_iterations: 10_000,
        },
        || {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::clone(&a);
            let t = wh_model::thread::spawn(move || {
                // ordering: model exercise — racy RMW, invisible at bound 0.
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            // ordering: model exercise — racy RMW, invisible at bound 0.
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
        },
    );
    r.expect("bound 0 permits no preemption, so no failing schedule exists");
}

#[test]
fn outside_model_types_fall_back_to_std() {
    assert!(!wh_model::in_model());
    let m = Mutex::new(1u64);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);
    let a = AtomicU64::new(0);
    // ordering: plain std fallback exercised outside any model run.
    a.fetch_add(3, Ordering::SeqCst);
    assert_eq!(a.load(Ordering::SeqCst), 3);
    let t = wh_model::thread::spawn(|| 5u64);
    assert_eq!(t.join().unwrap(), 5);
}
