//! The exploration engine: one [`Execution`] per explored interleaving.
//!
//! Model threads are real OS threads, but at most one executes at a time:
//! every synchronization operation first calls [`Execution::yield_point`],
//! which records a scheduling decision (which runnable thread goes next)
//! and parks the caller until it is granted execution again. Replaying a
//! recorded decision prefix and taking default choices past it makes each
//! execution deterministic; [`next_prefix`] backtracks depth-first to the
//! last decision with an untried alternative within the preemption budget.

use crate::clock::VClock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Sentinel panic payload: "this execution already failed, unwind quietly".
pub(crate) struct Abort;

fn panic_abort() -> ! {
    std::panic::panic_any(Abort)
}

/// Install (once, process-wide) a panic hook that silences [`Abort`]
/// unwinds — every parked thread of a failed execution exits through one —
/// while delegating real panics to the previous hook.
fn install_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Abort>().is_none() {
                prev(info);
            }
        }));
    });
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedLock(usize),
    BlockedRw(usize),
    BlockedJoin(usize),
    Finished,
}

/// One recorded scheduling decision.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    /// Candidate threads in canonical order (current-thread first when it
    /// is still runnable, then ascending) — the DFS alternative set.
    order: Vec<usize>,
    /// Index into `order` actually taken.
    index: usize,
    /// The thread that was executing when the decision was made.
    running_before: usize,
    /// Whether `running_before` was itself still runnable (so choosing any
    /// other thread counts against the preemption budget).
    running_was_enabled: bool,
    /// Preemptions spent before this decision.
    preemptions_before: usize,
}

impl Choice {
    pub(crate) fn chosen(&self) -> usize {
        self.order[self.index]
    }
}

#[derive(Default)]
struct MutexBook {
    held: bool,
}

#[derive(Default)]
struct RwBook {
    writer: bool,
    readers: usize,
}

#[derive(Default)]
struct CellBook {
    /// Per-thread own-clock stamp of that thread's last write.
    writes: VClock,
    /// Per-thread own-clock stamp of that thread's last read.
    reads: VClock,
}

struct ExecState {
    running: Option<usize>,
    threads: Vec<Status>,
    finished: usize,
    trace: Vec<Choice>,
    prefix: Vec<usize>,
    preemptions: usize,
    mutexes: HashMap<usize, MutexBook>,
    rwlocks: HashMap<usize, RwBook>,
    /// Release clocks of sync objects (mutexes, rwlocks, atomics), keyed by
    /// object address.
    objclocks: HashMap<usize, VClock>,
    cells: HashMap<usize, CellBook>,
    clocks: Vec<VClock>,
    failure: Option<String>,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Execution {
    pub(crate) fn new(prefix: Vec<usize>) -> Arc<Self> {
        let mut clock0 = VClock::new();
        clock0.bump(0);
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                running: Some(0),
                threads: vec![Status::Runnable],
                finished: 0,
                trace: Vec::new(),
                prefix,
                preemptions: 0,
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                objclocks: HashMap::new(),
                cells: HashMap::new(),
                clocks: vec![clock0],
                failure: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Run one execution of the model closure to completion (all model
    /// threads finished or the execution failed).
    pub(crate) fn run<F>(exec: &Arc<Self>, f: Arc<F>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_hook();
        let e = Arc::clone(exec);
        let root = std::thread::spawn(move || {
            let body = {
                let f = Arc::clone(&f);
                move || f()
            };
            Self::thread_main(&e, 0, body);
        });
        // The root OS thread exits only after tid 0 finished; remaining
        // model threads wind down via the scheduler.
        let _ = root.join();
        let mut st = exec.locked();
        while st.finished < st.threads.len() {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The body wrapper every model OS thread runs. The body does not start
    /// until the scheduler grants this tid execution — a freshly spawned OS
    /// thread must not race the (still running) spawner.
    pub(crate) fn thread_main<F: FnOnce()>(exec: &Arc<Self>, tid: usize, body: F) {
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
        let e = Arc::clone(exec);
        let result = catch_unwind(AssertUnwindSafe(move || {
            e.wait_scheduled(tid);
            body();
        }));
        CTX.with(|c| *c.borrow_mut() = None);
        match result {
            Ok(()) => exec.finish(tid),
            Err(payload) => {
                if payload.downcast_ref::<Abort>().is_some() {
                    exec.finish_quiet(tid);
                } else {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "model thread panicked".to_string());
                    exec.record_failure(tid, msg);
                }
            }
        }
    }

    /// Extract the recorded trace and failure after [`Execution::run`].
    pub(crate) fn into_outcome(self: Arc<Self>) -> (Vec<Choice>, Option<String>) {
        let mut st = self.locked();
        (std::mem::take(&mut st.trace), st.failure.take())
    }

    fn locked(&self) -> MutexGuard<'_, ExecState> {
        // A model-thread panic unwinds through scheduler calls by design;
        // the bookkeeping is never left mid-mutation.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a scheduling decision among the runnable threads and return
    /// the chosen thread, or `None` when nothing is runnable.
    fn pick(st: &mut ExecState, me: usize) -> Option<usize> {
        let enabled: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == Status::Runnable)
            .collect();
        if enabled.is_empty() {
            return None;
        }
        let me_enabled = enabled.contains(&me);
        let mut order = Vec::with_capacity(enabled.len());
        if me_enabled {
            order.push(me);
        }
        order.extend(enabled.iter().copied().filter(|&t| t != me));
        let depth = st.trace.len();
        let index = if depth < st.prefix.len() {
            let i = st.prefix[depth];
            if i >= order.len() {
                st.failure.get_or_insert_with(|| {
                    "nondeterministic model: replay diverged (the closure must \
                     be deterministic given the schedule)"
                        .to_string()
                });
                return None;
            }
            i
        } else {
            0
        };
        let chosen = order[index];
        st.trace.push(Choice {
            order,
            index,
            running_before: me,
            running_was_enabled: me_enabled,
            preemptions_before: st.preemptions,
        });
        if chosen != me && me_enabled {
            st.preemptions += 1;
        }
        Some(chosen)
    }

    /// Schedule away from `me` (optionally marking it blocked) and return
    /// once `me` is granted execution again.
    fn reschedule(&self, me: usize, blocked: Option<Status>) {
        let mut st = self.locked();
        if st.failure.is_some() {
            drop(st);
            panic_abort();
        }
        if let Some(s) = blocked {
            st.threads[me] = s;
        }
        match Self::pick(&mut st, me) {
            Some(next) => {
                st.running = Some(next);
                if next == me {
                    return;
                }
                self.cv.notify_all();
            }
            None => {
                // `me` just blocked and nothing else can run.
                let report = self.deadlock_report(&st);
                st.failure.get_or_insert(report);
                drop(st);
                self.cv.notify_all();
                panic_abort();
            }
        }
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if st.failure.is_some() {
                drop(st);
                panic_abort();
            }
            if st.running == Some(me) {
                return;
            }
        }
    }

    fn deadlock_report(&self, st: &ExecState) -> String {
        let blocked: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, Status::Finished))
            .map(|(t, s)| format!("thread {t} {s:?}"))
            .collect();
        format!("deadlock: no runnable thread ({})", blocked.join(", "))
    }

    /// A plain scheduling point: every visible operation calls this first.
    pub(crate) fn yield_point(&self, me: usize) {
        self.reschedule(me, None);
    }

    /// Park until the scheduler grants `me` execution (thread startup).
    fn wait_scheduled(&self, me: usize) {
        let mut st = self.locked();
        loop {
            if st.failure.is_some() {
                drop(st);
                panic_abort();
            }
            if st.running == Some(me) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn finish(&self, me: usize) {
        let mut st = self.locked();
        if st.failure.is_some() {
            drop(st);
            self.finish_quiet(me);
            return;
        }
        st.threads[me] = Status::Finished;
        st.finished += 1;
        Self::wake_blocked(&mut st, |s| s == Status::BlockedJoin(me));
        match Self::pick(&mut st, me) {
            Some(next) => {
                st.running = Some(next);
            }
            None => {
                st.running = None;
                if st.finished < st.threads.len() {
                    let report = self.deadlock_report(&st);
                    st.failure.get_or_insert(report);
                }
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Mark `me` finished without scheduling (abort teardown path).
    fn finish_quiet(&self, me: usize) {
        let mut st = self.locked();
        if st.threads[me] != Status::Finished {
            st.threads[me] = Status::Finished;
            st.finished += 1;
        }
        drop(st);
        self.cv.notify_all();
    }

    fn record_failure(&self, me: usize, msg: String) {
        let mut st = self.locked();
        st.failure.get_or_insert(msg);
        if st.threads[me] != Status::Finished {
            st.threads[me] = Status::Finished;
            st.finished += 1;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Fail the current execution with `msg` (race detector verdicts).
    fn fail_from(&self, me: usize, msg: String) -> ! {
        let mut st = self.locked();
        st.failure.get_or_insert(msg);
        drop(st);
        self.cv.notify_all();
        let _ = me;
        panic_abort();
    }

    // ---- threads ----------------------------------------------------

    /// Register a child thread spawned by `parent`; returns its tid.
    pub(crate) fn register_spawn(&self, parent: usize) -> usize {
        let mut st = self.locked();
        let tid = st.threads.len();
        st.threads.push(Status::Runnable);
        let mut child = st.clocks[parent].clone();
        child.bump(tid);
        st.clocks.push(child);
        st.clocks[parent].bump(parent);
        tid
    }

    /// Park until `target` finishes, then absorb its clock.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        loop {
            {
                let mut st = self.locked();
                if st.failure.is_some() {
                    drop(st);
                    panic_abort();
                }
                if st.threads[target] == Status::Finished {
                    let tc = st.clocks[target].clone();
                    st.clocks[me].join(&tc);
                    return;
                }
            }
            self.reschedule(me, Some(Status::BlockedJoin(target)));
        }
    }

    /// Wake threads matching `pred` (bookkeeping already updated).
    fn wake_blocked(st: &mut ExecState, pred: impl Fn(Status) -> bool) {
        for s in &mut st.threads {
            if pred(*s) {
                *s = Status::Runnable;
            }
        }
    }

    // ---- mutexes -----------------------------------------------------

    /// Blocking mutex acquire (bookkeeping only; the caller then takes the
    /// uncontended inner `std` lock).
    pub(crate) fn mutex_lock(&self, me: usize, addr: usize) {
        loop {
            {
                let mut st = self.locked();
                if st.failure.is_some() {
                    drop(st);
                    panic_abort();
                }
                if !st.mutexes.entry(addr).or_default().held {
                    st.mutexes.entry(addr).or_default().held = true;
                    Self::clock_acquire(&mut st, me, addr);
                    return;
                }
            }
            self.reschedule(me, Some(Status::BlockedLock(addr)));
        }
    }

    /// Non-blocking acquire; `true` when the lock was free.
    pub(crate) fn mutex_try_lock(&self, me: usize, addr: usize) -> bool {
        let mut st = self.locked();
        if st.mutexes.entry(addr).or_default().held {
            return false;
        }
        st.mutexes.entry(addr).or_default().held = true;
        Self::clock_acquire(&mut st, me, addr);
        true
    }

    pub(crate) fn mutex_unlock(&self, me: usize, addr: usize) {
        let mut st = self.locked();
        st.mutexes.entry(addr).or_default().held = false;
        Self::clock_release(&mut st, me, addr);
        Self::wake_blocked(&mut st, |s| s == Status::BlockedLock(addr));
        drop(st);
        self.cv.notify_all();
    }

    // ---- rwlocks -----------------------------------------------------

    pub(crate) fn rw_lock(&self, me: usize, addr: usize, write: bool) {
        loop {
            {
                let mut st = self.locked();
                if st.failure.is_some() {
                    drop(st);
                    panic_abort();
                }
                let book = st.rwlocks.entry(addr).or_default();
                let free = if write {
                    !book.writer && book.readers == 0
                } else {
                    !book.writer
                };
                if free {
                    if write {
                        book.writer = true;
                    } else {
                        book.readers += 1;
                    }
                    Self::clock_acquire(&mut st, me, addr);
                    return;
                }
            }
            self.reschedule(me, Some(Status::BlockedRw(addr)));
        }
    }

    pub(crate) fn rw_try_lock(&self, me: usize, addr: usize, write: bool) -> bool {
        let mut st = self.locked();
        let book = st.rwlocks.entry(addr).or_default();
        let free = if write {
            !book.writer && book.readers == 0
        } else {
            !book.writer
        };
        if !free {
            return false;
        }
        if write {
            book.writer = true;
        } else {
            book.readers += 1;
        }
        Self::clock_acquire(&mut st, me, addr);
        true
    }

    pub(crate) fn rw_unlock(&self, me: usize, addr: usize, write: bool) {
        let mut st = self.locked();
        let book = st.rwlocks.entry(addr).or_default();
        if write {
            book.writer = false;
        } else {
            book.readers = book.readers.saturating_sub(1);
        }
        Self::clock_release(&mut st, me, addr);
        Self::wake_blocked(&mut st, |s| s == Status::BlockedRw(addr));
        drop(st);
        self.cv.notify_all();
    }

    // ---- clocks ------------------------------------------------------

    fn clock_acquire(st: &mut ExecState, me: usize, addr: usize) {
        let oc = st.objclocks.entry(addr).or_default().clone();
        st.clocks[me].join(&oc);
    }

    fn clock_release(st: &mut ExecState, me: usize, addr: usize) {
        let tc = st.clocks[me].clone();
        st.objclocks.entry(addr).or_default().join(&tc);
        st.clocks[me].bump(me);
    }

    /// Happens-before edges for an atomic op: `Relaxed` passes neither
    /// flag, so it creates no edge and the race detector treats data
    /// published across it as unsynchronized.
    pub(crate) fn atomic_op(&self, me: usize, addr: usize, acquire: bool, release: bool) {
        let mut st = self.locked();
        if acquire {
            Self::clock_acquire(&mut st, me, addr);
        }
        if release {
            Self::clock_release(&mut st, me, addr);
        }
    }

    // ---- cells -------------------------------------------------------

    /// Vector-clock race check for an `UnsafeCell` access.
    pub(crate) fn cell_access(&self, me: usize, addr: usize, write: bool, what: &str) {
        let mut st = self.locked();
        let tc = st.clocks[me].clone();
        let own = tc.get(me);
        let book = st.cells.entry(addr).or_default();
        if !book.writes.le(&tc) {
            let msg = format!(
                "data race: {what} of UnsafeCell not ordered after a \
                 concurrent write (no happens-before edge; Relaxed atomics \
                 do not synchronize)"
            );
            drop(st);
            self.fail_from(me, msg);
        }
        if write && !book.reads.le(&tc) {
            let msg = "data race: write to UnsafeCell concurrent with an \
                       unsynchronized read"
                .to_string();
            drop(st);
            self.fail_from(me, msg);
        }
        if write {
            book.writes.record(me, own);
        } else {
            book.reads.record(me, own);
        }
    }
}

/// Depth-first backtracking: the deepest decision with an untried
/// alternative whose preemption cost stays within budget, or `None` when
/// the space is exhausted.
pub(crate) fn next_prefix(trace: &[Choice], max_preemptions: usize) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let c = &trace[i];
        for j in c.index + 1..c.order.len() {
            let cost = usize::from(c.running_was_enabled && c.order[j] != c.running_before);
            if c.preemptions_before + cost <= max_preemptions {
                let mut prefix: Vec<usize> = trace[..i].iter().map(|c| c.index).collect();
                prefix.push(j);
                return Some(prefix);
            }
        }
    }
    None
}
