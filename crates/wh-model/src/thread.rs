//! Model replacement for `std::thread` spawn/join.
//!
//! Inside a model run, spawned threads are real OS threads registered with
//! the cooperative scheduler: the child does not start until scheduled, and
//! `join` is a blocking scheduler operation that establishes the
//! happens-before edge from everything the child did. Outside a model run
//! these delegate straight to `std::thread`.

// lint: allow-file(no-panic) — join() on an already-joined std handle is
// a caller bug in the checker harness itself; aborting is the contract.
use crate::exec::{current, Execution};
use std::sync::{Arc, Mutex, PoisonError};

enum Inner<T> {
    Model {
        exec: Arc<Execution>,
        tid: usize,
        os: Option<std::thread::JoinHandle<()>>,
        slot: Arc<Mutex<Option<T>>>,
    },
    Std(Option<std::thread::JoinHandle<T>>),
}

/// Handle to a spawned model (or plain) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

/// Spawn a thread. Under the model this is itself a scheduling point, so
/// interleavings where the child runs immediately are explored.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some((exec, me)) => {
            let tid = exec.register_spawn(me);
            let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let out = Arc::clone(&slot);
            let e2 = Arc::clone(&exec);
            let os = std::thread::spawn(move || {
                Execution::thread_main(&e2, tid, move || {
                    let r = f();
                    *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                });
            });
            exec.yield_point(me);
            JoinHandle {
                inner: Inner::Model {
                    exec,
                    tid,
                    os: Some(os),
                    slot,
                },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(Some(std::thread::spawn(f))),
        },
    }
}

/// Scheduling point with no other effect (a place the scheduler may switch).
pub fn yield_now() {
    match current() {
        Some((exec, me)) => exec.yield_point(me),
        None => std::thread::yield_now(),
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    ///
    /// # Errors
    ///
    /// Returns the panic payload surrogate if the thread panicked, like
    /// [`std::thread::JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model {
                exec,
                tid,
                mut os,
                slot,
            } => {
                if let Some((_, me)) = current() {
                    exec.join_wait(me, tid);
                }
                if let Some(os) = os.take() {
                    // The model thread already Finished in bookkeeping; the
                    // OS thread is exiting, so this cannot stall the model.
                    let _ = os.join();
                }
                match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model thread panicked".to_string())
                        as Box<dyn std::any::Any + Send>),
                }
            }
            Inner::Std(mut h) => h.take().expect("join consumes the handle").join(),
        }
    }
}
