//! Exhaustive-interleaving model checker for the repo's lock-free kernels.
//!
//! The container this repo builds in has no network and no vendored crates,
//! so [loom] itself cannot be added as a dependency. `wh-model` implements
//! the same core idea from scratch, dependency-free: run a closure's threads
//! under a cooperative scheduler that serializes them, insert a scheduling
//! point before every synchronization operation, and drive a depth-first
//! search over every scheduling decision (bounded by a preemption budget,
//! like loom's `LOOM_MAX_PREEMPTIONS`) until the whole interleaving space is
//! explored. An assertion failure, panic, deadlock, or detected data race in
//! *any* interleaving fails the model with the schedule that triggered it.
//!
//! What it checks:
//!
//! * **All interleavings** of [`sync::Mutex`], [`sync::RwLock`],
//!   [`sync::atomic`] operations and [`thread`] spawn/join edges, under
//!   sequential consistency, up to the preemption bound.
//! * **Happens-before data races**: [`cell::UnsafeCell`] accesses are
//!   checked against a vector-clock happens-before relation in which
//!   `Relaxed` atomics do **not** synchronize — publishing a pointer with a
//!   `Relaxed` store and dereferencing after a `Relaxed` load is reported
//!   as a race even though the SC interleaving itself looks fine.
//! * **Deadlocks**: a state where no runnable thread remains fails the run.
//!
//! What it deliberately does not model: weak-memory *value* speculation
//! (loads always observe the globally latest store, as under SC). The CI
//! ThreadSanitizer and Miri jobs cover the weak-memory and UB angles; this
//! checker covers atomicity, lock-order, and publication-ordering logic
//! exhaustively. The kernels verified with it live in `wh-kernel` and are
//! the exact code production compiles, swapped onto these types by the
//! `model` feature's `sync` shim.
//!
//! ```
//! let found = wh_model::try_model(wh_model::Builder::default(), || {
//!     use std::sync::Arc;
//!     use wh_model::sync::atomic::{AtomicU64, Ordering};
//!     let a = Arc::new(AtomicU64::new(0));
//!     let b = Arc::clone(&a);
//!     let t = wh_model::thread::spawn(move || {
//!         // ordering: model exercise only — a deliberate lost-update race.
//!         let v = b.load(Ordering::SeqCst);
//!         b.store(v + 1, Ordering::SeqCst);
//!     });
//!     // ordering: model exercise only — the racing half of the lost update.
//!     let v = a.load(Ordering::SeqCst);
//!     a.store(v + 1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     // Fails: an interleaving loses one increment.
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! assert!(found.is_err());
//! ```

pub mod cell;
mod exec;
pub mod sync;
pub mod thread;

mod clock;

use exec::Execution;
use std::sync::Arc;

/// Exploration limits. `Default` reads `LOOM_MAX_PREEMPTIONS` (default 3)
/// and `WH_MODEL_MAX_ITERATIONS` (default 1,000,000) from the environment,
/// mirroring the loom workflow the CI job pins.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum context switches away from a still-runnable thread along one
    /// execution. 2–3 catches almost all real bugs (loom's observation) and
    /// keeps the search space polynomial.
    pub max_preemptions: usize,
    /// Hard cap on explored executions; exceeding it fails loudly rather
    /// than silently under-exploring.
    pub max_iterations: u64,
}

impl Default for Builder {
    fn default() -> Self {
        fn env_num(key: &str, default: u64) -> u64 {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        Builder {
            max_preemptions: env_num("LOOM_MAX_PREEMPTIONS", 3) as usize,
            max_iterations: env_num("WH_MODEL_MAX_ITERATIONS", 1_000_000),
        }
    }
}

/// Outcome of a successful exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Executions explored before the space was exhausted.
    pub iterations: u64,
    /// Longest schedule (scheduling decisions) seen.
    pub max_depth: usize,
}

/// A failing interleaving.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Panic message, deadlock report, or race description.
    pub message: String,
    /// The schedule that triggered it: thread ids in the order they were
    /// granted execution at each scheduling point.
    pub schedule: Vec<usize>,
    /// Which execution (0-based) failed.
    pub iteration: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed at iteration {}: {}\nschedule: {:?}",
            self.iteration, self.message, self.schedule
        )
    }
}

/// Exhaustively explore `f` under the default [`Builder`], panicking with
/// the failing schedule if any interleaving fails.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Builder::default(), f);
}

/// [`model`] with explicit limits.
pub fn model_with<F>(builder: Builder, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = try_model(builder, f) {
        panic!("{failure}"); // lint: allow(no-panic) — the checker's reporting contract: panic with the schedule
    }
}

/// Explore `f`, returning the failing interleaving instead of panicking —
/// the form the "checker catches the historical bug" regression tests use.
///
/// # Errors
///
/// Returns the [`Failure`] (message plus schedule) of the first
/// interleaving that panics, deadlocks, or trips the race detector.
pub fn try_model<F>(builder: Builder, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    let mut max_depth = 0;
    loop {
        assert!(
            iterations < builder.max_iterations,
            "wh-model: exceeded {} executions without exhausting the \
             interleaving space; shrink the model or raise \
             WH_MODEL_MAX_ITERATIONS",
            builder.max_iterations
        );
        let exec = Execution::new(prefix.clone());
        Execution::run(&exec, Arc::clone(&f));
        iterations += 1;
        let (trace, failure) = exec.into_outcome();
        max_depth = max_depth.max(trace.len());
        if let Some(message) = failure {
            return Err(Failure {
                message,
                schedule: trace.iter().map(exec::Choice::chosen).collect(),
                iteration: iterations - 1,
            });
        }
        match exec::next_prefix(&trace, builder.max_preemptions) {
            Some(p) => prefix = p,
            None => {
                return Ok(Report {
                    iterations,
                    max_depth,
                })
            }
        }
    }
}

/// Whether the calling thread is currently executing inside a model run.
/// The sync/cell/thread types fall back to plain `std` behavior when this
/// is false, so code compiled against the shim still works outside
/// exploration (e.g. under accidental feature unification).
pub fn in_model() -> bool {
    exec::current().is_some()
}
