//! Model replacements for `std::sync` primitives.
//!
//! Each type wraps its `std` counterpart and mirrors its API (including
//! poisoning), adding a scheduling point before every operation when the
//! calling thread runs inside [`crate::model`]. Outside a model run they
//! behave exactly like the `std` types, so code compiled against the
//! `wh-kernel` shim keeps working even if the `model` feature leaks into a
//! production build through feature unification.
//!
//! Blocking is cooperative: bookkeeping in the execution state decides who
//! owns a lock, so the inner `std` lock is only ever taken uncontended.
//! Addresses identify sync objects, so a `Mutex`/`RwLock`/atomic must not
//! move (e.g. out of its `Arc`) during a model run.

// lint: allow-file(no-panic) — these are the instrumented primitives the
// checker controls; impossible-state panics here abort the explored
// schedule, which is exactly the checker's failure-reporting channel.
// lint: allow-file(ordering-comment) — Ordering idents in this file
// classify the *caller's* ordering argument (is_acquire/is_release
// matches); the real accesses delegate to std with the caller's choice.
use crate::exec::current;
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

/// Atomic types with scheduling points and happens-before edges.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    fn is_acquire(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn is_release(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model counterpart of the same-named `std::sync::atomic` type.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Create a new atomic.
                pub const fn new(v: $ty) -> Self {
                    $name {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                fn addr(&self) -> usize {
                    std::ptr::from_ref(self) as usize
                }

                fn edge(&self, acquire: bool, release: bool) {
                    if let Some((exec, me)) = super::current() {
                        exec.atomic_op(me, self.addr(), acquire, release);
                    }
                }

                fn point(&self) {
                    if let Some((exec, me)) = super::current() {
                        exec.yield_point(me);
                    }
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $ty {
                    self.point();
                    let v = self.inner.load(order);
                    self.edge(is_acquire(order), false);
                    v
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, order: Ordering) {
                    self.point();
                    self.inner.store(v, order);
                    self.edge(false, is_release(order));
                }

                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    self.point();
                    let r = self.inner.fetch_add(v, order);
                    self.edge(is_acquire(order), is_release(order));
                    r
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    self.point();
                    let r = self.inner.fetch_sub(v, order);
                    self.edge(is_acquire(order), is_release(order));
                    r
                }

                /// Atomic maximum; returns the previous value.
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    self.point();
                    let r = self.inner.fetch_max(v, order);
                    self.edge(is_acquire(order), is_release(order));
                    r
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    self.point();
                    let r = self.inner.swap(v, order);
                    self.edge(is_acquire(order), is_release(order));
                    r
                }

                /// Atomic compare-exchange.
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differed from `cur`.
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.point();
                    let r = self.inner.compare_exchange(cur, new, success, failure);
                    match r {
                        Ok(_) => self.edge(is_acquire(success), is_release(success)),
                        Err(_) => self.edge(is_acquire(failure), false),
                    }
                    r
                }

                /// Exclusive-access read (no scheduling point needed).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }

                /// Unwrap the value.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    model_atomic!(AtomicU32, AtomicU32, u32);
    model_atomic!(AtomicU64, AtomicU64, u64);
    model_atomic!(AtomicUsize, AtomicUsize, usize);

    /// Model counterpart of `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic flag.
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        fn addr(&self) -> usize {
            std::ptr::from_ref(self) as usize
        }

        fn hooks(&self, acquire: bool, release: bool) {
            if let Some((exec, me)) = current_reexport() {
                exec.atomic_op(me, self.addr(), acquire, release);
            }
        }

        fn point(&self) {
            if let Some((exec, me)) = current_reexport() {
                exec.yield_point(me);
            }
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> bool {
            self.point();
            let v = self.inner.load(order);
            self.hooks(is_acquire(order), false);
            v
        }

        /// Atomic store.
        pub fn store(&self, v: bool, order: Ordering) {
            self.point();
            self.inner.store(v, order);
            self.hooks(false, is_release(order));
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            self.point();
            let r = self.inner.swap(v, order);
            self.hooks(is_acquire(order), is_release(order));
            r
        }

        /// Atomic compare-exchange.
        ///
        /// # Errors
        ///
        /// Returns the actual value when it differed from `cur`.
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.point();
            let r = self.inner.compare_exchange(cur, new, success, failure);
            match r {
                Ok(_) => self.hooks(is_acquire(success), is_release(success)),
                Err(_) => self.hooks(is_acquire(failure), false),
            }
            r
        }
    }

    fn current_reexport() -> Option<(std::sync::Arc<crate::exec::Execution>, usize)> {
        super::current()
    }
}

/// Mutual exclusion with cooperative model scheduling; mirrors
/// [`std::sync::Mutex`] including poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Dropped before the model bookkeeping releases the lock (no other
    // thread runs in between; the scheduler serializes execution).
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<crate::exec::Execution>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(v: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(v),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquire, parking cooperatively under the model scheduler.
    ///
    /// # Errors
    ///
    /// Propagates poisoning exactly like [`std::sync::Mutex::lock`].
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                exec.mutex_lock(me, self.addr());
                let model = Some((exec, me, self.addr()));
                match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        model,
                    }),
                    Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        model,
                    })),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("wh-model: bookkeeping granted a held mutex")
                    }
                }
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Non-blocking acquire.
    ///
    /// # Errors
    ///
    /// [`TryLockError::WouldBlock`] when held; poisoning as in `std`.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                if !exec.mutex_try_lock(me, self.addr()) {
                    return Err(TryLockError::WouldBlock);
                }
                let model = Some((exec, me, self.addr()));
                match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        model,
                    }),
                    Err(TryLockError::Poisoned(p)) => {
                        Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                            inner: Some(p.into_inner()),
                            model,
                        })))
                    }
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("wh-model: bookkeeping granted a held mutex")
                    }
                }
            }
            None => match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
        }
    }

    /// Exclusive access without locking.
    ///
    /// # Errors
    ///
    /// Propagates poisoning.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Unwrap the value.
    ///
    /// # Errors
    ///
    /// Propagates poisoning.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still held")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still held")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, addr)) = self.model.take() {
            exec.mutex_unlock(me, addr);
            // Post-release scheduling point, skipped mid-unwind: a
            // panicking thread must not park.
            if !std::thread::panicking() {
                exec.yield_point(me);
            }
        }
    }
}

/// Reader-writer lock with cooperative model scheduling; mirrors
/// [`std::sync::RwLock`] including poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(std::sync::Arc<crate::exec::Execution>, usize, usize)>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(std::sync::Arc<crate::exec::Execution>, usize, usize)>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(v: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(v),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquire shared.
    ///
    /// # Errors
    ///
    /// Propagates poisoning.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        match current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                exec.rw_lock(me, self.addr(), false);
                let model = Some((exec, me, self.addr()));
                match self.inner.try_read() {
                    Ok(g) => Ok(RwLockReadGuard {
                        inner: Some(g),
                        model,
                    }),
                    Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(RwLockReadGuard {
                        inner: Some(p.into_inner()),
                        model,
                    })),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("wh-model: bookkeeping granted a held rwlock")
                    }
                }
            }
            None => match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Acquire exclusive.
    ///
    /// # Errors
    ///
    /// Propagates poisoning.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        match current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                exec.rw_lock(me, self.addr(), true);
                let model = Some((exec, me, self.addr()));
                match self.inner.try_write() {
                    Ok(g) => Ok(RwLockWriteGuard {
                        inner: Some(g),
                        model,
                    }),
                    Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(RwLockWriteGuard {
                        inner: Some(p.into_inner()),
                        model,
                    })),
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("wh-model: bookkeeping granted a held rwlock")
                    }
                }
            }
            None => match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Non-blocking shared acquire.
    ///
    /// # Errors
    ///
    /// [`TryLockError::WouldBlock`] when writer-held; poisoning as in `std`.
    pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
        match current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                if !exec.rw_try_lock(me, self.addr(), false) {
                    return Err(TryLockError::WouldBlock);
                }
                let model = Some((exec, me, self.addr()));
                match self.inner.try_read() {
                    Ok(g) => Ok(RwLockReadGuard {
                        inner: Some(g),
                        model,
                    }),
                    Err(TryLockError::Poisoned(p)) => {
                        Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                            inner: Some(p.into_inner()),
                            model,
                        })))
                    }
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("wh-model: bookkeeping granted a held rwlock")
                    }
                }
            }
            None => match self.inner.try_read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                        inner: Some(p.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
        }
    }

    /// Non-blocking exclusive acquire.
    ///
    /// # Errors
    ///
    /// [`TryLockError::WouldBlock`] when held; poisoning as in `std`.
    pub fn try_write(&self) -> TryLockResult<RwLockWriteGuard<'_, T>> {
        match current() {
            Some((exec, me)) => {
                exec.yield_point(me);
                if !exec.rw_try_lock(me, self.addr(), true) {
                    return Err(TryLockError::WouldBlock);
                }
                let model = Some((exec, me, self.addr()));
                match self.inner.try_write() {
                    Ok(g) => Ok(RwLockWriteGuard {
                        inner: Some(g),
                        model,
                    }),
                    Err(TryLockError::Poisoned(p)) => {
                        Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                            inner: Some(p.into_inner()),
                            model,
                        })))
                    }
                    Err(TryLockError::WouldBlock) => {
                        unreachable!("wh-model: bookkeeping granted a held rwlock")
                    }
                }
            }
            None => match self.inner.try_write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                        inner: Some(p.into_inner()),
                        model: None,
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still held")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, addr)) = self.model.take() {
            exec.rw_unlock(me, addr, false);
            if !std::thread::panicking() {
                exec.yield_point(me);
            }
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still held")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still held")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((exec, me, addr)) = self.model.take() {
            exec.rw_unlock(me, addr, true);
            if !std::thread::panicking() {
                exec.yield_point(me);
            }
        }
    }
}
