//! Race-checked interior mutability, mirroring loom's `UnsafeCell` API.
//!
//! Every access inside a model run is stamped with the accessor's vector
//! clock and checked against prior accesses: a read or write that is not
//! ordered (happens-before) after every concurrent write — or a write
//! concurrent with an unsynchronized read — fails the execution as a data
//! race. Because `Relaxed` atomics create no happens-before edge, a value
//! published through a `Relaxed` store and dereferenced after a `Relaxed`
//! load is flagged even though the sequentially consistent interleaving
//! reads the "right" value.

use crate::exec::current;

/// Model counterpart of [`std::cell::UnsafeCell`] with dynamic race checks.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
}

// Model-only types: tests share cells across model threads on purpose; the
// race detector (not the type system) enforces exclusion. Not for
// production use — `wh-kernel`'s sync shim only maps onto this under the
// `model` feature.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Wrap a value.
    pub const fn new(v: T) -> Self {
        UnsafeCell {
            inner: std::cell::UnsafeCell::new(v),
        }
    }

    fn addr(&self) -> usize {
        self.inner.get() as usize
    }

    /// Immutable access: `f` gets the raw pointer; dereferencing it is the
    /// caller's `unsafe` obligation, checked dynamically under the model.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some((exec, me)) = current() {
            exec.yield_point(me);
            exec.cell_access(me, self.addr(), false, "read");
        }
        f(self.inner.get())
    }

    /// Mutable access; same contract as [`UnsafeCell::with`].
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some((exec, me)) = current() {
            exec.yield_point(me);
            exec.cell_access(me, self.addr(), true, "write");
        }
        f(self.inner.get())
    }

    /// Unwrap the value (exclusive, no check needed).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Exclusive access (no check needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}
