//! Vector clocks for the happens-before race detector.

/// A vector clock: component `i` is the number of release events thread `i`
/// had performed the last time its knowledge reached this clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn new() -> Self {
        VClock(Vec::new())
    }

    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component-wise maximum: afterwards `self` knows everything `other`
    /// knew.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Raise component `tid` to at least `val` (recording an access stamp).
    pub(crate) fn record(&mut self, tid: usize, val: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = self.0[tid].max(val);
    }

    /// Whether every component of `self` is known to `other`
    /// (`self ≤ other`): the event stamped `self` happens-before one whose
    /// thread clock is `other`.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::new();
        b.bump(1);
        assert!(!a.le(&b));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }
}
