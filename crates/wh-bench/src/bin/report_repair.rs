//! Experiment E25 — session repair vs cursor restart under an expire storm.
//!
//! A long-running reader scan on bare 2VNL (`n = 2`, no pacer, no adaptive
//! window) holds its session across several maintenance commits, so most
//! attempts expire mid-scan. The two arms absorb those expirations
//! differently:
//!
//! * **restart-only** — the cursor-restart protocol: discard the partial
//!   buffer and rescan from scratch at a fresh VN, attempt after attempt,
//!   until one scan completes inside a maintenance gap.
//! * **repair** — repair-first: the expired attempt's result is rebuilt
//!   from the maintenance commits' retained net-effect deltas
//!   ([`wh_vnl::RepairEngine`]) and re-admitted at `currentVN`; restart
//!   remains only as the fallback when repair declines.
//!
//! Both arms run the same seeds, table, commit cadence, and mid-scan hold,
//! and both are held to the soak oracle: every answer must be one uniform
//! committed stamp — zero wrong answers, repaired or rescanned. The E25
//! acceptance criteria (process exits nonzero on failure): the repair arm
//! must actually repair, must discard strictly fewer buffered rows
//! (wasted work), and must show a strictly lower p99 read latency.
//!
//! `WH_BENCH_QUICK=1` shrinks seeds and volumes for CI.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use wh_bench::json::{self, Json};
use wh_bench::print_table;
use wh_types::{Column, DataType, Row, Schema, Value};
use wh_vnl::{RepairEngine, RetryPolicy, VnlTable};

struct Config {
    seeds: Vec<u64>,
    keys: i64,
    commits: u32,
    readers: usize,
    reads_per_reader: u32,
    maintenance_gap: Duration,
}

impl Config {
    fn from_env() -> Config {
        let quick = std::env::var("WH_BENCH_QUICK").is_ok();
        Config {
            seeds: if quick {
                vec![11, 42, 1997]
            } else {
                vec![11, 42, 1997, 7, 23]
            },
            keys: if quick { 24 } else { 64 },
            commits: if quick { 300 } else { 600 },
            readers: 3,
            reads_per_reader: if quick { 20 } else { 40 },
            maintenance_gap: Duration::from_micros(200),
        }
    }
}

/// What one arm observed across every seed.
#[derive(Default)]
struct ArmTotals {
    reads_ok: u64,
    wrong_answers: u64,
    unexpected_errors: u64,
    retry_exhausted: u64,
    attempts: u64,
    expirations: u64,
    repaired: u64,
    restarted: u64,
    wasted_rows: u64,
    latencies_ns: Vec<u64>,
}

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .expect("static schema literal")
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One arm on one seed: a stamping writer against timed, oracle-checked
/// reader scans that hold the session mid-scan to provoke expiration.
fn run_arm(cfg: &Config, seed: u64, repair: bool, totals: &mut ArmTotals) {
    let table = Arc::new(VnlTable::create_named("kv", kv_schema(), 2).expect("create table"));
    let rows: Vec<Row> = (0..cfg.keys)
        .map(|k| vec![Value::from(k), Value::from(0)])
        .collect();
    table.load_initial(&rows).expect("load");
    let committed: Arc<Mutex<BTreeSet<i64>>> = Arc::new(Mutex::new(BTreeSet::from([0])));

    let reads_ok = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let unexpected = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    let expirations = AtomicU64::new(0);
    let repaired = AtomicU64::new(0);
    let restarted = AtomicU64::new(0);
    let wasted_rows = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        // The single writer: stamp every value with the generation number.
        {
            let table = Arc::clone(&table);
            let committed = Arc::clone(&committed);
            let (commits, gap) = (cfg.commits, cfg.maintenance_gap);
            s.spawn(move || {
                for g in 1..=i64::from(commits) {
                    let txn = table.begin_maintenance().expect("begin maintenance");
                    txn.execute_sql(
                        &format!("UPDATE kv SET value = {g}"),
                        &wh_sql::Params::new(),
                    )
                    .expect("stamp update");
                    locked(&committed).insert(g);
                    txn.commit().expect("commit");
                    std::thread::sleep(gap);
                }
            });
        }

        for reader in 0..cfg.readers as u64 {
            let table = Arc::clone(&table);
            let committed = Arc::clone(&committed);
            let retry = RetryPolicy::default()
                .with_max_attempts(32)
                .with_backoff(Duration::from_micros(50), Duration::from_millis(2))
                .with_seed(seed ^ reader.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let (ok_c, wrong_c, unx_c, exh_c, att_c, exp_c, rep_c, rst_c, wst_c, lat) = (
                &reads_ok,
                &wrong,
                &unexpected,
                &exhausted,
                &attempts,
                &expirations,
                &repaired,
                &restarted,
                &wasted_rows,
                &latencies,
            );
            let keys = cfg.keys;
            s.spawn(move || {
                let engine = RepairEngine::new(&table);
                let rng = std::cell::RefCell::new(wh_types::SplitMix64::seed_from_u64(
                    seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ reader,
                ));
                for _ in 0..cfg.reads_per_reader {
                    let wasted = std::cell::Cell::new(0u64);
                    let started = Instant::now();
                    // A "long" read: scan, then on half the attempts dwell
                    // until three commits overtake the session — guaranteed
                    // expiry at n = 2 regardless of scheduler jitter — then
                    // scan again inside the same session. The restart arm's
                    // attempt count therefore goes geometric (a real
                    // latency tail) while repair resolves every expiration
                    // in one patch. The boolean is the serializability
                    // verdict (both scans identical); the repaired single
                    // row set is vacuously serial.
                    let op = |session: &wh_vnl::ReaderSession<'_>| {
                        let first = session.scan()?;
                        if rng.borrow_mut().chance(1, 2) {
                            let target = table.version().snapshot().current_vn + 3;
                            let deadline = Instant::now() + Duration::from_millis(100);
                            while table.version().snapshot().current_vn < target
                                && Instant::now() < deadline
                            {
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        }
                        match session.scan() {
                            Ok(second) => {
                                let serial = second == first;
                                Ok((second, serial))
                            }
                            Err(e) => {
                                // The cursor-restart protocol discards the
                                // completed first pass; count what that cost.
                                wasted.set(wasted.get() + first.len() as u64);
                                Err(e)
                            }
                        }
                    };
                    let (res, stats) = if repair {
                        retry.run_repaired(&table, op, |svn| {
                            engine
                                .scan_at_current(svn)
                                .ok()
                                .flatten()
                                .map(|r| (r.rows, true))
                        })
                    } else {
                        retry.run_repaired(&table, op, |_| None)
                    };
                    let elapsed = started.elapsed().as_nanos() as u64;
                    att_c.fetch_add(u64::from(stats.attempts), Ordering::Relaxed);
                    exp_c.fetch_add(u64::from(stats.expirations), Ordering::Relaxed);
                    rep_c.fetch_add(u64::from(stats.repaired), Ordering::Relaxed);
                    rst_c.fetch_add(u64::from(stats.restarted), Ordering::Relaxed);
                    wst_c.fetch_add(wasted.get(), Ordering::Relaxed);
                    match res {
                        Ok((rows, serial)) => {
                            let uniform = rows.len() == keys as usize
                                && rows.windows(2).all(|w| w[0][1] == w[1][1]);
                            let stamp_ok = rows.first().is_some_and(|row| {
                                row[1]
                                    .as_int()
                                    .is_some_and(|v| locked(&committed).contains(&v))
                            });
                            if serial && uniform && stamp_ok {
                                ok_c.fetch_add(1, Ordering::Relaxed);
                                locked(lat).push(elapsed);
                            } else {
                                wrong_c.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(wh_vnl::VnlError::RetryExhausted { .. }) => {
                            exh_c.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            unx_c.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    totals.reads_ok += reads_ok.into_inner();
    totals.wrong_answers += wrong.into_inner();
    totals.unexpected_errors += unexpected.into_inner();
    totals.retry_exhausted += exhausted.into_inner();
    totals.attempts += attempts.into_inner();
    totals.expirations += expirations.into_inner();
    totals.repaired += repaired.into_inner();
    totals.restarted += restarted.into_inner();
    totals.wasted_rows += wasted_rows.into_inner();
    totals.latencies_ns.extend(
        latencies
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
    );
}

fn arm_json(t: &ArmTotals, p50: u64, p99: u64) -> Json {
    Json::obj([
        ("reads_ok", Json::UInt(t.reads_ok)),
        ("wrong_answers", Json::UInt(t.wrong_answers)),
        ("unexpected_errors", Json::UInt(t.unexpected_errors)),
        ("retry_exhausted", Json::UInt(t.retry_exhausted)),
        ("attempts", Json::UInt(t.attempts)),
        ("expirations", Json::UInt(t.expirations)),
        ("repaired", Json::UInt(t.repaired)),
        ("restarted", Json::UInt(t.restarted)),
        ("wasted_rows", Json::UInt(t.wasted_rows)),
        ("p50_read_us", Json::Fixed(p50 as f64 / 1_000.0, 1)),
        ("p99_read_us", Json::Fixed(p99 as f64 / 1_000.0, 1)),
    ])
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "E25: session repair vs cursor restart under an expire storm\n\
         ({} seeds, {} keys, {} commits @ {:?} gap, {}×{} reads dwelling 3 commits \
         mid-scan on half the attempts, n = 2)\n",
        cfg.seeds.len(),
        cfg.keys,
        cfg.commits,
        cfg.maintenance_gap,
        cfg.readers,
        cfg.reads_per_reader,
    );

    let mut restart_only = ArmTotals::default();
    let mut repair = ArmTotals::default();
    for &seed in &cfg.seeds {
        run_arm(&cfg, seed, false, &mut restart_only);
        run_arm(&cfg, seed, true, &mut repair);
    }
    restart_only.latencies_ns.sort_unstable();
    repair.latencies_ns.sort_unstable();
    let (restart_p50, restart_p99) = (
        percentile_ns(&restart_only.latencies_ns, 0.50),
        percentile_ns(&restart_only.latencies_ns, 0.99),
    );
    let (repair_p50, repair_p99) = (
        percentile_ns(&repair.latencies_ns, 0.50),
        percentile_ns(&repair.latencies_ns, 0.99),
    );

    let fmt_arm = |name: &str, t: &ArmTotals, p50: u64, p99: u64| {
        vec![
            name.to_string(),
            t.reads_ok.to_string(),
            t.wrong_answers.to_string(),
            t.expirations.to_string(),
            t.repaired.to_string(),
            t.restarted.to_string(),
            t.wasted_rows.to_string(),
            format!("{:.1}", p50 as f64 / 1_000.0),
            format!("{:.1}", p99 as f64 / 1_000.0),
        ]
    };
    print_table(
        &[
            "arm",
            "reads_ok",
            "wrong",
            "expired",
            "repaired",
            "restarted",
            "wasted rows",
            "p50 µs",
            "p99 µs",
        ],
        &[
            fmt_arm("restart-only", &restart_only, restart_p50, restart_p99),
            fmt_arm("repair", &repair, repair_p50, repair_p99),
        ],
    );

    let wasted_reduction_pct = if restart_only.wasted_rows > 0 {
        (1.0 - repair.wasted_rows as f64 / restart_only.wasted_rows as f64) * 100.0
    } else {
        0.0
    };
    let p99_reduction_pct = if restart_p99 > 0 {
        (1.0 - repair_p99 as f64 / restart_p99 as f64) * 100.0
    } else {
        0.0
    };
    let correct = restart_only.wrong_answers == 0
        && restart_only.unexpected_errors == 0
        && repair.wrong_answers == 0
        && repair.unexpected_errors == 0;
    let engaged = repair.repaired > 0 && restart_only.repaired == 0;
    let less_waste = repair.wasted_rows < restart_only.wasted_rows;
    let faster_tail = repair_p99 < restart_p99;
    println!(
        "\nwasted rows: restart {} vs repair {} ({wasted_reduction_pct:.0}% reduction); \
         p99 read: {:.1}µs vs {:.1}µs ({p99_reduction_pct:.0}% reduction)",
        restart_only.wasted_rows,
        repair.wasted_rows,
        restart_p99 as f64 / 1_000.0,
        repair_p99 as f64 / 1_000.0,
    );
    println!(
        "verdict: {}",
        if correct && engaged && less_waste && faster_tail {
            "PASS — repair answers exactly with less wasted work and a shorter tail"
        } else {
            "FAIL — see gates below"
        }
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E25-repair".into())),
        ("keys", Json::Int(cfg.keys)),
        ("commits", Json::UInt(u64::from(cfg.commits))),
        ("readers", Json::UInt(cfg.readers as u64)),
        ("seeds", Json::UInt(cfg.seeds.len() as u64)),
        (
            "restart_only",
            arm_json(&restart_only, restart_p50, restart_p99),
        ),
        ("repair", arm_json(&repair, repair_p50, repair_p99)),
        ("wasted_reduction_pct", Json::Fixed(wasted_reduction_pct, 1)),
        ("p99_reduction_pct", Json::Fixed(p99_reduction_pct, 1)),
        ("zero_wrong_answers", Json::Bool(correct)),
        ("repair_engaged", Json::Bool(engaged)),
        ("less_wasted_work", Json::Bool(less_waste)),
        ("faster_p99", Json::Bool(faster_tail)),
    ]);
    json::write_report("BENCH_repair.json", &doc);

    // E25 acceptance gates — a nonzero exit fails the CI job.
    assert!(
        correct,
        "E25 acceptance: zero wrong answers in both arms \
         (restart {restart_only:?} repair {repair:?} wrong/unexpected)",
        restart_only = (restart_only.wrong_answers, restart_only.unexpected_errors),
        repair = (repair.wrong_answers, repair.unexpected_errors),
    );
    assert!(
        engaged,
        "E25 acceptance: the repair arm must repair (repaired {} / restart-arm repaired {})",
        repair.repaired, restart_only.repaired
    );
    assert!(
        less_waste,
        "E25 acceptance: repair must discard fewer buffered rows ({} vs {})",
        repair.wasted_rows, restart_only.wasted_rows
    );
    assert!(
        faster_tail,
        "E25 acceptance: repair must shorten the p99 read tail ({repair_p99}ns vs {restart_p99}ns)"
    );
}
