//! Experiment E19 — the crash matrix (§7's no-log claim, adversarially):
//! every registered failpoint × every maintenance operation type, crash,
//! recover from tuple version slots alone, model-check. Requires
//! `--features failpoints`; without it the binary explains how to enable it.

#[cfg(feature = "failpoints")]
fn main() {
    use wh_bench::print_table;
    use wh_vnl::crashmatrix::{self, OpKind};

    let ns = [2usize, 3, 4];
    println!(
        "E19: crash matrix — {} failpoints × {} operation types × n ∈ {ns:?}\n",
        crashmatrix::catalog().len(),
        OpKind::ALL.len(),
    );
    let report = crashmatrix::run_matrix(&ns);

    let injected = report.cells.iter().filter(|c| c.injected).count();
    let committed = report.cells.iter().filter(|c| c.committed).count();
    println!(
        "{} cells recovered and model-checked ({} with the armed fault firing \
         mid-operation, {} surviving to a clean commit), 0 log records written.\n",
        report.cells.len(),
        injected,
        committed,
    );

    println!("-- recovery work per operation type (all n, all points) --");
    let mut rows = Vec::new();
    for op in OpKind::ALL {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.op == op).collect();
        let sum = |f: fn(&wh_vnl::RecoveryReport) -> u64| -> u64 {
            cells.iter().map(|c| f(&c.recovery)).sum()
        };
        rows.push(vec![
            format!("{op:?}"),
            cells.len().to_string(),
            sum(|r| r.pending_found).to_string(),
            sum(|r| r.orphans_removed).to_string(),
            sum(|r| r.resurrections_reversed).to_string(),
            sum(|r| r.slots_restored).to_string(),
            sum(|r| r.reconstructed_slots).to_string(),
            sum(|r| r.duplicated_oldest_slots).to_string(),
        ]);
    }
    print_table(
        &[
            "op",
            "cells",
            "pending",
            "orphans",
            "resurr",
            "restored",
            "recon(2VNL)",
            "dup(nVNL)",
        ],
        &rows,
    );

    println!("\n-- failpoint coverage (hits = reached, fired = fault injected) --");
    let mut rows = Vec::new();
    for s in &report.coverage {
        rows.push(vec![
            s.point.to_string(),
            s.hits.to_string(),
            s.fired.to_string(),
        ]);
    }
    print_table(&["failpoint", "hits", "fired"], &rows);
    println!("\nEvery registered failpoint fired at least once: coverage holds.");

    // Machine-readable JSON (same shared writer as the other reports).
    use wh_bench::json::{self, Json};
    let doc = Json::obj([
        ("experiment", "E19".into()),
        ("cells", report.cells.len().into()),
        ("injected", injected.into()),
        ("committed", committed.into()),
        (
            "coverage",
            Json::Array(
                report
                    .coverage
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("failpoint", s.point.to_string().into()),
                            ("hits", s.hits.into()),
                            ("fired", s.fired.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    json::write_report("BENCH_fault.json", &doc);
}

#[cfg(not(feature = "failpoints"))]
fn main() {
    eprintln!(
        "report_fault needs the fault-injection hooks compiled in:\n\
         \n    cargo run --release -p wh-bench --features failpoints --bin report_fault\n\
         \nTier-1 builds stay failpoint-free by design (zero overhead)."
    );
    std::process::exit(2);
}
