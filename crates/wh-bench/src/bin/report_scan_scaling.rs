//! Experiment E18 — parallel partitioned scan scaling.
//!
//! The §6 experiments argue 2VNL adds almost nothing to *reader* cost; this
//! report measures the other half of that bargain: how fast the reader hot
//! path goes when the heap scan is partitioned across threads, with Table 1
//! visibility evaluated on encoded bytes and projection pushdown. Three
//! workloads over a DailySales relation (paper Example 2.1), each at
//! 1/2/4/8 threads, each with and without an active maintenance
//! transaction (which double-slots a share of the tuples, so version
//! extraction really runs):
//!
//! * `scan` — full-relation visitor scan, all columns.
//! * `filter` — `WHERE total_sales >= :cutoff` with a 2-column projection,
//!   streamed through the SQL executor.
//! * `aggregate` — `GROUP BY product_line` SUM, folded into per-worker
//!   partial aggregate maps merged at the end.
//!
//! Since E22 every probe runs under *both* reader pipelines — `scalar`
//! (the ByteScanner reference path) and `batched` (gather + branch-free
//! classify + selective decode) — so the report carries before/after
//! medians in one document and `bench_check` can gate on the batched
//! path's relative performance against the committed baseline.
//!
//! Writes machine-readable results to `BENCH_scan.json` (override with
//! `WH_BENCH_OUT`). `WH_BENCH_QUICK=1` shrinks the relation and repeat
//! count for CI smoke runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wh_bench::json::{self, Json};
use wh_bench::print_table;
use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Value};
use wh_vnl::{ScanPipeline, VnlTable};

struct Config {
    cities: usize,
    lines: usize,
    days: usize,
    repeats: usize,
    quick: bool,
}

impl Config {
    fn from_env() -> Config {
        let quick = std::env::var("WH_BENCH_QUICK").is_ok();
        if quick {
            // 25 x 8 x 50 = 10k rows: enough pages to partition, fast in CI.
            Config {
                cities: 25,
                lines: 8,
                days: 50,
                repeats: 3,
                quick,
            }
        } else {
            // 125 x 16 x 50 = 100k rows, the ISSUE target size.
            Config {
                cities: 125,
                lines: 16,
                days: 50,
                repeats: 5,
                quick,
            }
        }
    }

    fn rows(&self) -> usize {
        self.cities * self.lines * self.days
    }
}

/// The 50 sale dates: Oct 1–25 and Nov 1–25, 1996 (paper's running window).
fn dates(days: usize) -> Vec<Date> {
    (0..days)
        .map(|d| {
            if d < 25 {
                Date::ymd(1996, 10, (d + 1) as u8)
            } else {
                Date::ymd(1996, 11, (d - 25 + 1) as u8)
            }
        })
        .collect()
}

fn build_table(cfg: &Config) -> VnlTable {
    let t =
        VnlTable::create_named("DailySales", daily_sales_schema(), 2).expect("create DailySales");
    let dates = dates(cfg.days);
    let mut rows = Vec::with_capacity(cfg.rows());
    for c in 0..cfg.cities {
        for l in 0..cfg.lines {
            for d in &dates {
                rows.push(vec![
                    Value::from(format!("City-{c:03}").as_str()),
                    Value::from("CA"),
                    Value::from(format!("line-{l:02}").as_str()),
                    Value::from(*d),
                    Value::from(((c * 7 + l * 13) % 100) as i64 * 100),
                ]);
            }
        }
    }
    t.load_initial(&rows).expect("load DailySales");
    t
}

/// Median wall-clock milliseconds of `repeats` runs of `f`.
fn median_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Measurement {
    workload: &'static str,
    pipeline: &'static str,
    maintenance_active: bool,
    threads: usize,
    median_ms: f64,
}

fn pipeline_name(p: ScanPipeline) -> &'static str {
    match p {
        ScanPipeline::Scalar => "scalar",
        ScanPipeline::Batched => "batched",
    }
}

fn run_workloads(
    table: &VnlTable,
    cfg: &Config,
    pipeline: ScanPipeline,
    maintenance_active: bool,
    expected_rows: usize,
    out: &mut Vec<Measurement>,
) {
    let mut session = table.begin_session();
    session.set_pipeline(pipeline);
    let pipeline = pipeline_name(pipeline);
    let filter_sql = "SELECT city, total_sales FROM DailySales WHERE total_sales >= 5000";
    let agg_sql = "SELECT product_line, SUM(total_sales) FROM DailySales GROUP BY product_line";

    for &threads in &[1usize, 2, 4, 8] {
        // Full scan: count rows through the visitor API.
        let ms = median_ms(cfg.repeats, || {
            let n = AtomicU64::new(0);
            if threads == 1 {
                session
                    .scan_with(|_| {
                        n.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })
                    .expect("serial scan");
            } else {
                session
                    .scan_parallel(threads, |_, _| {
                        n.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })
                    .expect("parallel scan");
            }
            assert_eq!(n.load(Ordering::Relaxed) as usize, expected_rows);
        });
        out.push(Measurement {
            workload: "scan",
            pipeline,
            maintenance_active,
            threads,
            median_ms: ms,
        });

        // Filtered scan through the streaming executor.
        let ms = median_ms(cfg.repeats, || {
            let r = if threads == 1 {
                session.query(filter_sql).expect("filter query")
            } else {
                session
                    .query_parallel(filter_sql, threads)
                    .expect("filter query")
            };
            assert!(!r.rows.is_empty());
        });
        out.push(Measurement {
            workload: "filter",
            pipeline,
            maintenance_active,
            threads,
            median_ms: ms,
        });

        // Grouped aggregate with per-worker partial maps.
        let ms = median_ms(cfg.repeats, || {
            let r = if threads == 1 {
                session.query(agg_sql).expect("aggregate query")
            } else {
                session
                    .query_parallel(agg_sql, threads)
                    .expect("aggregate query")
            };
            assert_eq!(r.rows.len(), cfg.lines);
        });
        out.push(Measurement {
            workload: "aggregate",
            pipeline,
            maintenance_active,
            threads,
            median_ms: ms,
        });
    }
    session.finish();
}

fn lookup_ms(
    results: &[Measurement],
    workload: &str,
    pipeline: &str,
    active: bool,
    threads: usize,
) -> f64 {
    results
        .iter()
        .find(|m| {
            m.workload == workload
                && m.pipeline == pipeline
                && m.maintenance_active == active
                && m.threads == threads
        })
        .map_or(f64::NAN, |m| m.median_ms)
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "E18/E22: scan scaling, scalar vs batched pipelines ({} rows{})\n",
        cfg.rows(),
        if cfg.quick { ", quick mode" } else { "" }
    );

    let table = build_table(&cfg);
    let mut results: Vec<Measurement> = Vec::new();
    let pipelines = [ScanPipeline::Scalar, ScanPipeline::Batched];

    // Phase 1: quiescent relation, every tuple single-slotted.
    for p in pipelines {
        run_workloads(&table, &cfg, p, false, cfg.rows(), &mut results);
    }

    // Phase 2: an active maintenance transaction has updated every tuple of
    // one city per 5 (20% of the relation double-slotted). The session is
    // pinned before the transaction began, so Table 1 routes it to the
    // pre-update slots — version extraction does real work.
    let txn = table.begin_maintenance().expect("begin maintenance");
    let mut touched = 0;
    for c in (0..cfg.cities).step_by(5) {
        touched += txn
            .execute_sql(
                &format!(
                    "UPDATE DailySales SET total_sales = total_sales + 1 \
                     WHERE city = 'City-{c:03}'"
                ),
                &Params::new(),
            )
            .expect("maintenance update");
    }
    println!("maintenance transaction active: {touched} tuples double-slotted\n");
    for p in pipelines {
        run_workloads(&table, &cfg, p, true, cfg.rows(), &mut results);
    }
    txn.abort().expect("abort maintenance");

    // Human-readable table. `speedup` scales against the same pipeline's
    // 1-thread run; `vs scalar` is the batch win at equal thread count.
    let mut rows = Vec::new();
    for m in &results {
        let base = lookup_ms(&results, m.workload, m.pipeline, m.maintenance_active, 1);
        let scalar = lookup_ms(
            &results,
            m.workload,
            "scalar",
            m.maintenance_active,
            m.threads,
        );
        rows.push(vec![
            m.workload.to_string(),
            m.pipeline.to_string(),
            if m.maintenance_active { "yes" } else { "no" }.to_string(),
            m.threads.to_string(),
            format!("{:.2}", m.median_ms),
            format!("{:.2}x", base / m.median_ms),
            format!("{:.2}x", scalar / m.median_ms),
        ]);
    }
    print_table(
        &[
            "workload",
            "pipeline",
            "maintenance",
            "threads",
            "median ms",
            "speedup",
            "vs scalar",
        ],
        &rows,
    );

    // Machine-readable JSON.
    let doc = Json::obj([
        ("experiment", "E18/E22".into()),
        ("rows", cfg.rows().into()),
        ("quick", cfg.quick.into()),
        ("repeats", cfg.repeats.into()),
        (
            "results",
            Json::Array(
                results
                    .iter()
                    .map(|m| {
                        let base =
                            lookup_ms(&results, m.workload, m.pipeline, m.maintenance_active, 1);
                        let scalar = lookup_ms(
                            &results,
                            m.workload,
                            "scalar",
                            m.maintenance_active,
                            m.threads,
                        );
                        Json::obj([
                            ("workload", m.workload.into()),
                            ("pipeline", m.pipeline.into()),
                            ("maintenance_active", m.maintenance_active.into()),
                            ("threads", m.threads.into()),
                            ("median_ms", Json::Fixed(m.median_ms, 3)),
                            ("speedup_vs_1", Json::Fixed(base / m.median_ms, 3)),
                            ("speedup_vs_scalar", Json::Fixed(scalar / m.median_ms, 3)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    json::write_report("BENCH_scan.json", &doc);

    // The acceptance bars, reported (not asserted, so the binary stays
    // usable on small CI machines): >= 2x batch-over-scalar on the serial
    // full-scan and filter probes, and >= 2x thread scaling at 4 threads
    // on the grouped aggregate — each with and without active maintenance.
    for active in [false, true] {
        let phase = if active {
            "maintenance active"
        } else {
            "quiescent"
        };
        for workload in ["scan", "filter"] {
            let scalar = lookup_ms(&results, workload, "scalar", active, 1);
            let batched = lookup_ms(&results, workload, "batched", active, 1);
            println!(
                "{workload} batched-vs-scalar at 1 thread ({phase}): {:.2}x",
                scalar / batched
            );
        }
        let base = lookup_ms(&results, "aggregate", "batched", active, 1);
        let at4 = lookup_ms(&results, "aggregate", "batched", active, 4);
        println!(
            "aggregate batched speedup at 4 threads ({phase}): {:.2}x",
            base / at4
        );
    }
}
