//! Experiment E18 — parallel partitioned scan scaling.
//!
//! The §6 experiments argue 2VNL adds almost nothing to *reader* cost; this
//! report measures the other half of that bargain: how fast the reader hot
//! path goes when the heap scan is partitioned across threads, with Table 1
//! visibility evaluated on encoded bytes and projection pushdown. Three
//! workloads over a DailySales relation (paper Example 2.1), each at
//! 1/2/4/8 threads, each with and without an active maintenance
//! transaction (which double-slots a share of the tuples, so version
//! extraction really runs):
//!
//! * `scan` — full-relation visitor scan, all columns.
//! * `filter` — `WHERE total_sales >= :cutoff` with a 2-column projection,
//!   streamed through the SQL executor.
//! * `aggregate` — `GROUP BY product_line` SUM, folded into per-worker
//!   partial aggregate maps merged at the end.
//!
//! Writes machine-readable results to `BENCH_scan.json` (override with
//! `WH_BENCH_OUT`). `WH_BENCH_QUICK=1` shrinks the relation and repeat
//! count for CI smoke runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wh_bench::json::{self, Json};
use wh_bench::print_table;
use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Value};
use wh_vnl::VnlTable;

struct Config {
    cities: usize,
    lines: usize,
    days: usize,
    repeats: usize,
    quick: bool,
}

impl Config {
    fn from_env() -> Config {
        let quick = std::env::var("WH_BENCH_QUICK").is_ok();
        if quick {
            // 25 x 8 x 50 = 10k rows: enough pages to partition, fast in CI.
            Config {
                cities: 25,
                lines: 8,
                days: 50,
                repeats: 3,
                quick,
            }
        } else {
            // 125 x 16 x 50 = 100k rows, the ISSUE target size.
            Config {
                cities: 125,
                lines: 16,
                days: 50,
                repeats: 5,
                quick,
            }
        }
    }

    fn rows(&self) -> usize {
        self.cities * self.lines * self.days
    }
}

/// The 50 sale dates: Oct 1–25 and Nov 1–25, 1996 (paper's running window).
fn dates(days: usize) -> Vec<Date> {
    (0..days)
        .map(|d| {
            if d < 25 {
                Date::ymd(1996, 10, (d + 1) as u8)
            } else {
                Date::ymd(1996, 11, (d - 25 + 1) as u8)
            }
        })
        .collect()
}

fn build_table(cfg: &Config) -> VnlTable {
    let t =
        VnlTable::create_named("DailySales", daily_sales_schema(), 2).expect("create DailySales");
    let dates = dates(cfg.days);
    let mut rows = Vec::with_capacity(cfg.rows());
    for c in 0..cfg.cities {
        for l in 0..cfg.lines {
            for d in &dates {
                rows.push(vec![
                    Value::from(format!("City-{c:03}").as_str()),
                    Value::from("CA"),
                    Value::from(format!("line-{l:02}").as_str()),
                    Value::from(*d),
                    Value::from(((c * 7 + l * 13) % 100) as i64 * 100),
                ]);
            }
        }
    }
    t.load_initial(&rows).expect("load DailySales");
    t
}

/// Median wall-clock milliseconds of `repeats` runs of `f`.
fn median_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Measurement {
    workload: &'static str,
    maintenance_active: bool,
    threads: usize,
    median_ms: f64,
}

fn run_workloads(
    table: &VnlTable,
    cfg: &Config,
    maintenance_active: bool,
    expected_rows: usize,
    out: &mut Vec<Measurement>,
) {
    let session = table.begin_session();
    let filter_sql = "SELECT city, total_sales FROM DailySales WHERE total_sales >= 5000";
    let agg_sql = "SELECT product_line, SUM(total_sales) FROM DailySales GROUP BY product_line";

    for &threads in &[1usize, 2, 4, 8] {
        // Full scan: count rows through the visitor API.
        let ms = median_ms(cfg.repeats, || {
            let n = AtomicU64::new(0);
            if threads == 1 {
                session
                    .scan_with(|_| {
                        n.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })
                    .expect("serial scan");
            } else {
                session
                    .scan_parallel(threads, |_, _| {
                        n.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })
                    .expect("parallel scan");
            }
            assert_eq!(n.load(Ordering::Relaxed) as usize, expected_rows);
        });
        out.push(Measurement {
            workload: "scan",
            maintenance_active,
            threads,
            median_ms: ms,
        });

        // Filtered scan through the streaming executor.
        let ms = median_ms(cfg.repeats, || {
            let r = if threads == 1 {
                session.query(filter_sql).expect("filter query")
            } else {
                session
                    .query_parallel(filter_sql, threads)
                    .expect("filter query")
            };
            assert!(!r.rows.is_empty());
        });
        out.push(Measurement {
            workload: "filter",
            maintenance_active,
            threads,
            median_ms: ms,
        });

        // Grouped aggregate with per-worker partial maps.
        let ms = median_ms(cfg.repeats, || {
            let r = if threads == 1 {
                session.query(agg_sql).expect("aggregate query")
            } else {
                session
                    .query_parallel(agg_sql, threads)
                    .expect("aggregate query")
            };
            assert_eq!(r.rows.len(), cfg.lines);
        });
        out.push(Measurement {
            workload: "aggregate",
            maintenance_active,
            threads,
            median_ms: ms,
        });
    }
    session.finish();
}

fn baseline_ms(results: &[Measurement], workload: &str, active: bool) -> f64 {
    results
        .iter()
        .find(|m| m.workload == workload && m.maintenance_active == active && m.threads == 1)
        .map_or(f64::NAN, |m| m.median_ms)
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "E18: parallel partitioned scan scaling ({} rows{})\n",
        cfg.rows(),
        if cfg.quick { ", quick mode" } else { "" }
    );

    let table = build_table(&cfg);
    let mut results: Vec<Measurement> = Vec::new();

    // Phase 1: quiescent relation, every tuple single-slotted.
    run_workloads(&table, &cfg, false, cfg.rows(), &mut results);

    // Phase 2: an active maintenance transaction has updated every tuple of
    // one city per 5 (20% of the relation double-slotted). The session is
    // pinned before the transaction began, so Table 1 routes it to the
    // pre-update slots — version extraction does real work.
    let txn = table.begin_maintenance().expect("begin maintenance");
    let mut touched = 0;
    for c in (0..cfg.cities).step_by(5) {
        touched += txn
            .execute_sql(
                &format!(
                    "UPDATE DailySales SET total_sales = total_sales + 1 \
                     WHERE city = 'City-{c:03}'"
                ),
                &Params::new(),
            )
            .expect("maintenance update");
    }
    println!("maintenance transaction active: {touched} tuples double-slotted\n");
    run_workloads(&table, &cfg, true, cfg.rows(), &mut results);
    txn.abort().expect("abort maintenance");

    // Human-readable table.
    let mut rows = Vec::new();
    for m in &results {
        let base = baseline_ms(&results, m.workload, m.maintenance_active);
        rows.push(vec![
            m.workload.to_string(),
            if m.maintenance_active { "yes" } else { "no" }.to_string(),
            m.threads.to_string(),
            format!("{:.2}", m.median_ms),
            format!("{:.2}x", base / m.median_ms),
        ]);
    }
    print_table(
        &["workload", "maintenance", "threads", "median ms", "speedup"],
        &rows,
    );

    // Machine-readable JSON.
    let doc = Json::obj([
        ("experiment", "E18".into()),
        ("rows", cfg.rows().into()),
        ("quick", cfg.quick.into()),
        ("repeats", cfg.repeats.into()),
        (
            "results",
            Json::Array(
                results
                    .iter()
                    .map(|m| {
                        let base = baseline_ms(&results, m.workload, m.maintenance_active);
                        Json::obj([
                            ("workload", m.workload.into()),
                            ("maintenance_active", m.maintenance_active.into()),
                            ("threads", m.threads.into()),
                            ("median_ms", Json::Fixed(m.median_ms, 3)),
                            ("speedup_vs_1", Json::Fixed(base / m.median_ms, 3)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    json::write_report("BENCH_scan.json", &doc);

    // The ISSUE acceptance bar: >= 2x at 4 threads on the grouped aggregate,
    // with and without active maintenance. Reported, not asserted, so the
    // binary stays usable on small CI machines.
    for active in [false, true] {
        let base = baseline_ms(&results, "aggregate", active);
        let at4 = results
            .iter()
            .find(|m| m.workload == "aggregate" && m.maintenance_active == active && m.threads == 4)
            .map_or(f64::NAN, |m| m.median_ms);
        println!(
            "aggregate speedup at 4 threads ({}): {:.2}x",
            if active {
                "maintenance active"
            } else {
                "quiescent"
            },
            base / at4
        );
    }
}
