//! Experiment E13 — garbage collection of logically-deleted tuples (§7):
//! space reclaimed as a function of the delete fraction and of the oldest
//! active reader.

use wh_bench::print_table;
use wh_types::{Column, DataType, Row, Schema, Value};
use wh_vnl::{gc, VnlTable};

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .unwrap()
}

fn build(n_tuples: i64, delete_pct: i64) -> VnlTable {
    let t = VnlTable::create_named("kv", kv_schema(), 2).unwrap();
    let rows: Vec<Row> = (0..n_tuples)
        .map(|k| vec![Value::from(k), Value::from(0)])
        .collect();
    t.load_initial(&rows).unwrap();
    let txn = t.begin_maintenance().unwrap();
    for k in 0..n_tuples {
        if k % 100 < delete_pct {
            txn.delete_row(&vec![Value::from(k), Value::Null]).unwrap();
        }
    }
    txn.commit().unwrap();
    t
}

fn main() {
    println!("E13: garbage collection of logically-deleted tuples (10,000 tuples)\n");
    println!("-- no active readers: everything logically deleted is reclaimable --");
    let mut rows = Vec::new();
    for delete_pct in [1i64, 10, 25, 50] {
        let t = build(10_000, delete_pct);
        let before = t.storage().len();
        let report = gc::collect(&t).unwrap();
        rows.push(vec![
            format!("{delete_pct}%"),
            before.to_string(),
            report.deleted_found.to_string(),
            report.reclaimed.to_string(),
            report.bytes_reclaimed.to_string(),
            t.storage().len().to_string(),
        ]);
    }
    print_table(
        &[
            "deleted",
            "tuples before",
            "found",
            "reclaimed",
            "bytes freed",
            "tuples after",
        ],
        &rows,
    );

    println!("\n-- an old reader pins the pre-delete versions (§7's condition) --");
    let mut rows = Vec::new();
    for delete_pct in [10i64, 50] {
        // The deletes happen while a session is pinned at the earlier
        // version: GC must reclaim nothing until it ends.
        let t = VnlTable::create_named("kv", kv_schema(), 2).unwrap();
        let rows_init: Vec<Row> = (0..10_000i64)
            .map(|k| vec![Value::from(k), Value::from(0)])
            .collect();
        t.load_initial(&rows_init).unwrap();
        let pinned = t.begin_session(); // VN 1
        let txn = t.begin_maintenance().unwrap();
        for k in 0..10_000i64 {
            if k % 100 < delete_pct {
                txn.delete_row(&vec![Value::from(k), Value::Null]).unwrap();
            }
        }
        txn.commit().unwrap();
        let blocked = gc::collect(&t).unwrap();
        pinned.finish();
        let freed = gc::collect(&t).unwrap();
        rows.push(vec![
            format!("{delete_pct}%"),
            blocked.reclaimed.to_string(),
            freed.reclaimed.to_string(),
        ]);
    }
    print_table(
        &[
            "deleted",
            "reclaimed while reader pinned",
            "reclaimed after reader ends",
        ],
        &rows,
    );
    println!(
        "\n(§7: a deleted tuple is removable once no active reader can see its\n\
         pre-delete version; the pass is safe to run at any time, including during\n\
         an active maintenance transaction)"
    );
}
