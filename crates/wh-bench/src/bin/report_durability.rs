//! Experiment E23 — the cost of durability: fuzzy checkpoints, buffer-pool
//! hit rates under capacity pressure, restart-recovery time, and the gate
//! that matters for every other experiment — a fully-resident durable
//! table must scan at in-memory speed.
//!
//! The paper's §7 recovery argument makes the durable tier log-free:
//! checkpoint cost is *only* dirty-page writes (no log force on the commit
//! path at all), and recovery cost is one slot-reconstruction scan. Both
//! are measured here as a function of table size; the pool sweep shows the
//! hit rate degrading gracefully as capacity drops below the working set.
//!
//! Writes `BENCH_durability.json` (override with `WH_BENCH_OUT`). Exits
//! non-zero when the resident-scan gate fails: the within-run ratio
//! `durable_resident_scan / in_memory_scan` must stay under the bound —
//! machine speed cancels, so a breach means the buffer-pool indirection
//! itself got slower.

use std::path::PathBuf;
use std::time::Instant;
use wh_bench::json::{self, Json};
use wh_bench::print_table;
use wh_types::{Column, DataType, Row, Schema, Value};
use wh_vnl::{checkpoint, create_durable, recover_from_disk, VnlTable};

/// The resident durable scan may cost at most this multiple of the pure
/// in-memory scan (generous: the pin path is an Arc clone + latch).
const MAX_RESIDENT_SCAN_RATIO: f64 = 1.5;

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wh-bench-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_rows(n_tuples: i64) -> Vec<Row> {
    (0..n_tuples)
        .map(|k| vec![Value::from(k), Value::from(k)])
        .collect()
}

/// Median of `runs` timed executions of `f`, in milliseconds.
fn median_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn count_rows(table: &VnlTable) -> u64 {
    let s = table.begin_session();
    let n = s.count().unwrap();
    s.finish();
    n
}

fn main() {
    let quick = std::env::var_os("WH_BENCH_QUICK").is_some();
    let sizes: &[i64] = if quick {
        &[1_000, 5_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    let runs = if quick { 3 } else { 5 };
    println!("E23: durability — checkpoint, pool, and restart-recovery cost\n");

    // --- checkpoint cost vs table size (and dirty fraction) ---------------
    println!("-- fuzzy checkpoint: cost tracks dirty pages, not table size --");
    let mut ckpt_rows = Vec::new();
    let mut ckpt_json = Vec::new();
    for &size in sizes {
        let dir = temp_dir(&format!("ckpt-{size}"));
        let table = create_durable("kv", kv_schema(), 2, &dir, usize::MAX).unwrap();
        table.load_initial(&initial_rows(size)).unwrap();
        // First checkpoint: every page dirty.
        let t0 = Instant::now();
        let full = checkpoint(&table).unwrap();
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Touch 1% of tuples, checkpoint again: cost is the dirty subset.
        let txn = table.begin_maintenance().unwrap();
        for k in (0..size).step_by(100) {
            txn.update_row(&vec![Value::from(k), Value::from(k + 1)])
                .unwrap();
        }
        txn.commit().unwrap();
        let t0 = Instant::now();
        let incr = checkpoint(&table).unwrap();
        let incr_ms = t0.elapsed().as_secs_f64() * 1e3;
        ckpt_rows.push(vec![
            size.to_string(),
            full.pages_flushed.to_string(),
            format!("{full_ms:.2}"),
            incr.pages_flushed.to_string(),
            format!("{incr_ms:.2}"),
        ]);
        ckpt_json.push(Json::obj([
            ("tuples", (size as usize).into()),
            ("full_pages_flushed", (full.pages_flushed as usize).into()),
            ("full_ms", Json::Fixed(full_ms, 3)),
            ("incr_pages_flushed", (incr.pages_flushed as usize).into()),
            ("incr_ms", Json::Fixed(incr_ms, 3)),
        ]));
        drop(table);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &["tuples", "full pages", "full ms", "1% dirty pages", "1% ms"],
        &ckpt_rows,
    );

    // --- pool hit rate vs capacity ----------------------------------------
    println!("\n-- buffer pool: hit rate vs capacity (10,000-tuple scan workload) --");
    let scan_size: i64 = if quick { 2_000 } else { 10_000 };
    let mut pool_rows = Vec::new();
    let mut pool_json = Vec::new();
    for capacity_pct in [100usize, 50, 25, 10] {
        let dir = temp_dir(&format!("pool-{capacity_pct}"));
        let table = create_durable("kv", kv_schema(), 2, &dir, usize::MAX).unwrap();
        table.load_initial(&initial_rows(scan_size)).unwrap();
        let pages = table.storage().heap().page_count() as usize;
        checkpoint(&table).unwrap();
        drop(table);
        let capacity = (pages * capacity_pct / 100).max(1);
        let (table, _) = recover_from_disk("kv", kv_schema(), 2, &dir, capacity).unwrap();
        let before = wh_obs::registry::global().snapshot();
        let scan_ms = median_ms(runs, || {
            assert_eq!(count_rows(&table), scan_size as u64);
        });
        let delta = wh_obs::registry::global().snapshot().since(&before);
        let hits = delta.counter("storage.pool.hits");
        let misses = delta.counter("storage.pool.misses");
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        pool_rows.push(vec![
            format!("{capacity_pct}% ({capacity} pages)"),
            format!("{hit_rate:.3}"),
            delta.counter("storage.pool.evictions").to_string(),
            format!("{scan_ms:.2}"),
        ]);
        pool_json.push(Json::obj([
            ("capacity_pct", capacity_pct.into()),
            ("capacity_pages", capacity.into()),
            ("hit_rate", Json::Fixed(hit_rate, 4)),
            (
                "evictions",
                (delta.counter("storage.pool.evictions") as usize).into(),
            ),
            ("scan_ms", Json::Fixed(scan_ms, 3)),
        ]));
        drop(table);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &["capacity", "hit rate", "evictions", "scan ms"],
        &pool_rows,
    );

    // --- restart recovery time vs table size -------------------------------
    println!("\n-- restart recovery: one §7 scan, no log replay --");
    let mut rec_rows = Vec::new();
    let mut rec_json = Vec::new();
    for &size in sizes {
        let dir = temp_dir(&format!("rec-{size}"));
        // Crash mid-maintenance so recovery has real rollback work.
        let table = create_durable("kv", kv_schema(), 2, &dir, usize::MAX).unwrap();
        table.load_initial(&initial_rows(size)).unwrap();
        checkpoint(&table).unwrap();
        let txn = table.begin_maintenance().unwrap();
        for k in (0..size).step_by(10) {
            txn.update_row(&vec![Value::from(k), Value::from(-k)])
                .unwrap();
        }
        table.storage().heap().flush_all().unwrap();
        std::mem::forget(txn);
        drop(table);

        let t0 = Instant::now();
        let (table, report) = recover_from_disk("kv", kv_schema(), 2, &dir, usize::MAX).unwrap();
        let rec_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.recovery.log_writes, 0);
        assert_eq!(count_rows(&table), size as u64);
        rec_rows.push(vec![
            size.to_string(),
            report.recovery.pending_found.to_string(),
            format!("{rec_ms:.2}"),
        ]);
        rec_json.push(Json::obj([
            ("tuples", (size as usize).into()),
            (
                "pending_rolled_back",
                (report.recovery.pending_found as usize).into(),
            ),
            ("recovery_ms", Json::Fixed(rec_ms, 3)),
        ]));
        drop(table);
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(&["tuples", "rolled back", "recovery ms"], &rec_rows);

    // --- the resident-scan gate --------------------------------------------
    // A durable table whose working set fits the pool must scan at
    // in-memory speed: the within-run ratio is machine-independent, so it
    // gates CI without a committed baseline.
    println!("\n-- gate: fully-resident durable scan vs pure in-memory scan --");
    let mem_table = VnlTable::create_named("kv", kv_schema(), 2).unwrap();
    mem_table.load_initial(&initial_rows(scan_size)).unwrap();
    let mem_ms = median_ms(runs * 3, || {
        assert_eq!(count_rows(&mem_table), scan_size as u64);
    });
    let dir = temp_dir("gate");
    let dur_table = create_durable("kv", kv_schema(), 2, &dir, usize::MAX).unwrap();
    dur_table.load_initial(&initial_rows(scan_size)).unwrap();
    checkpoint(&dur_table).unwrap();
    let dur_ms = median_ms(runs * 3, || {
        assert_eq!(count_rows(&dur_table), scan_size as u64);
    });
    drop(dur_table);
    let _ = std::fs::remove_dir_all(&dir);
    let ratio = dur_ms / mem_ms;
    println!(
        "in-memory {mem_ms:.3} ms   durable(resident) {dur_ms:.3} ms   ratio {ratio:.3}   bound {MAX_RESIDENT_SCAN_RATIO}"
    );

    let doc = Json::obj([
        ("experiment", "E23".into()),
        ("quick", quick.into()),
        ("checkpoint", Json::Array(ckpt_json)),
        ("pool", Json::Array(pool_json)),
        ("recovery", Json::Array(rec_json)),
        (
            "resident_scan_gate",
            Json::obj([
                ("in_memory_ms", Json::Fixed(mem_ms, 3)),
                ("durable_resident_ms", Json::Fixed(dur_ms, 3)),
                ("ratio", Json::Fixed(ratio, 4)),
                ("bound", Json::Fixed(MAX_RESIDENT_SCAN_RATIO, 2)),
            ]),
        ),
    ]);
    json::write_report("BENCH_durability.json", &doc);

    if ratio > MAX_RESIDENT_SCAN_RATIO {
        eprintln!(
            "FAIL: resident durable scan is {ratio:.2}x the in-memory scan \
             (bound {MAX_RESIDENT_SCAN_RATIO}) — the pool indirection regressed"
        );
        std::process::exit(1);
    }
    println!("gate passed");
}
