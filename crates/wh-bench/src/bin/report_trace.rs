//! Experiment E24 — causal tracing, the flight recorder, and the
//! introspection server under load.
//!
//! Extends the E20 methodology to the `wh-obs::trace` layer: the same
//! reader/maintenance workload now runs with every span and causal event
//! live, and the report shows what the tracing surface sees — per-trace
//! event counts, the flight recorder dumping on a provoked recovery, and
//! the introspection server answering `/metrics`, `/snapshot`, `/health`,
//! and `/traces/<id>` over plain HTTP/1.0.
//!
//! Also measures the numbers the CI tracing-overhead gate rides on: five
//! E18/E22-shaped hot-loop probes over the paths that gained spans (serial
//! scan, parallel scan with cross-thread span propagation, point lookups,
//! the SQL executor, a maintenance round). Build once with default
//! features and once with `--no-default-features` (tracing compiled out),
//! run both, and compare the geometric mean of the probe ratios:
//!
//! ```text
//! report_trace                              # writes BENCH_trace.json
//! report_trace --check-overhead base.json   # exits 1 if >5% slower
//! ```
//!
//! As in E20, each process invocation is itself a sample (code-layout
//! aliasing moves a hot loop several percent between builds), so the gate
//! runs each build a few times and takes the per-probe minimum:
//! `--probes-only` skips the workload phases, `--merge-probes` folds the
//! existing output file's probe numbers in (per-probe min) before writing.
//!
//! `WH_BENCH_QUICK=1` shrinks the relation and repeat counts for CI;
//! `WH_BENCH_OUT` overrides the output path; `WH_TRACE_OVERHEAD_PCT`
//! overrides the 5% gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wh_bench::json::{self, Json};
use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Value};
use wh_vnl::VnlTable;

struct Config {
    cities: usize,
    lines: usize,
    days: usize,
    scan_repeats: usize,
    maintenance_rounds: usize,
    reader_threads: usize,
    quick: bool,
}

impl Config {
    fn from_env() -> Config {
        let quick = std::env::var("WH_BENCH_QUICK").is_ok();
        if quick {
            Config {
                cities: 25,
                lines: 8,
                days: 50,
                scan_repeats: 15,
                maintenance_rounds: 4,
                reader_threads: 2,
                quick,
            }
        } else {
            Config {
                cities: 125,
                lines: 16,
                days: 50,
                scan_repeats: 15,
                maintenance_rounds: 8,
                reader_threads: 4,
                quick,
            }
        }
    }

    fn rows(&self) -> usize {
        self.cities * self.lines * self.days
    }
}

fn dates(days: usize) -> Vec<Date> {
    (0..days)
        .map(|d| {
            if d < 25 {
                Date::ymd(1996, 10, (d + 1) as u8)
            } else {
                Date::ymd(1996, 11, (d - 25 + 1) as u8)
            }
        })
        .collect()
}

fn build_table(cfg: &Config) -> VnlTable {
    let t =
        VnlTable::create_named("DailySales", daily_sales_schema(), 2).expect("create DailySales");
    let dates = dates(cfg.days);
    let mut rows = Vec::with_capacity(cfg.rows());
    for c in 0..cfg.cities {
        for l in 0..cfg.lines {
            for d in &dates {
                rows.push(vec![
                    Value::from(format!("City-{c:03}").as_str()),
                    Value::from("CA"),
                    Value::from(format!("line-{l:02}").as_str()),
                    Value::from(*d),
                    Value::from(((c * 7 + l * 13) % 100) as i64 * 100),
                ]);
            }
        }
    }
    t.load_initial(&rows).expect("load DailySales");
    t
}

/// Best (minimum) wall-clock milliseconds of `repeats` runs of `f`, after
/// two discarded warmup runs — the same noise-robust estimator E20 uses.
fn best_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// The tracing-overhead probes: five hot loops over the paths that gained
/// spans or causal events in the trace layer. The gate compares the
/// geometric mean of the per-probe ratios against a tracing-disabled
/// build, exactly as E20's gate does for metrics (see `report_obs` for why
/// single-loop comparisons measure code layout, not instrumentation).
fn overhead_probes(table: &VnlTable, cfg: &Config) -> Vec<(&'static str, f64)> {
    let rows = cfg.rows();
    let session = table.begin_session();

    // E18 serial hot path: streaming scan (now under a vnl.read.scan span
    // feeding the read-latency SLO window).
    let scan = best_ms(cfg.scan_repeats, || {
        let n = AtomicU64::new(0);
        session
            .scan_with(|_| {
                n.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .expect("serial scan");
        assert_eq!(n.load(Ordering::Relaxed) as usize, rows);
    });

    // E22 parallel path: partitioned scan, with the coordinator's span
    // propagated into every worker (storage.scan.partition spans).
    let scan_parallel = best_ms(cfg.scan_repeats, || {
        let n = AtomicU64::new(0);
        session
            .scan_parallel(4, |_, _| {
                n.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .expect("parallel scan");
        assert_eq!(n.load(Ordering::Relaxed) as usize, rows);
    });

    // Point reads: deliberately span-free — this probe verifies the hot
    // path stayed untouched.
    let first_day = dates(cfg.days)[0];
    let keys: Vec<Vec<Value>> = (0..cfg.cities)
        .map(|c| {
            vec![
                Value::from(format!("City-{c:03}").as_str()),
                Value::from("CA"),
                Value::from("line-00"),
                Value::from(first_day),
                Value::from(0i64),
            ]
        })
        .collect();
    let lookup = best_ms(cfg.scan_repeats, || {
        for key in &keys {
            assert!(
                session.read_by_key(key).expect("read_by_key").is_some(),
                "probe key must resolve"
            );
        }
    });

    // The executor path: sql.parse + sql.exec.* stage spans per query.
    let sql = best_ms(cfg.scan_repeats, || {
        let res = session
            .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city")
            .expect("aggregate query");
        assert_eq!(res.rows.len(), cfg.cities);
    });
    session.finish();

    // The maintenance path: txn root span + per-phase spans + version-flip
    // events per round.
    let update = best_ms(cfg.scan_repeats, || {
        let txn = table.begin_maintenance().expect("probe begin");
        txn.execute_sql(
            "UPDATE DailySales SET total_sales = total_sales + 1 \
             WHERE city = 'City-000' AND product_line = 'line-00'",
            &Params::new(),
        )
        .expect("probe update");
        txn.commit().expect("probe commit");
    });

    vec![
        ("probe_scan_ms", scan),
        ("probe_scan_parallel_ms", scan_parallel),
        ("probe_lookup_ms", lookup),
        ("probe_sql_agg_ms", sql),
        ("probe_update_txn_ms", update),
    ]
}

/// Concurrent tracing exercise: parallel scans race maintenance commits so
/// the rings fill with interleaved multi-thread traces. Returns
/// (reads_ok, commits).
fn tracing_phase(table: &std::sync::Arc<VnlTable>, cfg: &Config) -> (u64, u64) {
    let reads_ok = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            for round in 0..cfg.maintenance_rounds {
                let txn = table.begin_maintenance().expect("begin maintenance");
                for c in (round % 5..cfg.cities).step_by(5) {
                    txn.execute_sql(
                        &format!(
                            "UPDATE DailySales SET total_sales = total_sales + 1 \
                             WHERE city = 'City-{c:03}'"
                        ),
                        &Params::new(),
                    )
                    .expect("maintenance update");
                }
                txn.commit().expect("commit");
                commits.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.store(true, Ordering::SeqCst);
        });
        for seed in 0..cfg.reader_threads as u64 {
            let (reads_ok, done) = (&reads_ok, &done);
            s.spawn(move || {
                let retry = wh_vnl::RetryPolicy::default()
                    .with_max_attempts(64)
                    .with_seed(seed);
                while !done.load(Ordering::SeqCst) {
                    let (res, _) = retry.run_with_stats(table, |session| {
                        session.scan_parallel(4, |_, _| Ok(()))?;
                        Ok(())
                    });
                    match res {
                        Ok(()) => {
                            reads_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("reader error: {e}"),
                    }
                }
            });
        }
    });
    (
        reads_ok.load(Ordering::Relaxed),
        commits.load(Ordering::Relaxed),
    )
}

/// One blocking HTTP/1.0 GET against the introspection server; returns
/// (status_line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect introspection server");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Scrape every endpoint once; returns (all_ok, request_count_served).
fn server_phase(trace_id: u64) -> bool {
    let server = match wh_obs::IntrospectionServer::start("127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("introspection server failed to start: {e}");
            return false;
        }
    };
    let addr = server.addr();
    let (metrics_status, metrics_body) = http_get(addr, "/metrics");
    let (health_status, health_body) = http_get(addr, "/health");
    let (snapshot_status, _) = http_get(addr, "/snapshot");
    let (trace_status, trace_body) = http_get(addr, &format!("/traces/{trace_id}"));
    println!("introspection server on {addr}:");
    println!(
        "  /metrics      {metrics_status} ({} bytes)",
        metrics_body.len()
    );
    println!(
        "  /health       {health_status} ({})",
        health_body.trim().len()
    );
    println!("  /snapshot     {snapshot_status}");
    println!(
        "  /traces/{trace_id}  {trace_status} ({} bytes)",
        trace_body.len()
    );
    let ok = [&metrics_status, &health_status, &snapshot_status]
        .iter()
        .all(|s| s.contains("200"))
        && (trace_status.contains("200") || !wh_obs::is_enabled());
    server.stop();
    ok
}

/// Provoke the flight recorder: arm it at a temp dir, crash a maintenance
/// transaction (`mem::forget` — its root span never closes), and recover.
/// The `recovery_entry` trigger must produce a dump whose events include
/// the crashed txn's still-open span. Returns (dumped, dump_events).
fn flight_phase() -> (bool, u64) {
    let dir = std::env::temp_dir().join(format!("wh-e24-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create flight dir");
    wh_obs::recorder::arm(&dir);

    let table = build_table(&Config {
        cities: 5,
        lines: 4,
        days: 10,
        scan_repeats: 1,
        maintenance_rounds: 1,
        reader_threads: 1,
        quick: true,
    });
    let txn = table.begin_maintenance().expect("begin");
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = 0 WHERE product_line = 'line-00'",
        &Params::new(),
    )
    .expect("update");
    std::mem::forget(txn); // crash: the txn span stays open
    let report = wh_vnl::recovery::recover(&table).expect("recover");
    println!(
        "provoked recovery: {} pending tuples rolled back, {} flight dumps on disk",
        report.pending_found,
        wh_obs::recorder::dumps_written()
    );
    wh_obs::recorder::disarm();

    let mut dump_events = 0u64;
    let mut dumped = false;
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let content = std::fs::read_to_string(entry.path()).unwrap_or_default();
            if content.starts_with("{\"schema\":\"wh-flight-1\"") {
                dumped = true;
                dump_events = dump_events.max(content.lines().count().saturating_sub(2) as u64);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    (dumped, dump_events)
}

/// `"name": value` pulled out of a rendered JSON document by string search
/// (the repo has no JSON parser dependency; see `report_obs`).
fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args
        .iter()
        .position(|a| a == "--check-overhead")
        .map(|i| args.get(i + 1).cloned().expect("--check-overhead PATH"));
    let probes_only = args.iter().any(|a| a == "--probes-only");
    let merge_probes = args.iter().any(|a| a == "--merge-probes");

    let cfg = Config::from_env();
    println!(
        "E24: causal tracing under the E18 workload ({} rows{}; tracing {})\n",
        cfg.rows(),
        if cfg.quick { ", quick mode" } else { "" },
        if wh_obs::is_enabled() {
            "enabled"
        } else {
            "disabled"
        }
    );

    let table = std::sync::Arc::new(build_table(&cfg));

    // Phase 1: the overhead-gate probes on the quiescent relation.
    let mut probes = overhead_probes(&table, &cfg);
    if merge_probes {
        if let Ok(prev) = std::fs::read_to_string(json::out_path("BENCH_trace.json")) {
            for (name, ms) in &mut probes {
                if let Some(old) = extract_number(&prev, name) {
                    *ms = ms.min(old);
                }
            }
        }
    }
    println!(
        "overhead probes (best of {} runs{}):",
        cfg.scan_repeats,
        if merge_probes {
            ", merged with prior invocations"
        } else {
            ""
        }
    );
    for (name, ms) in &probes {
        println!("  {name:24} {ms:8.3} ms");
    }

    if probes_only {
        let doc = Json::obj([
            ("experiment", "E24".into()),
            ("rows", cfg.rows().into()),
            ("quick", cfg.quick.into()),
            ("trace_enabled", wh_obs::is_enabled().into()),
            (
                "overhead_probes",
                Json::Object(
                    probes
                        .iter()
                        .map(|(name, ms)| ((*name).to_string(), Json::Fixed(*ms, 3)))
                        .collect(),
                ),
            ),
        ]);
        json::write_report("BENCH_trace.json", &doc);
        check_overhead(baseline.as_deref(), &probes);
        return;
    }

    // Phase 2: concurrent tracing exercise filling the per-thread rings.
    let (reads_ok, commits) = tracing_phase(&table, &cfg);
    let recent = wh_obs::trace::recent_traces();
    println!(
        "tracing phase: {reads_ok} parallel scans ok, {commits} commits; \
         {} events recorded across {} recent traces (ring wrapped: {})",
        wh_obs::trace::events_recorded(),
        recent.len(),
        wh_obs::trace::any_ring_wrapped()
    );
    let sample_trace = recent.iter().max_by_key(|(_, _, n)| *n);
    if let Some((id, name, n)) = sample_trace {
        println!("  largest recent trace: id={id} root={name} events={n}");
    }

    // Phase 3: scrape the introspection server.
    let server_ok = server_phase(sample_trace.map_or(0, |&(id, _, _)| id));

    // Phase 4: provoke a flight-recorder dump through a crashed txn.
    let (flight_dumped, flight_events) = flight_phase();

    if wh_obs::is_enabled() {
        assert!(server_ok, "introspection endpoints must answer 200");
        assert!(flight_dumped, "recovery must produce a flight dump");
    }

    let doc = Json::obj([
        ("experiment", "E24".into()),
        ("rows", cfg.rows().into()),
        ("quick", cfg.quick.into()),
        ("trace_enabled", wh_obs::is_enabled().into()),
        (
            "overhead_probes",
            Json::Object(
                probes
                    .iter()
                    .map(|(name, ms)| ((*name).to_string(), Json::Fixed(*ms, 3)))
                    .collect(),
            ),
        ),
        ("reads_ok", reads_ok.into()),
        ("maintenance_commits", commits.into()),
        ("trace_events", wh_obs::trace::events_recorded().into()),
        ("recent_traces", (recent.len() as u64).into()),
        ("ring_wrapped", wh_obs::trace::any_ring_wrapped().into()),
        ("server_ok", server_ok.into()),
        ("flight_dumped", flight_dumped.into()),
        ("flight_dump_events", flight_events.into()),
    ]);
    json::write_report("BENCH_trace.json", &doc);

    check_overhead(baseline.as_deref(), &probes);
}

/// Compare this run's probe numbers against a tracing-disabled baseline
/// JSON and exit nonzero if the geometric-mean overhead exceeds the gate
/// (`WH_TRACE_OVERHEAD_PCT`, default 5%). No-op without a baseline path.
fn check_overhead(baseline: Option<&str>, probes: &[(&'static str, f64)]) {
    let Some(path) = baseline else { return };
    let base_doc =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    let gate_pct: f64 = std::env::var("WH_TRACE_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    println!("\noverhead check (geomean across probes, gate {gate_pct:.1}%):");
    let mut log_ratio_sum = 0.0;
    for (name, ms) in probes {
        let base = extract_number(&base_doc, name)
            .unwrap_or_else(|| panic!("baseline {path} missing {name}"));
        let ratio = ms / base;
        log_ratio_sum += ratio.ln();
        println!(
            "  {name:24} {ms:8.3} ms vs {base:8.3} ms ({:+.2}%)",
            (ratio - 1.0) * 100.0
        );
    }
    let geomean = (log_ratio_sum / probes.len() as f64).exp();
    let overhead_pct = (geomean - 1.0) * 100.0;
    println!("  geomean overhead {overhead_pct:+.2}%");
    if overhead_pct > gate_pct {
        eprintln!("FAIL: enabled-tracing overhead exceeds the {gate_pct:.1}% gate");
        std::process::exit(1);
    }
    println!("overhead within gate");
}
