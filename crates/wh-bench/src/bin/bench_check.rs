//! CI bench-smoke regression gate for the scan pipelines.
//!
//! Usage: `bench_check <fresh.json> [baseline.json] [max-regress-pct]`
//! (defaults: `BENCH_scan.json`, `20`).
//!
//! Raw medians are not comparable across machines — the committed
//! baseline was produced on a dev box, the fresh run on whatever CI got
//! scheduled. What *is* comparable is the within-run ratio
//! `batched_ms / scalar_ms` for each probe: both pipelines ran in the
//! same process on the same relation, so machine speed cancels. The gate
//! recomputes that ratio for every `(workload, maintenance, threads)`
//! probe in both documents and fails when the fresh ratio is more than
//! `max-regress-pct` percent worse than the baseline's — i.e. when the
//! batched pipeline lost ground against its own scalar oracle.
//!
//! Exits non-zero on any regression, missing probe, or unparseable input.

use wh_bench::json::{self, Json};
use wh_bench::print_table;

/// One probe's batched/scalar median ratio (lower is better).
struct Probe {
    workload: String,
    maintenance: bool,
    threads: u64,
    ratio: f64,
}

fn load_probes(path: &str) -> Result<Vec<Probe>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: no results array"))?;

    let field = |r: &Json, key: &str| -> Result<f64, String> {
        r.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: result missing numeric '{key}'"))
    };
    let median = |pipeline: &str, workload: &str, maintenance: bool, threads: u64| {
        results
            .iter()
            .find(|r| {
                r.get("pipeline").and_then(Json::as_str) == Some(pipeline)
                    && r.get("workload").and_then(Json::as_str) == Some(workload)
                    && r.get("maintenance_active").and_then(Json::as_bool) == Some(maintenance)
                    && r.get("threads").and_then(Json::as_f64) == Some(threads as f64)
            })
            .ok_or_else(|| {
                format!(
                    "{path}: no {pipeline} probe for \
                     ({workload}, maintenance={maintenance}, threads={threads})"
                )
            })
            .and_then(|r| field(r, "median_ms"))
    };

    let mut probes = Vec::new();
    for r in results {
        if r.get("pipeline").and_then(Json::as_str) != Some("batched") {
            continue;
        }
        let workload = r
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: result missing 'workload'"))?
            .to_string();
        let maintenance = r
            .get("maintenance_active")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{path}: result missing 'maintenance_active'"))?;
        let threads = field(r, "threads")? as u64;
        let batched = field(r, "median_ms")?;
        let scalar = median("scalar", &workload, maintenance, threads)?;
        if scalar <= 0.0 || batched <= 0.0 {
            return Err(format!("{path}: non-positive median for {workload}"));
        }
        probes.push(Probe {
            workload,
            maintenance,
            threads,
            ratio: batched / scalar,
        });
    }
    if probes.is_empty() {
        return Err(format!("{path}: no batched-pipeline probes"));
    }
    Ok(probes)
}

fn run(fresh_path: &str, baseline_path: &str, max_regress_pct: f64) -> Result<usize, String> {
    let fresh = load_probes(fresh_path)?;
    let baseline = load_probes(baseline_path)?;

    let mut rows = Vec::new();
    let mut failures = 0usize;
    for f in &fresh {
        let Some(b) = baseline.iter().find(|b| {
            b.workload == f.workload && b.maintenance == f.maintenance && b.threads == f.threads
        }) else {
            // A probe the baseline predates is informational, not gated.
            continue;
        };
        let regress_pct = (f.ratio / b.ratio - 1.0) * 100.0;
        let failed = regress_pct > max_regress_pct;
        failures += usize::from(failed);
        rows.push(vec![
            f.workload.clone(),
            if f.maintenance { "yes" } else { "no" }.to_string(),
            f.threads.to_string(),
            format!("{:.3}", b.ratio),
            format!("{:.3}", f.ratio),
            format!("{regress_pct:+.1}%"),
            if failed { "FAIL" } else { "ok" }.to_string(),
        ]);
    }
    if rows.is_empty() {
        return Err("no probes shared between fresh run and baseline".to_string());
    }
    println!(
        "bench_check: batched/scalar ratio, fresh ({fresh_path}) vs baseline \
         ({baseline_path}), gate at +{max_regress_pct:.0}%\n"
    );
    print_table(
        &[
            "workload",
            "maintenance",
            "threads",
            "base ratio",
            "fresh ratio",
            "regression",
            "verdict",
        ],
        &rows,
    );
    Ok(failures)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fresh = args.first().map_or("BENCH_scan.json", String::as_str);
    let baseline = args.get(1).map_or("BENCH_scan.json", String::as_str);
    let max_regress_pct: f64 = args
        .get(2)
        .map_or(Ok(20.0), |s| s.parse())
        .expect("max-regress-pct must be a number");

    match run(fresh, baseline, max_regress_pct) {
        Ok(0) => println!("\nbench_check: no regressions"),
        Ok(n) => {
            println!("\nbench_check: {n} probe(s) regressed more than {max_regress_pct:.0}%");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            std::process::exit(1);
        }
    }
}
