//! Experiment E21 — graceful degradation under reader/maintenance
//! contention: the fixed-window 2VNL baseline vs the resilience stack
//! (adaptive effective-`n` + paced commits + leased, retried readers),
//! driven through the `wh_workload::soak` chaos harness.
//!
//! Both arms run the *same* seeds, table size, commit cadence, and reader
//! pressure; only the degradation machinery differs:
//!
//! * **fixed-2vnl** — `n = 2` physical, no pacer, no adaptive controller:
//!   the paper's baseline behavior, expirations land on readers at full
//!   force and are absorbed by retry alone.
//! * **adaptive-paced** — 4 physical slots with the effective window
//!   starting at 2, the [`wh_vnl::AdaptiveN`] controller widening it under
//!   observed expirations, and a `BoundedDelay` [`wh_vnl::MaintenancePacer`]
//!   yielding briefly to at-risk leases before each commit.
//!
//! The report's verdict is the E21 acceptance criterion: the resilient arm
//! must show a strictly lower mean expiration rate, with both arms
//! returning zero incorrect results. Built with `--features failpoints`
//! (as in the CI soak job), faults also fire through both arms.
//!
//! `WH_BENCH_QUICK=1` shrinks seeds and volumes for CI.

use std::time::Duration;
use wh_bench::json::{self, Json};
use wh_bench::print_table;
use wh_vnl::{PacerPolicy, RetryPolicy};
use wh_workload::{run_soak, SoakConfig, SoakReport};

struct Config {
    seeds: Vec<u64>,
    keys: i64,
    commits: u32,
    readers: usize,
    reads_per_reader: u32,
    fault_every: Option<u32>,
    abort_every: Option<u32>,
}

impl Config {
    fn from_env() -> Config {
        let quick = std::env::var("WH_BENCH_QUICK").is_ok();
        // Faults only fire when the failpoints feature is compiled in; the
        // config arms them unconditionally so one binary serves both the
        // plain bench run and the CI chaos job.
        Config {
            seeds: if quick {
                vec![11, 42, 1997]
            } else {
                vec![11, 42, 1997, 7, 23]
            },
            keys: if quick { 16 } else { 48 },
            commits: if quick { 30 } else { 60 },
            readers: 3,
            reads_per_reader: if quick { 10 } else { 20 },
            fault_every: Some(7),
            abort_every: Some(5),
        }
    }

    fn arm(&self, seed: u64, resilient: bool) -> SoakConfig {
        SoakConfig {
            seed,
            keys: self.keys,
            n_physical: if resilient { 4 } else { 2 },
            initial_n: 2,
            adaptive: resilient,
            pacer: resilient.then_some(PacerPolicy::BoundedDelay(Duration::from_millis(2))),
            readers: self.readers,
            reads_per_reader: self.reads_per_reader,
            reader_hold: Duration::from_millis(1),
            commits: self.commits,
            maintenance_gap: Duration::from_micros(500),
            retry: RetryPolicy::default()
                .with_max_attempts(32)
                .with_backoff(Duration::from_micros(50), Duration::from_millis(2))
                .with_lease_hint(Duration::from_millis(3)),
            repair: false,
            gc_interval: Some(Duration::from_micros(500)),
            fault_every: self.fault_every,
            abort_every: self.abort_every,
        }
    }
}

fn mean_rate(reports: &[SoakReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(SoakReport::expiration_rate).sum::<f64>() / reports.len() as f64
}

fn arm_json(reports: &[(u64, SoakReport)]) -> Json {
    Json::Array(
        reports
            .iter()
            .map(|(seed, r)| {
                Json::obj([
                    ("seed", Json::UInt(*seed)),
                    ("commits", Json::UInt(r.commits)),
                    ("aborts", Json::UInt(r.aborts)),
                    ("injected_faults", Json::UInt(r.injected_faults)),
                    ("recoveries", Json::UInt(r.recoveries)),
                    ("reads_ok", Json::UInt(r.reads_ok)),
                    ("wrong_answers", Json::UInt(r.wrong_answers)),
                    ("unexpected_errors", Json::UInt(r.unexpected_errors)),
                    ("retry_exhausted", Json::UInt(r.retry_exhausted)),
                    ("attempts", Json::UInt(r.attempts)),
                    ("expirations", Json::UInt(r.expirations)),
                    ("expiration_rate", Json::Fixed(r.expiration_rate(), 4)),
                    ("paced_commits", Json::UInt(r.paced_commits)),
                    ("expired_through", Json::UInt(r.expired_through)),
                    ("adaptive_transitions", Json::UInt(r.adaptive_transitions)),
                    ("final_effective_n", Json::UInt(r.final_effective_n as u64)),
                    ("gc_reclaimed", Json::UInt(r.gc_reclaimed)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let cfg = Config::from_env();
    println!(
        "E21: graceful degradation — fixed 2VNL vs adaptive n + paced commits\n\
         ({} seeds, {} keys, {} commits, {}×{} reads, faults {})\n",
        cfg.seeds.len(),
        cfg.keys,
        cfg.commits,
        cfg.readers,
        cfg.reads_per_reader,
        if cfg!(feature = "failpoints") {
            "armed"
        } else {
            "compiled out"
        },
    );

    let mut fixed = Vec::new();
    let mut resilient = Vec::new();
    let mut rows = Vec::new();
    for &seed in &cfg.seeds {
        wh_types::fault::clear_all();
        let f = run_soak(&cfg.arm(seed, false)).expect("fixed arm");
        wh_types::fault::clear_all();
        let r = run_soak(&cfg.arm(seed, true)).expect("resilient arm");
        wh_types::fault::clear_all();
        assert!(f.is_correct(), "fixed arm seed {seed}: {f:?}");
        assert!(r.is_correct(), "resilient arm seed {seed}: {r:?}");
        rows.push(vec![
            seed.to_string(),
            format!("{:.3}", f.expiration_rate()),
            format!("{:.3}", r.expiration_rate()),
            r.paced_commits.to_string(),
            r.adaptive_transitions.to_string(),
            r.final_effective_n.to_string(),
            (f.injected_faults + r.injected_faults).to_string(),
        ]);
        fixed.push((seed, f));
        resilient.push((seed, r));
    }

    print_table(
        &[
            "seed",
            "fixed exp/op",
            "resilient exp/op",
            "paced",
            "n moves",
            "final n_eff",
            "faults",
        ],
        &rows,
    );

    let fixed_reports: Vec<SoakReport> = fixed.iter().map(|(_, r)| r.clone()).collect();
    let resilient_reports: Vec<SoakReport> = resilient.iter().map(|(_, r)| r.clone()).collect();
    let fixed_rate = mean_rate(&fixed_reports);
    let resilient_rate = mean_rate(&resilient_reports);
    let reduced = resilient_rate < fixed_rate || (fixed_rate == 0.0 && resilient_rate == 0.0);
    let reduction_pct = if fixed_rate > 0.0 {
        (1.0 - resilient_rate / fixed_rate) * 100.0
    } else {
        0.0
    };

    println!(
        "\nmean expiration rate: fixed {fixed_rate:.4} vs adaptive+paced \
         {resilient_rate:.4} ({reduction_pct:.0}% reduction)"
    );
    println!(
        "verdict: {}",
        if reduced {
            "PASS — pacing + adaptive n reduce reader expirations at equal correctness"
        } else {
            "FAIL — resilient arm did not reduce the expiration rate"
        }
    );

    let doc = Json::obj([
        ("experiment", Json::Str("E21-degradation".into())),
        (
            "failpoints_compiled",
            Json::Bool(cfg!(feature = "failpoints")),
        ),
        ("keys", Json::Int(cfg.keys)),
        ("commits", Json::UInt(u64::from(cfg.commits))),
        ("readers", Json::UInt(cfg.readers as u64)),
        ("fixed", arm_json(&fixed)),
        ("resilient", arm_json(&resilient)),
        ("fixed_mean_expiration_rate", Json::Fixed(fixed_rate, 4)),
        (
            "resilient_mean_expiration_rate",
            Json::Fixed(resilient_rate, 4),
        ),
        ("reduction_pct", Json::Fixed(reduction_pct, 1)),
        ("reduced", Json::Bool(reduced)),
    ]);
    json::write_report("BENCH_degrade.json", &doc);
    assert!(
        reduced,
        "E21 acceptance: resilient arm must not expire more"
    );
}
