//! Experiment E3 — storage overhead of the schema extension (§3.1,
//! Figure 3).
//!
//! Reproduces the paper's exact numbers (DailySales: 42 → 51 bytes per
//! tuple, ≈ +21%) and sweeps the two knobs the paper discusses: the fraction
//! of updatable attributes (worst case ≈ 2×) and the number of versions `n`.

use wh_bench::print_table;
use wh_types::schema::daily_sales_schema;
use wh_types::{Column, DataType, Schema};
use wh_vnl::ExtLayout;

fn main() {
    println!("E3: storage overhead of the 2VNL/nVNL schema extension\n");

    // --- Figure 3 exact reproduction -------------------------------------
    let layout = ExtLayout::new(daily_sales_schema(), 2).unwrap();
    println!("Figure 3 — extended DailySales schema (paper: 42 -> 51 bytes, ~20%):");
    let rows: Vec<Vec<String>> = layout
        .ext_schema()
        .columns()
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.ty.to_string(),
                c.ty.byte_width().to_string(),
            ]
        })
        .collect();
    print_table(&["column", "type", "bytes"], &rows);
    let o = layout.overhead();
    println!(
        "\nbase tuple: {} bytes   extended tuple: {} bytes   overhead: {:.1}%\n",
        o.base_tuple_bytes,
        o.ext_tuple_bytes,
        o.ratio() * 100.0
    );

    // --- Sweep: fraction of updatable attributes -------------------------
    println!("Overhead vs updatable-attribute fraction (10 x INT64 columns, n = 2):");
    let mut rows = Vec::new();
    for updatable in 0..=10usize {
        let columns: Vec<Column> = (0..10)
            .map(|i| {
                if i < updatable {
                    Column::updatable(format!("c{i}"), DataType::Int64)
                } else {
                    Column::new(format!("c{i}"), DataType::Int64)
                }
            })
            .collect();
        let schema = Schema::new(columns).unwrap();
        let o = ExtLayout::new(schema, 2).unwrap().overhead();
        rows.push(vec![
            format!("{updatable}/10"),
            o.base_tuple_bytes.to_string(),
            o.ext_tuple_bytes.to_string(),
            format!("{:.1}%", o.ratio() * 100.0),
        ]);
    }
    print_table(&["updatable", "base B", "ext B", "overhead"], &rows);
    println!(
        "\n(paper §3.1: worst case — every attribute updatable — approximately doubles\n\
         storage; summary tables with few updatable attributes pay far less)\n"
    );

    // --- Sweep: number of versions n (nVNL, §5) ---------------------------
    println!("DailySales overhead vs number of versions n (nVNL):");
    let mut rows = Vec::new();
    for n in 2..=6usize {
        let o = ExtLayout::new(daily_sales_schema(), n).unwrap().overhead();
        rows.push(vec![
            n.to_string(),
            o.base_tuple_bytes.to_string(),
            o.ext_tuple_bytes.to_string(),
            format!("{:.1}%", o.ratio() * 100.0),
        ]);
    }
    print_table(&["n", "base B", "ext B", "overhead"], &rows);
    println!("\n(§5: \"the higher n is, the more overhead we incur in storage\")");
}
