//! Experiment E20 — the unified observability layer under load.
//!
//! Runs the E18 reader/maintenance workload with every `wh-obs` metric
//! live, then dumps one `Registry::snapshot()`: reader staleness
//! (`currentVN − sessionVN`) distribution while maintenance transactions
//! commit under the readers, decision-table arm counters, maintenance phase
//! timings, GC reclaim latencies and horizon lag, latch waits, and the
//! per-scheme `cc.*` lock-wait histograms from a short §6 mixed run.
//!
//! Also measures the numbers the CI overhead gate rides on: six
//! independent hot-loop probes (full scan, projected scan, point lookups,
//! an aggregate query, a maintenance update round, a raw heap scan). Build once with default features
//! and once with `--no-default-features` (all instrumentation compiled
//! out), run both, and compare the geometric mean of the probe ratios:
//!
//! ```text
//! report_obs                              # writes BENCH_obs.json
//! report_obs --check-overhead base.json   # exits 1 if >5% slower than base
//! ```
//!
//! Best-of-N inside one process converges, but the process itself is a
//! sample: address-space layout shifts cache/TLB aliasing enough to move a
//! hot loop several percent between invocations of the *same* binary. The
//! gate therefore runs each build a few times and takes the per-probe
//! minimum across processes: `--probes-only` skips the workload phases so
//! the extra invocations stay cheap, and `--merge-probes` folds the
//! existing output file's probe numbers in (per-probe min) before writing.
//!
//! `WH_BENCH_QUICK=1` shrinks the relation and repeat counts for CI;
//! `WH_BENCH_OUT` overrides the output path; `WH_OBS_OVERHEAD_PCT`
//! overrides the 5% gate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wh_bench::json::{self, Json};
use wh_bench::{all_schemes, mixed_run, print_table};
use wh_sql::Params;
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Value};
use wh_vnl::VnlTable;

struct Config {
    cities: usize,
    lines: usize,
    days: usize,
    scan_repeats: usize,
    maintenance_rounds: usize,
    reader_threads: usize,
    quick: bool,
}

impl Config {
    fn from_env() -> Config {
        let quick = std::env::var("WH_BENCH_QUICK").is_ok();
        if quick {
            Config {
                cities: 25,
                lines: 8,
                days: 50,
                scan_repeats: 15,
                maintenance_rounds: 4,
                reader_threads: 2,
                quick,
            }
        } else {
            Config {
                cities: 125,
                lines: 16,
                days: 50,
                scan_repeats: 15,
                maintenance_rounds: 8,
                reader_threads: 4,
                quick,
            }
        }
    }

    fn rows(&self) -> usize {
        self.cities * self.lines * self.days
    }
}

fn dates(days: usize) -> Vec<Date> {
    (0..days)
        .map(|d| {
            if d < 25 {
                Date::ymd(1996, 10, (d + 1) as u8)
            } else {
                Date::ymd(1996, 11, (d - 25 + 1) as u8)
            }
        })
        .collect()
}

fn build_table(cfg: &Config) -> VnlTable {
    let t =
        VnlTable::create_named("DailySales", daily_sales_schema(), 2).expect("create DailySales");
    let dates = dates(cfg.days);
    let mut rows = Vec::with_capacity(cfg.rows());
    for c in 0..cfg.cities {
        for l in 0..cfg.lines {
            for d in &dates {
                rows.push(vec![
                    Value::from(format!("City-{c:03}").as_str()),
                    Value::from("CA"),
                    Value::from(format!("line-{l:02}").as_str()),
                    Value::from(*d),
                    Value::from(((c * 7 + l * 13) % 100) as i64 * 100),
                ]);
            }
        }
    }
    t.load_initial(&rows).expect("load DailySales");
    t
}

/// Best (minimum) wall-clock milliseconds of `repeats` runs of `f`, after
/// two discarded warmup runs. The overhead gate compares two separate
/// process invocations on a possibly noisy CI box; the minimum is the
/// standard noise-robust estimator for "how fast can this code go", where a
/// median still jitters by several percent run to run.
fn best_ms(repeats: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..2 {
        f();
    }
    (0..repeats)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// The overhead-gate probes: six independent hot loops over the quiescent
/// relation, each reported as its best-of-N wall clock.
///
/// Comparing a *single* loop across two binaries measures that binary's
/// code layout as much as the instrumentation — the same monomorphized
/// scan loop shifting across an icache-line boundary between builds moves
/// its time by ~5% on this workload, dwarfing the real cost of the
/// compiled-in metrics (measured in-process at well under 1%). Each
/// probe's alignment luck is independent, so the gate compares the
/// geometric mean of the per-probe ratios, which converges on the true
/// instrumentation overhead instead of one loop's placement.
fn overhead_probes(table: &VnlTable, cfg: &Config) -> Vec<(&'static str, f64)> {
    let rows = cfg.rows();
    let session = table.begin_session();

    // The E18 serial hot path: full-relation streaming scan.
    let scan = best_ms(cfg.scan_repeats, || {
        let n = AtomicU64::new(0);
        session
            .scan_with(|_| {
                n.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .expect("serial scan");
        assert_eq!(n.load(Ordering::Relaxed) as usize, rows);
    });

    // Projection pushdown: only city and total_sales are decoded.
    let projected = best_ms(cfg.scan_repeats, || {
        let n = AtomicU64::new(0);
        session
            .scan_projected_with(&[0, 4], |_| {
                n.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .expect("projected scan");
        assert_eq!(n.load(Ordering::Relaxed) as usize, rows);
    });

    // Point reads: the first day of one product line in every city.
    let first_day = dates(cfg.days)[0];
    let keys: Vec<Vec<Value>> = (0..cfg.cities)
        .map(|c| {
            vec![
                Value::from(format!("City-{c:03}").as_str()),
                Value::from("CA"),
                Value::from("line-00"),
                Value::from(first_day),
                Value::from(0i64),
            ]
        })
        .collect();
    let lookup = best_ms(cfg.scan_repeats, || {
        for key in &keys {
            assert!(
                session.read_by_key(key).expect("read_by_key").is_some(),
                "probe key must resolve"
            );
        }
    });

    // The executor path: parse + grouped aggregate over the relation.
    let sql = best_ms(cfg.scan_repeats, || {
        let res = session
            .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city")
            .expect("aggregate query");
        assert_eq!(res.rows.len(), cfg.cities);
    });
    session.finish();

    // The maintenance mutation path: each rep runs one decision-table
    // round — update every day of one product line in one city — and
    // commits, exercising modify/update latching and the arm counters.
    let update = best_ms(cfg.scan_repeats, || {
        let txn = table.begin_maintenance().expect("probe begin");
        txn.execute_sql(
            "UPDATE DailySales SET total_sales = total_sales + 1 \
             WHERE city = 'City-000' AND product_line = 'line-00'",
            &Params::new(),
        )
        .expect("probe update");
        txn.commit().expect("probe commit");
    });

    // Raw storage below the 2VNL layer: latch + page iteration only.
    let heap = wh_storage::HeapFile::new(128, std::sync::Arc::new(wh_storage::IoStats::new()))
        .expect("probe heap");
    for i in 0..10_000u64 {
        heap.insert(&[(i % 251) as u8; 128]).expect("probe insert");
    }
    let heap_ms = best_ms(cfg.scan_repeats, || {
        let n = AtomicU64::new(0);
        heap.scan(|_, _| {
            n.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .expect("heap scan");
        assert_eq!(n.load(Ordering::Relaxed), 10_000);
    });

    vec![
        ("probe_scan_ms", scan),
        ("probe_scan_projected_ms", projected),
        ("probe_lookup_ms", lookup),
        ("probe_sql_agg_ms", sql),
        ("probe_update_txn_ms", update),
        ("probe_heap_scan_ms", heap_ms),
    ]
}

/// The concurrency phase: readers scanning in sessions (restarting on
/// expiration) while maintenance commits `rounds` of updates plus a
/// delete/re-insert churn that leaves logically-deleted tuples for the GC
/// collector sweeping alongside. Returns (reads_ok, sessions, commits).
fn reader_maintenance_phase(table: &std::sync::Arc<VnlTable>, cfg: &Config) -> (u64, u64, u64) {
    let reads_ok = AtomicU64::new(0);
    let sessions = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);
    let collector = wh_vnl::gc::Collector::spawn(
        std::sync::Arc::clone(table),
        std::time::Duration::from_millis(2),
    );
    std::thread::scope(|s| {
        // Maintenance: each round bumps one city-in-5's sales and churns one
        // city through delete + re-insert (Table 4 row 1 then Table 2 row 3
        // or a resurrection, feeding the GC).
        s.spawn(|| {
            for round in 0..cfg.maintenance_rounds {
                let txn = table.begin_maintenance().expect("begin maintenance");
                for c in (round % 5..cfg.cities).step_by(5) {
                    txn.execute_sql(
                        &format!(
                            "UPDATE DailySales SET total_sales = total_sales + 1 \
                             WHERE city = 'City-{c:03}'"
                        ),
                        &Params::new(),
                    )
                    .expect("maintenance update");
                }
                let churn_city = format!("City-{:03}", round % cfg.cities);
                txn.execute_sql(
                    &format!("DELETE FROM DailySales WHERE city = '{churn_city}'"),
                    &Params::new(),
                )
                .expect("maintenance delete");
                txn.commit().expect("commit");
                commits.fetch_add(1, Ordering::Relaxed);
                // Give GC a window where the deleted tuples are collectable,
                // then restore the city so the next rounds see full size.
                std::thread::sleep(std::time::Duration::from_millis(5));
                let txn = table.begin_maintenance().expect("begin maintenance");
                let dates = dates(cfg.days);
                for l in 0..cfg.lines {
                    for d in &dates {
                        txn.insert(vec![
                            Value::from(churn_city.as_str()),
                            Value::from("CA"),
                            Value::from(format!("line-{l:02}").as_str()),
                            Value::from(*d),
                            Value::from(((round * 7 + l * 13) % 100) as i64 * 100),
                        ])
                        .expect("maintenance re-insert");
                    }
                }
                txn.commit().expect("commit");
                commits.fetch_add(1, Ordering::Relaxed);
            }
            done.store(true, Ordering::SeqCst);
        });
        // Readers: sessions of scans, expiration handled by the shared
        // retry discipline (§4.1's "begin a new session", with bounded
        // attempts and jittered backoff) instead of a hand-rolled restart.
        for seed in 0..cfg.reader_threads as u64 {
            let (reads_ok, sessions, done) = (&reads_ok, &sessions, &done);
            s.spawn(move || {
                let retry = wh_vnl::RetryPolicy::default()
                    .with_max_attempts(64)
                    .with_seed(seed);
                while !done.load(Ordering::SeqCst) {
                    let (res, stats) = retry.run_with_stats(table, |session| {
                        for _ in 0..4 {
                            session.scan_with(|_| Ok(()))?;
                        }
                        Ok(())
                    });
                    sessions.fetch_add(u64::from(stats.attempts), Ordering::Relaxed);
                    match res {
                        Ok(()) => {
                            reads_ok.fetch_add(4, Ordering::Relaxed);
                        }
                        Err(e) => panic!("reader error: {e}"),
                    }
                }
            });
        }
    });
    collector.stop();
    (
        reads_ok.load(Ordering::Relaxed),
        sessions.load(Ordering::Relaxed),
        commits.load(Ordering::Relaxed),
    )
}

/// `"name": value` pulled out of a rendered JSON document by string search —
/// the repo has no JSON parser dependency, and the documents are written by
/// our own `wh_bench::json` with a stable `"key": value` shape.
fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn hist_row(snap: &wh_obs::registry::Snapshot, name: &str) -> Vec<String> {
    let h = snap.histogram(name);
    vec![
        name.to_string(),
        h.count().to_string(),
        format!("{:.0}", h.mean()),
        h.quantile(0.5).to_string(),
        h.quantile(0.99).to_string(),
        h.max.to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args
        .iter()
        .position(|a| a == "--check-overhead")
        .map(|i| args.get(i + 1).cloned().expect("--check-overhead PATH"));
    let probes_only = args.iter().any(|a| a == "--probes-only");
    let merge_probes = args.iter().any(|a| a == "--merge-probes");

    let cfg = Config::from_env();
    println!(
        "E20: observability under the E18 workload ({} rows{}; metrics {})\n",
        cfg.rows(),
        if cfg.quick { ", quick mode" } else { "" },
        if wh_obs::is_enabled() {
            "enabled"
        } else {
            "disabled"
        }
    );

    let table = std::sync::Arc::new(build_table(&cfg));

    // Phase 1: the overhead-gate probes on the quiescent relation.
    let mut probes = overhead_probes(&table, &cfg);
    if merge_probes {
        if let Ok(prev) = std::fs::read_to_string(json::out_path("BENCH_obs.json")) {
            for (name, ms) in &mut probes {
                if let Some(old) = extract_number(&prev, name) {
                    *ms = ms.min(old);
                }
            }
        }
    }
    println!(
        "overhead probes (best of {} runs{}):",
        cfg.scan_repeats,
        if merge_probes {
            ", merged with prior invocations"
        } else {
            ""
        }
    );
    for (name, ms) in &probes {
        println!("  {name:24} {ms:8.3} ms");
    }

    if probes_only {
        let doc = Json::obj([
            ("experiment", "E20".into()),
            ("rows", cfg.rows().into()),
            ("quick", cfg.quick.into()),
            ("obs_enabled", wh_obs::is_enabled().into()),
            (
                "overhead_probes",
                Json::Object(
                    probes
                        .iter()
                        .map(|(name, ms)| ((*name).to_string(), Json::Fixed(*ms, 3)))
                        .collect(),
                ),
            ),
        ]);
        json::write_report("BENCH_obs.json", &doc);
        check_overhead(baseline.as_deref(), &probes);
        return;
    }

    // Phase 2: readers against live maintenance + GC.
    let (reads_ok, sessions, commits) = reader_maintenance_phase(&table, &cfg);
    println!(
        "concurrency phase: {reads_ok} scans ok across {sessions} sessions, {commits} commits"
    );

    // Phase 2b: a final delete followed by a quiescent collection pass, so
    // GC reclaim latency is always populated even when the concurrent
    // collector's passes kept missing the churn windows above.
    let txn = table.begin_maintenance().expect("begin maintenance");
    txn.execute_sql(
        "DELETE FROM DailySales WHERE city = 'City-001'",
        &Params::new(),
    )
    .expect("final delete");
    txn.commit().expect("commit");
    let gc_report = wh_vnl::gc::collect(&table).expect("gc pass");
    println!(
        "final GC pass: {} reclaimed of {} logically deleted",
        gc_report.reclaimed, gc_report.deleted_found
    );

    // Phase 3: a short §6 scheme comparison to populate the per-scheme
    // cc.* wait histograms.
    let keys = if cfg.quick { 64 } else { 256 };
    for scheme in all_schemes(keys) {
        let r = mixed_run(scheme.as_ref(), keys, 2, 32, 3);
        println!(
            "scheme {}: {} reads ok, {} blocks",
            r.scheme,
            r.reads_ok,
            r.cc.total_blocks()
        );
    }

    let snap = wh_obs::registry::global().snapshot();

    if wh_obs::is_enabled() {
        println!("\n-- key distributions (ns unless noted) --");
        let rows = vec![
            hist_row(&snap, "vnl.reader.staleness_vns"),
            hist_row(&snap, "storage.latch.read_wait_ns"),
            hist_row(&snap, "storage.latch.write_wait_ns"),
            hist_row(&snap, "vnl.maintenance.update_ns"),
            hist_row(&snap, "vnl.maintenance.commit_ns"),
            hist_row(&snap, "vnl.gc.reclaim_ns"),
            hist_row(&snap, "cc.s2pl.reader_wait_ns"),
        ];
        print_table(&["metric", "count", "mean", "p50", "p99", "max"], &rows);
        println!(
            "\nreader staleness now {} (high water {}), GC reclaimed {} tuples, \
             decision arms: insert={} update_saving_pre={} mark_deleted={}",
            snap.gauge("vnl.reader.staleness"),
            snap.gauge_high_water("vnl.reader.staleness"),
            snap.counter("vnl.gc.reclaimed"),
            snap.counter("vnl.maintenance.arm.insert_tuple"),
            snap.counter("vnl.maintenance.arm.update_saving_pre"),
            snap.counter("vnl.maintenance.arm.mark_deleted"),
        );
    }

    let staleness = snap.histogram("vnl.reader.staleness_vns");
    let doc = Json::obj([
        ("experiment", "E20".into()),
        ("rows", cfg.rows().into()),
        ("quick", cfg.quick.into()),
        ("obs_enabled", wh_obs::is_enabled().into()),
        (
            "overhead_probes",
            Json::Object(
                probes
                    .iter()
                    .map(|(name, ms)| ((*name).to_string(), Json::Fixed(*ms, 3)))
                    .collect(),
            ),
        ),
        ("reads_ok", reads_ok.into()),
        ("reader_sessions", sessions.into()),
        ("maintenance_commits", commits.into()),
        (
            "staleness",
            Json::obj([
                ("count", staleness.count().into()),
                ("mean", Json::Fixed(staleness.mean(), 3)),
                ("p50", staleness.quantile(0.5).into()),
                ("p99", staleness.quantile(0.99).into()),
                ("max", staleness.max.into()),
            ]),
        ),
        ("snapshot", Json::Raw(snap.to_json())),
    ]);
    json::write_report("BENCH_obs.json", &doc);

    check_overhead(baseline.as_deref(), &probes);
}

/// Compare this run's probe numbers against a metrics-disabled baseline
/// JSON and exit nonzero if the geometric-mean overhead exceeds the gate
/// (`WH_OBS_OVERHEAD_PCT`, default 5%). No-op without a baseline path.
fn check_overhead(baseline: Option<&str>, probes: &[(&'static str, f64)]) {
    let Some(path) = baseline else { return };
    let base_doc =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
    let gate_pct: f64 = std::env::var("WH_OBS_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    println!("\noverhead check (geomean across probes, gate {gate_pct:.1}%):");
    let mut log_ratio_sum = 0.0;
    for (name, ms) in probes {
        let base = extract_number(&base_doc, name)
            .unwrap_or_else(|| panic!("baseline {path} missing {name}"));
        let ratio = ms / base;
        log_ratio_sum += ratio.ln();
        println!(
            "  {name:24} {ms:8.3} ms vs {base:8.3} ms ({:+.2}%)",
            (ratio - 1.0) * 100.0
        );
    }
    let geomean = (log_ratio_sum / probes.len() as f64).exp();
    let overhead_pct = (geomean - 1.0) * 100.0;
    println!("  geomean overhead {overhead_pct:+.2}%");
    if overhead_pct > gate_pct {
        eprintln!("FAIL: enabled-metrics overhead exceeds the {gate_pct:.1}% gate");
        std::process::exit(1);
    }
    println!("overhead within gate");
}
