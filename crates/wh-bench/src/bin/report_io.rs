//! Experiment E10 — the §6 comparison: 2VNL vs S2PL vs 2V2PL vs MV2PL.
//!
//! One batch writer (the maintenance transaction) updates every tuple each
//! round while long reader sessions stream point reads. The table shows
//! where each scheme pays: S2PL blocks both sides; 2V2PL delays writer
//! commit behind readers; MV2PL pays extra version-pool I/O; 2VNL pays
//! nothing at runtime beyond its in-tuple copies.

use wh_bench::{all_schemes, mixed_run, print_table};

fn run_workload(keys: u64, reader_threads: usize, reads_per_session: u64, rounds: u64) {
    println!(
        "workload: {keys} tuples, {reader_threads} reader thread(s) x {reads_per_session} reads/session, {rounds} maintenance rounds\n"
    );
    let mut rows = Vec::new();
    for scheme in all_schemes(keys) {
        let r = mixed_run(
            scheme.as_ref(),
            keys,
            reader_threads,
            reads_per_session,
            rounds,
        );
        let ms = r.elapsed.as_secs_f64() * 1e3;
        rows.push(vec![
            r.scheme.clone(),
            format!("{:.0}", r.reads_ok as f64 / ms),
            r.reads_failed.to_string(),
            format!("{}/{}", r.commits, rounds),
            r.cc.reader_blocks.to_string(),
            r.cc.writer_blocks.to_string(),
            r.cc.commit_delays.to_string(),
            format!("{:.2}ms", r.cc.commit_delay_ns as f64 / 1e6),
            r.cc.aborts.to_string(),
            r.io.page_reads.to_string(),
            r.io.page_writes.to_string(),
            r.storage_bytes.to_string(),
        ]);
    }
    print_table(
        &[
            "scheme",
            "reads/ms",
            "reads failed",
            "commits",
            "rd blocks",
            "wr blocks",
            "commit delays",
            "delay total",
            "aborts",
            "page rd",
            "page wr",
            "bytes",
        ],
        &rows,
    );
    println!();
}

fn main() {
    println!("E10: concurrency-control comparison (one writer, concurrent readers)\n");
    println!("--- light read load (2V2PL commits succeed, but delayed) ---");
    run_workload(512, 1, 64, 8);
    println!("--- heavy read load (2V2PL certify starves: 'readers delay writers') ---");
    run_workload(512, 4, 256, 8);
    println!(
        "Expected shape (§6): S2PL shows blocks/aborts on both sides; 2V2PL commits\n\
         are delayed (or starved outright) by readers; MV2PL never blocks but pays\n\
         extra page I/O and pool storage for old versions; 2VNL never blocks, never\n\
         delays, and keeps both versions inside the tuple."
    );

    // Per-operation I/O microview: single reader resolving an old version.
    println!("\nPer-operation logical I/O (reader of a superseded tuple):\n");
    let mut rows = Vec::new();
    for scheme in all_schemes(8) {
        // One committed update so an old reader must resolve a past version.
        let reader_before = scheme.begin_reader();
        let mut w = scheme.begin_writer();
        let mut old_reader = reader_before;
        let _ = w.update(3, 42);
        let _ = w.commit();
        scheme.reset_stats();
        let read = old_reader.read(3);
        let io = scheme.io_stats();
        old_reader.finish();
        rows.push(vec![
            scheme.name().to_string(),
            match read {
                Ok(v) => format!("ok({v})"),
                Err(e) => format!("{e}"),
            },
            io.page_reads.to_string(),
        ]);
    }
    print_table(&["scheme", "old-version read", "page reads"], &rows);
    println!(
        "\n(2VNL resolves the pre-update version from the SAME tuple: no extra I/O.\n\
         MV2PL chases the version chain into the pool: extra page reads. S2PL's\n\
         reader would simply have blocked/aborted during the update.)"
    );
}
