//! Experiments E1, E2, E9 — the Figure 1 vs Figure 2 availability
//! comparison and the §5 never-expire formula.

use wh_bench::print_table;
use wh_workload::sim::{availability_comparison, empirical_guaranteed_length, PeriodicSchedule};

fn main() {
    println!("E1/E2: nightly maintenance (Figure 1) vs 2VNL round-the-clock (Figure 2)\n");

    // Figure 2's policy: maintenance 9am -> 8am (+1h gap), simulated for 30
    // days with 5,000 analyst sessions of up to 4 hours.
    let schedule = PeriodicSchedule::figure_2();
    let mut rows = Vec::new();
    for (label, n) in [("2VNL", 2u64), ("3VNL", 3), ("4VNL", 4)] {
        let r = availability_comparison(schedule, n, 30 * 1440, 5_000, 4 * 60, 1997);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", r.nightly_availability * 100.0),
            format!("{} / {}", r.nightly_blocked, r.sessions),
            format!("{:.1}%", r.vnl_availability * 100.0),
            format!("{} / {}", r.vnl_expired, r.sessions),
        ]);
    }
    print_table(
        &[
            "scheme",
            "nightly avail",
            "nightly blocked",
            "vnl avail",
            "vnl expired",
        ],
        &rows,
    );
    println!(
        "\n(Figure 1 regime: readers cannot run while maintenance runs. Figure 2 regime:\n\
         the warehouse is readable 24h; the only cost is session expiration, which\n\
         shrinks as n grows — §5.)\n"
    );

    // --- E9: the (n-1)(i+m) - m guarantee ---------------------------------
    println!("E9: never-expire guarantee, simulation vs formula (n-1)*(i+m) - m\n");
    let mut rows = Vec::new();
    for n in 2..=5u64 {
        for (i, m) in [(60u64, 1380u64), (120, 600), (30, 30)] {
            let sim = empirical_guaranteed_length(i, m, n);
            let formula = wh_vnl::guaranteed_session_length(n, i, m);
            rows.push(vec![
                n.to_string(),
                i.to_string(),
                m.to_string(),
                formula.to_string(),
                sim.to_string(),
                if sim >= formula && sim <= formula + 1 {
                    "ok".into()
                } else {
                    "MISMATCH".into()
                },
            ]);
        }
    }
    print_table(
        &["n", "gap i", "maint m", "formula", "simulated", "check"],
        &rows,
    );
    println!(
        "\n(paper §5: 2VNL guarantees sessions up to i; 3VNL up to 2i+m; nVNL up to\n\
         (n-1)(i+m) - m. Simulated values may exceed the formula by one minute of\n\
         discretization.)"
    );
}
