//! Experiments E4–E8 — the paper's worked examples, regenerated live:
//! Figure 4 extraction (Example 3.2), Figures 5→6 (Example 3.3), the
//! Example 4.1 rewrite text, and the Figure 7 / Example 5.1 4VNL tuple.

use wh_bench::print_table;
use wh_sql::{parse_statement, Statement};
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, Value};
use wh_vnl::VnlTable;

fn row(city: &str, pl: &str, day: u8, sales: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(pl),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

fn dump_physical(t: &VnlTable, title: &str) {
    println!("{title}");
    let l = t.layout();
    let mut rows: Vec<Vec<String>> = t
        .scan_raw()
        .unwrap()
        .into_iter()
        .map(|(_, ext)| {
            let (vn, op) = l.slot(&ext, 0).unwrap();
            vec![
                vn.to_string(),
                op.to_string(),
                ext[l.base_col(0)].to_string(),
                ext[l.base_col(2)].to_string(),
                ext[l.base_col(3)].to_string(),
                ext[l.base_col(4)].to_string(),
                ext[l.pre_set(0)[0]].to_string(),
            ]
        })
        .collect();
    rows.sort();
    print_table(
        &[
            "tupleVN",
            "operation",
            "city",
            "product_line",
            "date",
            "total_sales",
            "pre_total_sales",
        ],
        &rows,
    );
    println!();
}

fn main() {
    // Build the Figure 4 state.
    let t = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    let txn = t.begin_maintenance().unwrap(); // VN 2
    txn.insert(row("Berkeley", "racquetball", 14, 10_000))
        .unwrap();
    txn.insert(row("Novato", "rollerblades", 13, 8_000))
        .unwrap();
    txn.commit().unwrap();
    let txn = t.begin_maintenance().unwrap(); // VN 3
    txn.insert(row("San Jose", "golf equip", 14, 10_000))
        .unwrap();
    txn.commit().unwrap();
    let session3 = t.begin_session(); // sessionVN = 3 (Example 3.2's reader)
    let txn = t.begin_maintenance().unwrap(); // VN 4
    txn.insert(row("San Jose", "golf equip", 15, 1_500))
        .unwrap();
    txn.update_row(&row("Berkeley", "racquetball", 14, 12_000))
        .unwrap();
    txn.delete_row(&row("Novato", "rollerblades", 13, 0))
        .unwrap();
    txn.commit().unwrap();

    dump_physical(&t, "Figure 4 — extended DailySales relation:");

    println!("Example 3.2 — tuples returned to a reader with sessionVN = 3:");
    let rows: Vec<Vec<String>> = session3
        .scan()
        .unwrap()
        .into_iter()
        .map(|r| r.iter().map(std::string::ToString::to_string).collect())
        .collect();
    print_table(
        &["city", "state", "product_line", "date", "total_sales"],
        &rows,
    );
    println!();
    session3.finish();

    // Figure 5's maintenance transaction (VN 5).
    let txn = t.begin_maintenance().unwrap();
    txn.insert(row("San Jose", "golf equip", 16, 11_000))
        .unwrap();
    txn.insert(row("Novato", "rollerblades", 13, 6_000))
        .unwrap();
    txn.update_row(&row("San Jose", "golf equip", 14, 10_200))
        .unwrap();
    txn.delete_row(&row("Berkeley", "racquetball", 14, 0))
        .unwrap();
    txn.commit().unwrap();
    dump_physical(
        &t,
        "Figure 6 — DailySales after the Figure 5 maintenance transaction (VN 5):",
    );

    // Example 4.1 — the rewrite, verbatim.
    println!("Example 4.1 — reader query rewrite:");
    let original = "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state";
    println!("  original : {original}");
    let Statement::Select(q) = parse_statement(original).unwrap() else {
        unreachable!()
    };
    let rewriter = t.rewriter();
    println!("  rewritten: {}", rewriter.rewrite_select(&q).unwrap());
    println!();

    // Figure 7 / Example 5.1 — the 4VNL tuple.
    println!("Figure 7 — 4VNL tuple after insert(VN3), update(VN5), delete(VN6):");
    let t4 = VnlTable::create_named("DailySales", daily_sales_schema(), 4).unwrap();
    let txn = t4.begin_maintenance().unwrap(); // VN 2: no-op, advance
    txn.commit().unwrap();
    let txn = t4.begin_maintenance().unwrap(); // VN 3
    txn.insert(row("San Jose", "golf equip", 14, 10_000))
        .unwrap();
    txn.commit().unwrap();
    let txn = t4.begin_maintenance().unwrap(); // VN 4: unrelated
    txn.commit().unwrap();
    let txn = t4.begin_maintenance().unwrap(); // VN 5
    txn.update_row(&row("San Jose", "golf equip", 14, 10_200))
        .unwrap();
    txn.commit().unwrap();
    let txn = t4.begin_maintenance().unwrap(); // VN 6
    txn.delete_row(&row("San Jose", "golf equip", 14, 0))
        .unwrap();
    txn.commit().unwrap();
    let l = t4.layout();
    let (_, ext) = &t4.scan_raw().unwrap()[0];
    let mut cells = vec![
        ext[l.base_col(0)].to_string(),
        ext[l.base_col(4)].to_string(),
    ];
    let mut headers = vec!["city".to_string(), "total_sales".to_string()];
    for j in 0..l.slots() {
        headers.push(format!("tupleVN{}", j + 1));
        headers.push(format!("operation{}", j + 1));
        headers.push(format!("pre_total_sales{}", j + 1));
        cells.push(ext[l.vn_col(j)].to_string());
        cells.push(ext[l.op_col(j)].to_string());
        cells.push(ext[l.pre_set(j)[0]].to_string());
    }
    let headers_ref: Vec<&str> = headers.iter().map(std::string::String::as_str).collect();
    print_table(&headers_ref, &[cells]);

    println!("\nExample 5.1 — per-session visibility of that tuple:");
    let mut rows = Vec::new();
    for s in 0..=7u64 {
        let visible = wh_vnl::visibility::extract(l, ext, s);
        rows.push(vec![
            s.to_string(),
            match visible {
                wh_vnl::Visible::Row(r) => format!("total_sales = {}", r[4]),
                wh_vnl::Visible::Ignore => "ignore (not visible)".into(),
                wh_vnl::Visible::Expired => "EXPIRED".into(),
            },
        ]);
    }
    print_table(&["sessionVN", "outcome"], &rows);
}
