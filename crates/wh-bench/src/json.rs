//! Minimal JSON document builder shared by the `report_*` bins.
//!
//! Every experiment report writes a machine-readable `BENCH_*.json` next to
//! its human-readable table. The repo takes no external dependencies, so
//! this is the one hand-rolled JSON writer — the bins build a [`Json`] tree
//! and hand it to [`write_report`], which honors the `WH_BENCH_OUT` override
//! the CI jobs use to redirect artifacts.

// lint: allow-file(no-panic) — report-writer support: a failed write aborts
// the bench run; there is no caller to propagate to.
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (reports read better when
/// fields appear in the order the experiment produced them).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    /// Rendered with `{}` (shortest roundtrip form).
    Float(f64),
    /// Rendered with fixed precision — `Fixed(1.23456, 3)` → `1.235`.
    Fixed(f64, u8),
    Str(String),
    /// Pre-rendered JSON spliced in verbatim (e.g. a
    /// `wh_obs::registry::Snapshot::to_json()` document).
    Raw(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => render_float(out, *f),
            Json::Fixed(f, prec) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:.prec$}", prec = *prec as usize);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Raw(r) => out.push_str(r.trim_end()),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn render_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f}");
    } else {
        // NaN/inf have no JSON form; null keeps the document parseable.
        out.push_str("null");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Resolve the output path for a report: `WH_BENCH_OUT` when set, else
/// `default_name` in the working directory.
pub fn out_path(default_name: &str) -> String {
    std::env::var("WH_BENCH_OUT").unwrap_or_else(|_| default_name.to_string())
}

/// Write `doc` to [`out_path`]`(default_name)` and announce the path on
/// stdout, as every report bin does.
pub fn write_report(default_name: &str, doc: &Json) -> String {
    let path = out_path(default_name);
    std::fs::write(&path, doc.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("experiment", "E18".into()),
            ("rows", 100usize.into()),
            ("quick", false.into()),
            (
                "results",
                Json::Array(vec![Json::obj([
                    ("threads", 4usize.into()),
                    ("median_ms", Json::Fixed(1.23456, 3)),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert!(text.contains("\"experiment\": \"E18\""));
        assert!(text.contains("\"median_ms\": 1.235"));
        assert!(text.ends_with("}\n"));
        // Brackets balance — cheap well-formedness check.
        let opens = text.matches(['{', '[']).count();
        let closes = text.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let doc = Json::Object(vec![
            ("quote\"\\".to_string(), Json::Str("line\nbreak".into())),
            ("nan".to_string(), Json::Float(f64::NAN)),
            ("inf".to_string(), Json::Fixed(f64::INFINITY, 2)),
        ]);
        let text = doc.render();
        assert!(text.contains("\"quote\\\"\\\\\""));
        assert!(text.contains("\\nbreak"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn raw_splices_verbatim() {
        let doc = Json::obj([("snapshot", Json::Raw("{\"a\": 1}\n".into()))]);
        assert!(doc.render().contains("\"snapshot\": {\"a\": 1}"));
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Array(vec![]).render(), "[]\n");
        assert_eq!(Json::Object(vec![]).render(), "{}\n");
    }
}
