//! Minimal JSON document builder shared by the `report_*` bins.
//!
//! Every experiment report writes a machine-readable `BENCH_*.json` next to
//! its human-readable table. The repo takes no external dependencies, so
//! this is the one hand-rolled JSON writer — the bins build a [`Json`] tree
//! and hand it to [`write_report`], which honors the `WH_BENCH_OUT` override
//! the CI jobs use to redirect artifacts.

// lint: allow-file(no-panic) — report-writer support: a failed write aborts
// the bench run; there is no caller to propagate to.
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (reports read better when
/// fields appear in the order the experiment produced them).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    /// Rendered with `{}` (shortest roundtrip form).
    Float(f64),
    /// Rendered with fixed precision — `Fixed(1.23456, 3)` → `1.235`.
    Fixed(f64, u8),
    Str(String),
    /// Pre-rendered JSON spliced in verbatim (e.g. a
    /// `wh_obs::registry::Snapshot::to_json()` document).
    Raw(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => render_float(out, *f),
            Json::Fixed(f, prec) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:.prec$}", prec = *prec as usize);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Raw(r) => out.push_str(r.trim_end()),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Object field lookup (first match; reports never duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::UInt(n) => Some(*n as f64),
            Json::Float(f) | Json::Fixed(f, _) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document (the counterpart of [`Json::render`], for the
/// bins that read committed `BENCH_*.json` baselines back — `bench_check`).
/// Numbers parse to [`Json::Float`]; `Raw` never round-trips (it re-parses
/// as whatever it spliced).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        s.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u{hex}"))?;
                            self.pos += 4;
                            // Reports only emit BMP scalars; surrogates
                            // degrade to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through verbatim).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn render_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let _ = write!(out, "{f}");
    } else {
        // NaN/inf have no JSON form; null keeps the document parseable.
        out.push_str("null");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Resolve the output path for a report: `WH_BENCH_OUT` when set, else
/// `default_name` in the working directory.
pub fn out_path(default_name: &str) -> String {
    std::env::var("WH_BENCH_OUT").unwrap_or_else(|_| default_name.to_string())
}

/// The commit the report was built from: `git rev-parse --short=12 HEAD`,
/// or `"unknown"` outside a git checkout.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `YYYY-MM-DDTHH:MM:SSZ` from a unix timestamp (days-from-civil inverse,
/// Gregorian; no external time crate per the dependency policy).
fn utc_from_unix(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Cargo features this report binary was compiled with (the ones that
/// change what a benchmark measures).
fn enabled_features() -> Vec<Json> {
    let mut features = Vec::new();
    if wh_obs::is_enabled() {
        features.push(Json::from("obs"));
    }
    if cfg!(feature = "failpoints") {
        features.push(Json::from("failpoints"));
    }
    features
}

/// Provenance block stamped onto every `BENCH_*.json`: git SHA, wall-clock
/// timestamp, and the compiled feature set, so the committed perf
/// trajectory stays attributable across PRs.
pub fn provenance() -> Json {
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    Json::obj([
        ("git_sha", Json::Str(git_sha())),
        ("unix_secs", Json::UInt(unix_secs)),
        ("utc", Json::Str(utc_from_unix(unix_secs))),
        ("features", Json::Array(enabled_features())),
        ("profile", {
            if cfg!(debug_assertions) {
                "debug".into()
            } else {
                "release".into()
            }
        }),
    ])
}

fn with_provenance(doc: &Json) -> Json {
    match doc {
        Json::Object(fields) if doc.get("provenance").is_none() => {
            let mut fields = fields.clone();
            fields.push(("provenance".to_string(), provenance()));
            Json::Object(fields)
        }
        other => other.clone(),
    }
}

/// Write `doc` to [`out_path`]`(default_name)` and announce the path on
/// stdout, as every report bin does. Object documents are stamped with a
/// [`provenance`] block unless they already carry one.
pub fn write_report(default_name: &str, doc: &Json) -> String {
    let path = out_path(default_name);
    std::fs::write(&path, with_provenance(doc).render())
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("experiment", "E18".into()),
            ("rows", 100usize.into()),
            ("quick", false.into()),
            (
                "results",
                Json::Array(vec![Json::obj([
                    ("threads", 4usize.into()),
                    ("median_ms", Json::Fixed(1.23456, 3)),
                ])]),
            ),
        ]);
        let text = doc.render();
        assert!(text.contains("\"experiment\": \"E18\""));
        assert!(text.contains("\"median_ms\": 1.235"));
        assert!(text.ends_with("}\n"));
        // Brackets balance — cheap well-formedness check.
        let opens = text.matches(['{', '[']).count();
        let closes = text.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let doc = Json::Object(vec![
            ("quote\"\\".to_string(), Json::Str("line\nbreak".into())),
            ("nan".to_string(), Json::Float(f64::NAN)),
            ("inf".to_string(), Json::Fixed(f64::INFINITY, 2)),
        ]);
        let text = doc.render();
        assert!(text.contains("\"quote\\\"\\\\\""));
        assert!(text.contains("\\nbreak"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn raw_splices_verbatim() {
        let doc = Json::obj([("snapshot", Json::Raw("{\"a\": 1}\n".into()))]);
        assert!(doc.render().contains("\"snapshot\": {\"a\": 1}"));
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Array(vec![]).render(), "[]\n");
        assert_eq!(Json::Object(vec![]).render(), "{}\n");
    }

    #[test]
    fn parse_roundtrips_a_report_document() {
        let doc = Json::obj([
            ("experiment", "E18/E22".into()),
            ("quick", false.into()),
            ("nothing", Json::Null),
            (
                "results",
                Json::Array(vec![Json::obj([
                    ("pipeline", "batched".into()),
                    ("threads", 4usize.into()),
                    ("median_ms", Json::Fixed(1.25, 3)),
                    ("note", Json::Str("a\"b\\c\nd".into())),
                ])]),
            ),
        ]);
        let parsed = parse(&doc.render()).expect("parse rendered report");
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("E18/E22"));
        assert_eq!(parsed.get("quick").unwrap().as_bool(), Some(false));
        assert_eq!(parsed.get("nothing"), Some(&Json::Null));
        let r = &parsed.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(r.get("pipeline").unwrap().as_str(), Some("batched"));
        assert_eq!(r.get("threads").unwrap().as_f64(), Some(4.0));
        assert_eq!(r.get("median_ms").unwrap().as_f64(), Some(1.25));
        assert_eq!(r.get("note").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parse_numbers_and_escapes() {
        let v = parse("[-1.5e2, 0, 42, \"\\u0041\\t\"]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(-150.0));
        assert_eq!(a[1].as_f64(), Some(0.0));
        assert_eq!(a[2].as_f64(), Some(42.0));
        assert_eq!(a[3].as_str(), Some("A\t"));
    }

    #[test]
    fn write_report_stamps_provenance() {
        let dir = std::env::temp_dir().join(format!("wh-bench-prov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        // out_path honors WH_BENCH_OUT, but mutating the environment races
        // with parallel tests — write through the internals instead.
        let doc = Json::obj([("experiment", "E0".into())]);
        std::fs::write(&path, super::with_provenance(&doc).render()).unwrap();
        let parsed = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let prov = parsed.get("provenance").expect("provenance block");
        assert!(prov.get("git_sha").unwrap().as_str().is_some());
        assert!(prov.get("unix_secs").unwrap().as_f64().is_some());
        let utc = prov.get("utc").unwrap().as_str().unwrap();
        assert_eq!(utc.len(), "1970-01-01T00:00:00Z".len(), "{utc}");
        assert!(utc.ends_with('Z'));
        assert!(prov.get("features").unwrap().as_array().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(super::utc_from_unix(0), "1970-01-01T00:00:00Z");
        assert_eq!(super::utc_from_unix(1_786_492_800), "2026-08-12T00:00:00Z");
        // A leap-day timestamp.
        assert_eq!(super::utc_from_unix(1_709_209_696), "2024-02-29T12:28:16Z");
    }

    #[test]
    fn existing_provenance_is_not_duplicated() {
        let doc = Json::obj([("provenance", Json::obj([("git_sha", "abc".into())]))]);
        let stamped = super::with_provenance(&doc);
        if let Json::Object(fields) = &stamped {
            assert_eq!(fields.iter().filter(|(k, _)| k == "provenance").count(), 1);
        } else {
            panic!("object expected");
        }
        assert_eq!(
            stamped
                .get("provenance")
                .unwrap()
                .get("git_sha")
                .unwrap()
                .as_str(),
            Some("abc")
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nulll",
            "[1] trailing",
            "\"open",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
