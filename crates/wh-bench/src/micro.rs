//! Minimal micro-benchmark harness for the `benches/*.rs` targets.
//!
//! The bench targets are plain `fn main()` binaries (`harness = false`):
//! each registers named timing loops against a [`Micro`] and prints an
//! aligned ns/iter table at the end. Iteration counts auto-calibrate to a
//! small per-bench time budget; set `WH_BENCH_QUICK=1` for a fast smoke run
//! (CI) at the cost of timing precision.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-bench measurement budget.
fn budget() -> Duration {
    if std::env::var_os("WH_BENCH_QUICK").is_some() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(200)
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench name (group/function).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Collects measurements and prints them as a table.
#[derive(Debug, Default)]
pub struct Micro {
    results: Vec<Measurement>,
}

impl Micro {
    /// Fresh harness.
    pub fn new() -> Self {
        Micro::default()
    }

    /// Time `f`, auto-calibrating the iteration count to the budget.
    pub fn bench<R>(&mut self, name: impl Into<String>, mut f: impl FnMut() -> R) {
        let name = name.into();
        // Warm-up + calibration: run until 5% of the budget is spent.
        let calib = budget().mul_f64(0.05).max(Duration::from_micros(50));
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < calib {
            black_box(f());
            warmup_iters += 1;
        }
        let est = start.elapsed().as_secs_f64() / warmup_iters as f64;
        let iters = ((budget().as_secs_f64() / est) as u64).clamp(1, 10_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t0.elapsed();
        self.results.push(Measurement {
            name,
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// Time `run` over fresh state from `setup`; setup time is excluded.
    pub fn bench_batched<S, R>(
        &mut self,
        name: impl Into<String>,
        mut setup: impl FnMut() -> S,
        mut run: impl FnMut(S) -> R,
    ) {
        let name = name.into();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Batched benches have expensive setup; cap the iteration count.
        while total < budget() && iters < 50 {
            let state = setup();
            let t0 = Instant::now();
            black_box(run(state));
            total += t0.elapsed();
            iters += 1;
        }
        self.results.push(Measurement {
            name,
            ns_per_iter: total.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Print the results table.
    pub fn finish(self) {
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|m| {
                vec![
                    m.name.clone(),
                    format_ns(m.ns_per_iter),
                    m.iters.to_string(),
                ]
            })
            .collect();
        crate::print_table(&["bench", "time/iter", "iters"], &rows);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("WH_BENCH_QUICK", "1");
        let mut m = Micro::new();
        m.bench("spin", || std::hint::black_box(1 + 1));
        m.bench_batched("batched", || vec![0u8; 64], |v| v.len());
        assert_eq!(m.results().len(), 2);
        assert!(m
            .results()
            .iter()
            .all(|r| r.ns_per_iter > 0.0 && r.iters > 0));
    }
}
