//! Shared experiment harness for the `warehouse-2vnl` benchmarks and
//! reports.
//!
//! Every table/figure/claim in the paper maps to a target here (see
//! DESIGN.md's experiment index):
//!
//! * report binaries (`src/bin/report_*.rs`) print the paper-shaped tables —
//!   storage overhead (E3), timeline/availability (E1/E2), expiration
//!   formula (E9), scheme comparison (E10), and the worked examples;
//! * micro-benches (`benches/*.rs`, via [`micro::Micro`]) measure the
//!   overhead claims (E13, E15) and the concurrency behaviour under load.

// lint: allow-file(no-panic) — bench harness: setup failures and oracle
// violations abort the run by design (a wrong answer must not produce a
// plausible-looking BENCH json).
pub mod json;
pub mod micro;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wh_cc::{CcError, ConcurrencyScheme, Mv2plStore, S2plStore, TwoV2plStore};
use wh_vnl::VnlStore;

/// Default lock-wait timeout for the blocking schemes in experiments.
pub const LOCK_TIMEOUT: Duration = Duration::from_millis(50);

/// Instantiate every scheme of the §6 comparison over `keys` tuples,
/// including the \[BC92b\] MV2PL page-cache refinement the paper's related
/// work discusses.
pub fn all_schemes(keys: u64) -> Vec<Box<dyn ConcurrencyScheme>> {
    vec![
        Box::new(S2plStore::populate(keys, LOCK_TIMEOUT).expect("populate S2PL")),
        Box::new(TwoV2plStore::populate(keys, LOCK_TIMEOUT).expect("populate 2V2PL")),
        Box::new(
            TwoV2plStore::populate_writer_priority(keys, LOCK_TIMEOUT).expect("populate 2V2PL-wp"),
        ),
        Box::new(Mv2plStore::populate(keys).expect("populate MV2PL")),
        Box::new(Mv2plStore::populate_with_cache(keys).expect("populate MV2PL+cache")),
        Box::new(VnlStore::populate(keys, 2).expect("populate 2VNL")),
    ]
}

/// Outcome of one mixed reader/maintenance run.
#[derive(Debug, Clone)]
pub struct MixedRunReport {
    /// Scheme name.
    pub scheme: String,
    /// Total successful tuple reads across all reader sessions.
    pub reads_ok: u64,
    /// Reader operations that failed (lock-timeout aborts, expiration).
    pub reads_failed: u64,
    /// Reader sessions that had to restart.
    pub sessions_restarted: u64,
    /// Maintenance rounds committed.
    pub commits: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Blocking instrumentation.
    pub cc: wh_cc::CcStatsSnapshot,
    /// Logical I/O.
    pub io: wh_storage::iostats::IoSnapshot,
    /// Storage footprint at the end (bytes).
    pub storage_bytes: u64,
}

/// Run `reader_threads` readers (each performing sessions of
/// `reads_per_session` point reads over a `keys`-tuple store) concurrently
/// with a maintenance writer that updates every key once per round for
/// `rounds` rounds. Readers that hit an abort/expiration restart their
/// session. This is the E10 workload: one batch writer, many long readers.
pub fn mixed_run(
    scheme: &dyn ConcurrencyScheme,
    keys: u64,
    reader_threads: usize,
    reads_per_session: u64,
    rounds: u64,
) -> MixedRunReport {
    scheme.reset_stats();
    let reads_ok = AtomicU64::new(0);
    let reads_failed = AtomicU64::new(0);
    let restarts = AtomicU64::new(0);
    let commits = AtomicU64::new(0);
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // All threads start together so scheme throughputs are comparable.
    let barrier = Arc::new(std::sync::Barrier::new(reader_threads + 1));
    let start = Instant::now();
    std::thread::scope(|s| {
        // Maintenance thread.
        {
            let done = Arc::clone(&done);
            let commits = &commits;
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                for round in 0..rounds {
                    let mut w = scheme.begin_writer();
                    let mut ok = true;
                    for k in 0..keys {
                        if w.update(k, (round + 1) as i64).is_err() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        if w.commit().is_ok() {
                            commits.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                        }
                    } else {
                        let _ = w.abort();
                    }
                }
                done.store(true, Ordering::SeqCst); // ordering: stop-flag SeqCst — stop flag on a cold path; strongest order costs nothing here
            });
        }
        // Reader threads: keep running sessions until maintenance finishes.
        for t in 0..reader_threads {
            let done = Arc::clone(&done);
            let reads_ok = &reads_ok;
            let reads_failed = &reads_failed;
            let restarts = &restarts;
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                let mut k = t as u64;
                // Every reader runs at least one full session even when
                // maintenance finishes first, so throughput is never zero.
                loop {
                    let mut r = scheme.begin_reader();
                    let mut failed = false;
                    for _ in 0..reads_per_session {
                        k = k
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407)
                            % keys;
                        match r.read(k) {
                            Ok(_) => {
                                reads_ok.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                            }
                            Err(CcError::Aborted | CcError::VersionUnavailable(_)) => {
                                reads_failed.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                                failed = true;
                                break;
                            }
                            Err(e) => panic!("unexpected reader error: {e}"),
                        }
                    }
                    r.finish();
                    if failed {
                        restarts.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                    }
                    // ordering: stop-flag SeqCst — stop flag on a cold path; strongest order costs nothing here
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                }
            });
        }
    });
    MixedRunReport {
        scheme: scheme.name().to_string(),
        reads_ok: reads_ok.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        reads_failed: reads_failed.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        sessions_restarted: restarts.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        commits: commits.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        elapsed: start.elapsed(),
        cc: scheme.cc_stats(),
        io: scheme.io_stats(),
        storage_bytes: scheme.storage_bytes(),
    }
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(
        &headers
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>(),
    );
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_cover_the_section_6_lineup() {
        let schemes = all_schemes(4);
        let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["S2PL", "2V2PL", "2V2PL-wp", "MV2PL", "MV2PL+cache", "2VNL"]
        );
    }

    #[test]
    fn mixed_run_2vnl_never_blocks() {
        let store = VnlStore::populate(32, 2).unwrap();
        let report = mixed_run(&store, 32, 2, 16, 3);
        assert_eq!(report.commits, 3);
        assert!(report.reads_ok > 0);
        assert_eq!(report.cc.total_blocks(), 0);
    }

    #[test]
    fn mixed_run_mv2pl_completes() {
        let store = Mv2plStore::populate(32).unwrap();
        let report = mixed_run(&store, 32, 2, 16, 3);
        assert_eq!(report.commits, 3);
        assert_eq!(report.cc.total_blocks(), 0);
    }

    #[test]
    fn mixed_run_s2pl_shows_friction() {
        // Guaranteed contention: a reader pins key 0 with an S lock while
        // the writer tries to update everything.
        let store = S2plStore::populate(32, Duration::from_millis(5)).unwrap();
        let mut pin = store.begin_reader();
        pin.read(0).unwrap();
        let report = mixed_run(&store, 32, 2, 8, 3);
        pin.finish();
        // The writer must have aborted against the pinned S lock.
        assert!(report.cc.aborts > 0 || report.commits < 3, "{report:?}");
    }
}
