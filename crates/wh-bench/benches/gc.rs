//! E13 — garbage collection of logically-deleted tuples (§7).

use wh_bench::micro::Micro;
use wh_types::{Column, DataType, Row, Schema, Value};
use wh_vnl::{gc, VnlTable};

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .unwrap()
}

/// A table of `n` tuples where half have been logically deleted.
fn half_deleted(n: i64) -> VnlTable {
    let table = VnlTable::create_named("kv", kv_schema(), 2).unwrap();
    let rows: Vec<Row> = (0..n)
        .map(|k| vec![Value::from(k), Value::from(0)])
        .collect();
    table.load_initial(&rows).unwrap();
    let txn = table.begin_maintenance().unwrap();
    for k in (0..n).step_by(2) {
        txn.delete_row(&vec![Value::from(k), Value::Null]).unwrap();
    }
    txn.commit().unwrap();
    table
}

fn bench_gc(m: &mut Micro) {
    for &n in &[1_000i64, 10_000] {
        m.bench_batched(
            format!("gc_pass/collect_half_of_{n}"),
            || half_deleted(n),
            move |table| {
                let report = gc::collect(&table).unwrap();
                assert_eq!(report.reclaimed as i64, n / 2);
                report
            },
        );
        // A pass with nothing to collect (all tuples pinned by a session).
        let table = half_deleted(n);
        // Drain the garbage once; subsequent passes find nothing.
        gc::collect(&table).unwrap();
        m.bench(format!("gc_pass/noop_pass_of_{n}"), || {
            gc::collect(&table).unwrap()
        });
    }
}

fn main() {
    let mut m = Micro::new();
    bench_gc(&mut m);
    m.finish();
}
