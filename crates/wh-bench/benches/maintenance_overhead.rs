//! E15 — maintenance-side overhead: applying a daily delta batch through
//! the 2VNL decision tables vs updating a plain table directly, plus the
//! full view-maintenance pipeline.

use std::sync::Arc;
use wh_bench::micro::Micro;
use wh_storage::{IoStats, Table};
use wh_types::{Date, Row, Value};
use wh_view::{SummaryViewDef, ViewMaintainer};
use wh_vnl::VnlTable;
use wh_workload::{SalesConfig, SalesGenerator};

fn view_def() -> SummaryViewDef {
    SummaryViewDef::new(
        SalesGenerator::source_schema(),
        &["city", "state", "product_line", "date"],
        "amount",
        "total_sales",
    )
    .unwrap()
}

fn generator() -> SalesGenerator {
    SalesGenerator::new(
        SalesConfig {
            cities: 40,
            product_lines: 8,
            sales_per_day: 1_000,
            correction_per_mille: 20,
            seed: 7,
        },
        Date::ymd(1996, 10, 1),
    )
}

fn bench_maintenance(m: &mut Micro) {
    let def = view_def();

    // Seed data: 5 days of history.
    let mut gen = generator();
    let mut history = Vec::new();
    for batch in gen.days(5) {
        history.extend(batch.into_iter().filter_map(|d| match d {
            wh_view::SourceDelta::Insert(r) => Some(r),
            wh_view::SourceDelta::Delete(_) => None,
        }));
    }
    let initial = def.initial_rows(&history);
    let next_batch = gen.next_day();

    // Plain-table baseline: apply the same group deltas with raw updates.
    m.bench_batched(
        "maintenance_batch/plain_table_apply",
        || {
            let table = Table::create("DailySales", def.summary_schema(), Arc::new(IoStats::new()))
                .unwrap();
            let mut rids = std::collections::HashMap::new();
            for r in &initial {
                let rid = table.insert(r).unwrap();
                rids.insert(format!("{:?}", &r[..4]), rid);
            }
            (table, rids)
        },
        |(table, rids)| {
            let deltas = wh_view::summarize(&next_batch, &[0, 1, 2, 3], 4);
            for d in deltas {
                let key = format!("{:?}", &d.key[..]);
                match rids.get(&key) {
                    Some(&rid) => {
                        let mut row: Row = table.read(rid).unwrap();
                        row[4] = row[4].add(&Value::from(d.sum_delta)).unwrap();
                        row[5] = row[5].add(&Value::from(d.count_delta)).unwrap();
                        table.update(rid, &row).unwrap();
                    }
                    None => {
                        let mut row = d.key.clone();
                        row.push(Value::from(d.sum_delta));
                        row.push(Value::from(d.count_delta));
                        table.insert(&row).unwrap();
                    }
                }
            }
            table.len()
        },
    );

    // 2VNL path: the full decision-table machinery.
    m.bench_batched(
        "maintenance_batch/vnl_apply",
        || {
            let table = def.create_table("DailySales", 2).unwrap();
            table.load_initial(&initial).unwrap();
            table
        },
        |table| {
            let maintainer = ViewMaintainer::new(def.clone());
            let txn = table.begin_maintenance().unwrap();
            maintainer.propagate(&txn, &next_batch).unwrap();
            txn.commit().unwrap();
            table.storage().len()
        },
    );

    // nVNL cost growth (§5): same batch under n = 4.
    m.bench_batched(
        "maintenance_batch/nvnl4_apply",
        || {
            let table = def.create_table("DailySales", 4).unwrap();
            table.load_initial(&initial).unwrap();
            table
        },
        |table| {
            let maintainer = ViewMaintainer::new(def.clone());
            let txn = table.begin_maintenance().unwrap();
            maintainer.propagate(&txn, &next_batch).unwrap();
            txn.commit().unwrap();
            table.storage().len()
        },
    );
}

fn bench_rollback(m: &mut Micro) {
    // §7: abort via log-free rollback.
    let def = view_def();
    let mut gen = generator();
    let mut history = Vec::new();
    for batch in gen.days(3) {
        history.extend(batch.into_iter().filter_map(|d| match d {
            wh_view::SourceDelta::Insert(r) => Some(r),
            wh_view::SourceDelta::Delete(_) => None,
        }));
    }
    let initial = def.initial_rows(&history);
    let next_batch = gen.next_day();
    m.bench_batched(
        "logfree_rollback",
        || {
            let table = def.create_table("DailySales", 2).unwrap();
            table.load_initial(&initial).unwrap();
            table
        },
        |table| {
            let maintainer = ViewMaintainer::new(def.clone());
            let txn = table.begin_maintenance().unwrap();
            maintainer.propagate(&txn, &next_batch).unwrap();
            txn.abort().unwrap();
            table.storage().len()
        },
    );
}

fn bench_single_ops(m: &mut Micro) {
    // Per-tuple decision-table cost, isolated.
    let table = VnlTable::create_named(
        "kv",
        wh_types::Schema::with_key_names(
            vec![
                wh_types::Column::new("key", wh_types::DataType::Int64),
                wh_types::Column::updatable("value", wh_types::DataType::Int64),
            ],
            &["key"],
        )
        .unwrap(),
        2,
    )
    .unwrap();
    let rows: Vec<Row> = (0..10_000i64)
        .map(|k| vec![Value::from(k), Value::from(0)])
        .collect();
    table.load_initial(&rows).unwrap();
    let txn = table.begin_maintenance().unwrap();
    let mut k = 0i64;
    m.bench("single_op/vnl_update_by_key", || {
        k = (k + 1) % 10_000;
        txn.update_row(&vec![Value::from(k), Value::from(k)])
            .unwrap();
    });
    txn.commit().unwrap();
}

fn main() {
    let mut m = Micro::new();
    bench_maintenance(&mut m);
    bench_rollback(&mut m);
    bench_single_ops(&mut m);
    m.finish();
}
