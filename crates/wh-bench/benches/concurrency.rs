//! E10 — reader throughput while the maintenance transaction runs, per
//! concurrency-control scheme (§6 comparison).
//!
//! For every scheme, a writer holds an in-flight maintenance transaction
//! that has already updated every tuple; the benchmark measures a reader
//! session doing point reads against that state. Under S2PL the reads
//! abort (lock timeout) — their cost is the timeout itself, which is the
//! phenomenon being measured, so S2PL is benchmarked with a much shorter
//! timeout and reported separately.

use std::time::Duration;
use wh_bench::micro::Micro;
use wh_cc::{ConcurrencyScheme, Mv2plStore, S2plStore, TwoV2plStore};
use wh_vnl::VnlStore;

const KEYS: u64 = 1_024;

fn bench_read_during_maintenance(m: &mut Micro) {
    // Schemes where readers proceed: 2V2PL, MV2PL, 2VNL.
    let v2: Box<dyn ConcurrencyScheme> =
        Box::new(TwoV2plStore::populate(KEYS, Duration::from_millis(50)).unwrap());
    let mv: Box<dyn ConcurrencyScheme> = Box::new(Mv2plStore::populate(KEYS).unwrap());
    let vnl: Box<dyn ConcurrencyScheme> = Box::new(VnlStore::populate(KEYS, 2).unwrap());
    for scheme in [&v2, &mv, &vnl] {
        let mut writer = scheme.begin_writer();
        for k in 0..KEYS {
            writer.update(k, 1).unwrap();
        }
        // Writer stays open: maintenance is mid-flight.
        let mut k = 0u64;
        let mut reader = scheme.begin_reader();
        m.bench(
            format!("reads_during_active_maintenance/{}_read", scheme.name()),
            || {
                k = (k + 7) % KEYS;
                reader.read(k).unwrap()
            },
        );
        reader.finish();
        writer.abort().unwrap();
    }

    // S2PL: the read blocks until timeout — measure the abort latency with a
    // deliberately small timeout so the bench finishes.
    let s2 = S2plStore::populate(KEYS, Duration::from_micros(200)).unwrap();
    let mut writer = s2.begin_writer();
    for k in 0..KEYS {
        writer.update(k, 1).unwrap();
    }
    let mut k = 0u64;
    m.bench("S2PL_read_aborts_during_maintenance", || {
        k = (k + 7) % KEYS;
        let mut reader = s2.begin_reader();
        let err = reader.read(k).unwrap_err();
        reader.finish();
        err
    });
    writer.commit().unwrap();
}

fn bench_session_begin_cost(m: &mut Micro) {
    // 2VNL session begin/end: one Version-relation read, no locks.
    let vnl = VnlStore::populate(KEYS, 2).unwrap();
    m.bench("2VNL_session_begin_finish", || {
        let r = vnl.begin_reader();
        r.finish();
    });
}

fn main() {
    let mut m = Micro::new();
    bench_read_during_maintenance(&mut m);
    bench_session_begin_cost(&mut m);
    m.finish();
}
