//! E15 — §4.1 claims the rewrite overhead for readers is "small".
//!
//! Measures the Example 2.1 roll-up query three ways over the same data:
//! a plain (non-versioned) table, a 2VNL table via the SQL rewrite path,
//! and a 2VNL table via programmatic extraction.

use std::sync::Arc;
use wh_bench::micro::Micro;
use wh_sql::{exec::execute_select, parse_statement, Params, Statement};
use wh_storage::{IoStats, Table};
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, Value};
use wh_vnl::VnlTable;

const TUPLES: usize = 2_000;

fn rows() -> Vec<Row> {
    // Mixed-radix digits keep the (city, product_line, date) key unique for
    // up to 40 * 8 * 28 = 8,960 tuples.
    (0..TUPLES)
        .map(|i| {
            vec![
                Value::from(format!("city{:03}", i % 40)),
                Value::from("CA"),
                Value::from(format!("pl{}", (i / 40) % 8)),
                Value::from(Date::ymd(1996, 10, 1).plus_days((i / 320 % 28) as u32)),
                Value::from((i * 13 % 997) as i64),
            ]
        })
        .collect()
}

const QUERY: &str = "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state";

fn bench_reader(m: &mut Micro) {
    // Plain table baseline.
    let plain =
        Table::create("DailySales", daily_sales_schema(), Arc::new(IoStats::new())).unwrap();
    for r in rows() {
        plain.insert(&r).unwrap();
    }
    let Statement::Select(stmt) = parse_statement(QUERY).unwrap() else {
        unreachable!()
    };
    m.bench("reader_rollup_query/plain_table", || {
        execute_select(&plain, &stmt, &Params::new()).unwrap()
    });

    // 2VNL table, half the tuples updated by a later maintenance txn so the
    // CASE expressions actually discriminate.
    let vnl = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    vnl.load_initial(&rows()).unwrap();
    let txn = vnl.begin_maintenance().unwrap();
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = total_sales + 1 WHERE product_line = 'pl0'",
        &Params::new(),
    )
    .unwrap();
    txn.commit().unwrap();
    let session = vnl.begin_session();
    m.bench("reader_rollup_query/vnl_rewritten_sql", || {
        session.query_via_rewrite(QUERY).unwrap()
    });
    m.bench("reader_rollup_query/vnl_extraction", || {
        session.query(QUERY).unwrap()
    });
    session.finish();
}

/// Ablation: the generalized nVNL rewrite's CASE chains grow with n (§5's
/// run-time cost claim). Same data, same query, n ∈ {2, 3, 4}.
fn bench_nvnl_ablation(m: &mut Micro) {
    for n in [2usize, 3, 4] {
        let vnl = VnlTable::create_named("DailySales", daily_sales_schema(), n).unwrap();
        vnl.load_initial(&rows()).unwrap();
        // Touch every tuple once per extra version so the slots are full.
        for round in 0..(n - 1) as i64 {
            let txn = vnl.begin_maintenance().unwrap();
            txn.execute_sql(
                &format!("UPDATE DailySales SET total_sales = total_sales + {round}"),
                &Params::new(),
            )
            .unwrap();
            txn.commit().unwrap();
        }
        let session = vnl.begin_session();
        m.bench(format!("rewrite_cost_vs_n/n{n}_rewritten"), || {
            session.query_via_rewrite(QUERY).unwrap()
        });
        m.bench(format!("rewrite_cost_vs_n/n{n}_extraction"), || {
            session.query(QUERY).unwrap()
        });
        session.finish();
    }
}

/// §4.3: index-assisted point reads vs full-scan filtering inside a session.
fn bench_index_vs_scan(m: &mut Micro) {
    let vnl = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    vnl.load_initial(&rows()).unwrap();
    vnl.create_index("by_city", &["city"]).unwrap();
    let session = vnl.begin_session();
    let key = [Value::from("city007")];
    m.bench("session_point_lookup/via_index", || {
        session.lookup_eq("by_city", &key).unwrap()
    });
    m.bench("session_point_lookup/via_scan", || {
        let rows: Vec<_> = session
            .scan()
            .unwrap()
            .into_iter()
            .filter(|r| r[0] == key[0])
            .collect();
        rows
    });
    session.finish();
}

fn main() {
    let mut m = Micro::new();
    bench_reader(&mut m);
    bench_nvnl_ablation(&mut m);
    bench_index_vs_scan(&mut m);
    m.finish();
}
