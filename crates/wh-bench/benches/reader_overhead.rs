//! E15 — §4.1 claims the rewrite overhead for readers is "small".
//!
//! Measures the Example 2.1 roll-up query three ways over the same data:
//! a plain (non-versioned) table, a 2VNL table via the SQL rewrite path,
//! and a 2VNL table via programmatic extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use wh_sql::{exec::execute_select, parse_statement, Params, Statement};
use wh_storage::{IoStats, Table};
use wh_types::schema::daily_sales_schema;
use wh_types::{Date, Row, Value};
use wh_vnl::VnlTable;

const TUPLES: usize = 2_000;

fn rows() -> Vec<Row> {
    // Mixed-radix digits keep the (city, product_line, date) key unique for
    // up to 40 * 8 * 28 = 8,960 tuples.
    (0..TUPLES)
        .map(|i| {
            vec![
                Value::from(format!("city{:03}", i % 40)),
                Value::from("CA"),
                Value::from(format!("pl{}", (i / 40) % 8)),
                Value::from(Date::ymd(1996, 10, 1).plus_days((i / 320 % 28) as u32)),
                Value::from((i * 13 % 997) as i64),
            ]
        })
        .collect()
}

const QUERY: &str =
    "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state";

fn bench_reader(c: &mut Criterion) {
    let mut group = c.benchmark_group("reader_rollup_query");

    // Plain table baseline.
    let plain = Table::create("DailySales", daily_sales_schema(), Arc::new(IoStats::new()))
        .unwrap();
    for r in rows() {
        plain.insert(&r).unwrap();
    }
    let Statement::Select(stmt) = parse_statement(QUERY).unwrap() else {
        unreachable!()
    };
    group.bench_function("plain_table", |b| {
        b.iter(|| black_box(execute_select(&plain, &stmt, &Params::new()).unwrap()))
    });

    // 2VNL table, half the tuples updated by a later maintenance txn so the
    // CASE expressions actually discriminate.
    let vnl = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    vnl.load_initial(&rows()).unwrap();
    let txn = vnl.begin_maintenance().unwrap();
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = total_sales + 1 WHERE product_line = 'pl0'",
        &Params::new(),
    )
    .unwrap();
    txn.commit().unwrap();
    let session = vnl.begin_session();
    group.bench_function("vnl_rewritten_sql", |b| {
        b.iter(|| black_box(session.query_via_rewrite(QUERY).unwrap()))
    });
    group.bench_function("vnl_extraction", |b| {
        b.iter(|| black_box(session.query(QUERY).unwrap()))
    });
    session.finish();
    group.finish();
}

/// Ablation: the generalized nVNL rewrite's CASE chains grow with n (§5's
/// run-time cost claim). Same data, same query, n ∈ {2, 3, 4}.
fn bench_nvnl_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_cost_vs_n");
    for n in [2usize, 3, 4] {
        let vnl = VnlTable::create_named("DailySales", daily_sales_schema(), n).unwrap();
        vnl.load_initial(&rows()).unwrap();
        // Touch every tuple once per extra version so the slots are full.
        for round in 0..(n - 1) as i64 {
            let txn = vnl.begin_maintenance().unwrap();
            txn.execute_sql(
                &format!("UPDATE DailySales SET total_sales = total_sales + {round}"),
                &Params::new(),
            )
            .unwrap();
            txn.commit().unwrap();
        }
        let session = vnl.begin_session();
        group.bench_function(format!("n{n}_rewritten"), |b| {
            b.iter(|| black_box(session.query_via_rewrite(QUERY).unwrap()))
        });
        group.bench_function(format!("n{n}_extraction"), |b| {
            b.iter(|| black_box(session.query(QUERY).unwrap()))
        });
        session.finish();
    }
    group.finish();
}

/// §4.3: index-assisted point reads vs full-scan filtering inside a session.
fn bench_index_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_point_lookup");
    let vnl = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    vnl.load_initial(&rows()).unwrap();
    vnl.create_index("by_city", &["city"]).unwrap();
    let session = vnl.begin_session();
    let key = [Value::from("city007")];
    group.bench_function("via_index", |b| {
        b.iter(|| black_box(session.lookup_eq("by_city", &key).unwrap()))
    });
    group.bench_function("via_scan", |b| {
        b.iter(|| {
            let rows: Vec<_> = session
                .scan()
                .unwrap()
                .into_iter()
                .filter(|r| r[0] == key[0])
                .collect();
            black_box(rows)
        })
    });
    session.finish();
    group.finish();
}

criterion_group!(benches, bench_reader, bench_nvnl_ablation, bench_index_vs_scan);
criterion_main!(benches);
