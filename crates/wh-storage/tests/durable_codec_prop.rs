//! Property tests for the on-disk page codec: every `Value` type must
//! survive serialize → flush → evict → fault-in → deserialize unchanged,
//! both within one process (buffer-pool reload) and across a simulated
//! restart (checkpoint + reopen). A final test pins the batch gather path
//! to the scalar byte path on pages that went through an evict/reload
//! cycle, so the two scan kernels cannot drift on disk-resident data.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wh_storage::{FieldSpec, HeapFile, IoStats, Table, VersionMeta};
use wh_types::schema::{Column, DataType, Schema};
use wh_types::{Date, Row, SplitMix64, Value};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — unique-name counter only
    let dir = std::env::temp_dir().join(format!("wh-codec-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One column of every storable [`DataType`].
fn all_types_schema() -> Schema {
    Schema::new(vec![
        Column::new("tiny", DataType::UInt8),
        Column::new("i32", DataType::Int32),
        Column::new("i64", DataType::Int64),
        Column::updatable("f64", DataType::Float64),
        Column::new("name", DataType::Char(12)),
        Column::new("day", DataType::Date),
    ])
    .unwrap()
}

/// Edge-case rows: numeric extremes, empty / full-width / shared-`Arc`
/// strings, float specials that must round-trip bit-exactly, and NULL in
/// every column position (the null bitmap is part of the stored image, so
/// a disk round-trip must preserve each bit).
fn edge_rows() -> Vec<Row> {
    let interned: Arc<str> = Arc::from("interned");
    let mut rows = vec![
        vec![
            Value::Int(0),
            Value::Int(i32::MIN as i64),
            Value::Int(i64::MIN),
            Value::Float(f64::MIN_POSITIVE),
            Value::Str(Arc::clone(&interned)),
            Value::Date(Date::ymd(1996, 10, 14)),
        ],
        vec![
            Value::Int(255),
            Value::Int(i32::MAX as i64),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::from(""),
            Value::Date(Date::ymd(2026, 8, 8)),
        ],
        vec![
            Value::Int(7),
            Value::Int(-1),
            Value::Int(1 << 40),
            Value::Float(f64::MAX),
            Value::from("twelve chars"),
            Value::Date(Date::ymd(2000, 2, 29)),
        ],
        // The same Arc<str> appears in two rows: on disk they are
        // independent images, and both must decode to the same text.
        vec![
            Value::Int(1),
            Value::Int(0),
            Value::Int(0),
            Value::Float(1.5),
            Value::Str(interned),
            Value::Date(Date::ymd(1999, 12, 31)),
        ],
    ];
    // NULL in each single column, then all-NULL.
    for i in 0..6 {
        let mut row = rows[0].clone();
        row[i] = Value::Null;
        rows.push(row);
    }
    rows.push(vec![Value::Null; 6]);
    rows
}

#[test]
fn every_value_type_survives_evict_reload_and_restart() {
    let dir = temp_dir("types");
    let table = Table::create_backed(
        "AllTypes",
        all_types_schema(),
        &dir,
        4,
        Arc::new(IoStats::new()),
    )
    .unwrap();
    let rows = edge_rows();
    let rids: Vec<_> = rows.iter().map(|r| table.insert(r).unwrap()).collect();

    // Within-process cycle: flush, drop every resident page, fault back in.
    table.heap().flush_all().unwrap();
    table.heap().evict_all().unwrap();
    for (rid, expected) in rids.iter().zip(&rows) {
        assert_eq!(&table.read(*rid).unwrap(), expected, "after evict/reload");
    }

    // Simulated restart: checkpoint, drop all in-memory state, reopen.
    table
        .heap()
        .checkpoint(VersionMeta {
            current_vn: 1,
            maintenance_active: false,
            recovery_floor: 1,
            gc_horizon: 1,
        })
        .unwrap();
    drop(table);
    let reopened = Table::open_backed(
        "AllTypes",
        all_types_schema(),
        &dir,
        4,
        Arc::new(IoStats::new()),
    )
    .unwrap();
    for (rid, expected) in rids.iter().zip(&rows) {
        assert_eq!(&reopened.read(*rid).unwrap(), expected, "after restart");
    }
    assert_eq!(reopened.len(), rows.len() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

fn random_value(rng: &mut SplitMix64, ty: DataType) -> Value {
    if rng.next_below(8) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::UInt8 => Value::Int(rng.range_inclusive_u64(0, 255) as i64),
        DataType::Int32 => Value::Int(rng.next_u64() as i32 as i64),
        DataType::Int64 => Value::Int(rng.next_u64() as i64),
        DataType::Float64 => Value::Float(rng.next_u64() as i64 as f64 / 128.0),
        DataType::Char(n) => {
            let len = rng.range_inclusive_u64(0, n as u64) as usize;
            let s: String = (0..len)
                .map(|_| (b'a' + rng.next_below(26) as u8) as char)
                .collect();
            Value::from(s.as_str())
        }
        DataType::Date => Value::Date(Date::ymd(
            1990 + rng.next_below(40) as u16,
            1 + rng.next_below(12) as u8,
            1 + rng.next_below(28) as u8,
        )),
    }
}

#[test]
fn random_rows_survive_eviction_pressure_and_restart() {
    let mut rng = SplitMix64::seed_from_u64(0xD15C_C0DE);
    for round in 0..8 {
        let dir = temp_dir("rand");
        let schema = all_types_schema();
        let types: Vec<DataType> = schema.columns().iter().map(|c| c.ty).collect();
        // Capacity 2 keeps the pool under constant eviction pressure, so
        // most reads below fault pages back in from disk.
        let table = Table::create_backed("Rand", schema.clone(), &dir, 2, Arc::new(IoStats::new()))
            .unwrap();
        let n = rng.range_inclusive_u64(20, 200);
        let mut model = Vec::new();
        for _ in 0..n {
            let row: Row = types.iter().map(|&ty| random_value(&mut rng, ty)).collect();
            let rid = table.insert(&row).unwrap();
            model.push((rid, row));
        }
        table.heap().flush_all().unwrap();
        table.heap().evict_all().unwrap();
        for (rid, expected) in &model {
            assert_eq!(&table.read(*rid).unwrap(), expected, "round {round}");
        }
        table
            .heap()
            .checkpoint(VersionMeta {
                current_vn: 1,
                maintenance_active: false,
                recovery_floor: 1,
                gc_horizon: 1,
            })
            .unwrap();
        drop(table);
        let reopened =
            Table::open_backed("Rand", schema, &dir, 2, Arc::new(IoStats::new())).unwrap();
        for (rid, expected) in &model {
            assert_eq!(
                &reopened.read(*rid).unwrap(),
                expected,
                "round {round} after restart"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Batch gather ≡ scalar byte scan on pages that went to disk and came
/// back. Records mimic the 2VNL layout the batch path exists for: a null
/// bitmap byte, a u8 operation flag, and an i64 version number.
#[test]
fn batch_scan_matches_byte_scan_after_evict_reload() {
    let dir = temp_dir("batch");
    let record_len = 10usize;
    let heap = HeapFile::create_backed(record_len, &dir, 2, Arc::new(IoStats::new())).unwrap();
    let mut rng = SplitMix64::seed_from_u64(0xBA7C_5CA9);
    for _ in 0..500 {
        let mut rec = vec![0u8; record_len];
        // Bit 1 marks the i64 field NULL in ~1/8 of records.
        rec[0] = if rng.next_below(8) == 0 { 0b10 } else { 0 };
        rec[1] = rng.next_u64() as u8;
        rec[2..10].copy_from_slice(&(rng.next_u64() as i64).to_le_bytes());
        heap.insert(&rec).unwrap();
    }
    heap.flush_all().unwrap();
    heap.evict_all().unwrap();

    // Scalar path: decode both fields straight from the record bytes.
    let mut scalar: Vec<(u32, u16, i64, i64)> = Vec::new();
    heap.scan(|rid, rec| {
        let flag = i64::from(rec[1]);
        let vn = if rec[0] & 0b10 != 0 {
            wh_storage::NULL_SENTINEL
        } else {
            i64::from_le_bytes(rec[2..10].try_into().unwrap())
        };
        scalar.push((rid.page, rid.slot, flag, vn));
        Ok(())
    })
    .unwrap();

    // Batch path over the same (evicted, reloaded) pages.
    let specs = [
        FieldSpec {
            offset: 1,
            width: 1,
            null_byte: 0,
            null_mask: 0b01,
        },
        FieldSpec {
            offset: 2,
            width: 8,
            null_byte: 0,
            null_mask: 0b10,
        },
    ];
    let mut batched: Vec<(u32, u16, i64, i64)> = Vec::new();
    heap.scan_batches(0..heap.page_count(), &specs, |batch| {
        for i in 0..batch.len() {
            batched.push((
                batch.page_no(),
                batch.slots()[i],
                batch.field(0)[i],
                batch.field(1)[i],
            ));
        }
        Ok(())
    })
    .unwrap();

    scalar.sort_unstable();
    batched.sort_unstable();
    assert_eq!(scalar, batched);
    assert_eq!(scalar.len(), 500);
    std::fs::remove_dir_all(&dir).ok();
}
