//! Model check for the heap file: an arbitrary interleaving of
//! insert / update-in-place / delete must match a HashMap reference model,
//! with stable RIDs and exact slot reuse accounting. Interleavings are
//! generated with the deterministic [`SplitMix64`] generator.

use std::collections::HashMap;
use std::sync::Arc;
use wh_storage::{HeapFile, IoStats, Rid};
use wh_types::SplitMix64;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    /// Update the i-th live record (mod live count).
    Update(usize, u8),
    /// Delete the i-th live record (mod live count).
    Delete(usize),
}

fn random_ops(rng: &mut SplitMix64) -> Vec<Op> {
    let len = rng.range_inclusive_u64(1, 199) as usize;
    (0..len)
        .map(|_| match rng.next_below(3) {
            0 => Op::Insert(rng.next_u64() as u8),
            1 => Op::Update(rng.next_u64() as usize, rng.next_u64() as u8),
            _ => Op::Delete(rng.next_u64() as usize),
        })
        .collect()
}

#[test]
fn heap_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x4EA9_0001);
    for _ in 0..128 {
        let ops = random_ops(&mut rng);
        // Small records force multi-page behaviour quickly.
        let heap = HeapFile::new(512, Arc::new(IoStats::new())).unwrap();
        let mut model: HashMap<Rid, u8> = HashMap::new();
        let mut live: Vec<Rid> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    let rid = heap.insert(&[v; 512]).unwrap();
                    assert!(!model.contains_key(&rid), "RID reused while live");
                    model.insert(rid, v);
                    live.push(rid);
                }
                Op::Update(i, v) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rid = live[i % live.len()];
                    heap.update_in_place(rid, &[v; 512]).unwrap();
                    model.insert(rid, v);
                }
                Op::Delete(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let rid = live.swap_remove(i % live.len());
                    heap.delete(rid).unwrap();
                    model.remove(&rid);
                    // Further access must fail.
                    assert!(heap.read(rid).is_err());
                }
            }
        }
        // Full agreement with the model.
        assert_eq!(heap.len(), model.len() as u64);
        let mut seen = 0;
        heap.scan(|rid, rec| {
            assert_eq!(model.get(&rid), Some(&rec[0]), "wrong content at {rid}");
            assert!(rec.iter().all(|&b| b == rec[0]), "torn record");
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, model.len());
        // Point reads agree too.
        for (rid, v) in &model {
            assert_eq!(heap.read(*rid).unwrap()[0], *v);
        }
        // Page accounting: capacity 8 records/page; pages never exceed need.
        assert!(heap.page_count() as usize * 8 >= model.len());
    }
}
