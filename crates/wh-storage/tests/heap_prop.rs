//! Model check for the heap file: an arbitrary interleaving of
//! insert / update-in-place / delete must match a HashMap reference model,
//! with stable RIDs and exact slot reuse accounting.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wh_storage::{HeapFile, IoStats, Rid};

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    /// Update the i-th live record (mod live count).
    Update(usize, u8),
    /// Delete the i-th live record (mod live count).
    Delete(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Insert),
            (any::<usize>(), any::<u8>()).prop_map(|(i, v)| Op::Update(i, v)),
            any::<usize>().prop_map(Op::Delete),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_matches_model(ops in arb_ops()) {
        // Small records force multi-page behaviour quickly.
        let heap = HeapFile::new(512, Arc::new(IoStats::new())).unwrap();
        let mut model: HashMap<Rid, u8> = HashMap::new();
        let mut live: Vec<Rid> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    let rid = heap.insert(&[v; 512]).unwrap();
                    prop_assert!(!model.contains_key(&rid), "RID reused while live");
                    model.insert(rid, v);
                    live.push(rid);
                }
                Op::Update(i, v) => {
                    if live.is_empty() { continue; }
                    let rid = live[i % live.len()];
                    heap.update_in_place(rid, &[v; 512]).unwrap();
                    model.insert(rid, v);
                }
                Op::Delete(i) => {
                    if live.is_empty() { continue; }
                    let rid = live.swap_remove(i % live.len());
                    heap.delete(rid).unwrap();
                    model.remove(&rid);
                    // Further access must fail.
                    prop_assert!(heap.read(rid).is_err());
                }
            }
        }
        // Full agreement with the model.
        prop_assert_eq!(heap.len(), model.len() as u64);
        let mut seen = 0;
        heap.scan(|rid, rec| {
            assert_eq!(model.get(&rid), Some(&rec[0]), "wrong content at {rid}");
            assert!(rec.iter().all(|&b| b == rec[0]), "torn record");
            seen += 1;
            Ok(())
        }).unwrap();
        prop_assert_eq!(seen, model.len());
        // Point reads agree too.
        for (rid, v) in &model {
            prop_assert_eq!(heap.read(*rid).unwrap()[0], *v);
        }
        // Page accounting: capacity 8 records/page; pages never exceed need.
        let min_pages = model.len().div_ceil(8).max(heap.page_count() as usize / 8);
        prop_assert!(heap.page_count() as usize * 8 >= model.len());
        let _ = min_pages;
    }
}
