//! Storage-layer errors.

use std::fmt;
use wh_types::TypeError;

/// Errors raised by the heap-storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A RID referenced a page that does not exist.
    NoSuchPage(u32),
    /// A RID referenced an empty or out-of-range slot.
    NoSuchSlot {
        /// Page number.
        page: u32,
        /// Slot number.
        slot: u16,
    },
    /// An in-place update supplied a record of the wrong length. In-place
    /// updates must preserve record width (paper §4, second DBMS property).
    RecordLength {
        /// Width of records in this file.
        expected: usize,
        /// Width supplied.
        got: usize,
    },
    /// A record wider than a page was supplied.
    RecordTooLarge(usize),
    /// A data-model error bubbled up from row encoding/decoding.
    Type(TypeError),
    /// A scan visitor requested early termination. Carries no storage
    /// meaning of its own: higher layers return it from a visitor to stop a
    /// scan, stash their real error on the side, and translate on the way
    /// out. It should never escape to end users.
    ScanAborted,
    /// An armed failpoint injected a fault at the named site (fault-injection
    /// testing only; sites compile in under the `failpoints` feature).
    FaultInjected(&'static str),
    /// An operating-system I/O error from the durability tier. Carries the
    /// rendered message because `std::io::Error` is neither `Clone` nor `Eq`.
    Io(String),
    /// On-disk bytes failed validation (bad magic, checksum mismatch, header
    /// inconsistency, truncated region). Shadow-paired page blocks mean a
    /// *torn* write never surfaces as this — both copies corrupt does.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchPage(p) => write!(f, "no such page: {p}"),
            StorageError::NoSuchSlot { page, slot } => {
                write!(f, "no record at page {page} slot {slot}")
            }
            StorageError::RecordLength { expected, got } => {
                write!(
                    f,
                    "in-place update must preserve width: expected {expected} bytes, got {got}"
                )
            }
            StorageError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page size"),
            StorageError::Type(e) => write!(f, "{e}"),
            StorageError::ScanAborted => write!(f, "scan aborted by visitor"),
            StorageError::FaultInjected(point) => {
                write!(f, "injected fault at failpoint '{point}'")
            }
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "on-disk corruption: {msg}"),
        }
    }
}

impl StorageError {
    /// Render an OS error into the `Clone + Eq` world of [`StorageError`].
    pub(crate) fn io(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

impl std::error::Error for StorageError {}

impl From<TypeError> for StorageError {
    fn from(e: TypeError) -> Self {
        StorageError::Type(e)
    }
}

impl From<wh_types::fault::FaultError> for StorageError {
    fn from(e: wh_types::fault::FaultError) -> Self {
        StorageError::FaultInjected(e.point)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
