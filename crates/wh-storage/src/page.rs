//! Fixed-slot pages and record identifiers.

use crate::error::{StorageError, StorageResult};

/// Page payload size in bytes. Records never span pages.
pub const PAGE_SIZE: usize = 4096;

/// Record identifier: page number plus slot within the page. Because updates
/// are performed in place (paper §4), a tuple's RID is stable for its entire
/// physical lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page number within the heap file.
    pub page: u32,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a RID.
    pub fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// Occupancy state of one slot.
///
/// `Retired` is the epoch-reclamation limbo: the record has been unlinked
/// from every index and is invisible to readers and scans, but the slot is
/// not reusable until the GC's grace period elapses — a reader that
/// resolved this slot's rid before the retire may still dereference it, and
/// must find the *old* bytes, never a reused record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Free,
    Live,
    Retired,
}

/// A page of fixed-width record slots.
///
/// All records in a heap file share one width, so a page is a byte array of
/// `capacity` slots plus a per-slot state array. The page itself carries no
/// latch — the heap file wraps each page in an `RwLock`, which plays the
/// role of the paper's short-duration latch.
#[derive(Debug)]
pub struct Page {
    record_len: usize,
    capacity: u16,
    state: Vec<SlotState>,
    live: u16,
    retired: u16,
    data: Box<[u8]>,
}

impl Page {
    /// Create an empty page for records of `record_len` bytes.
    pub fn new(record_len: usize) -> StorageResult<Self> {
        if record_len == 0 || record_len > PAGE_SIZE {
            return Err(StorageError::RecordTooLarge(record_len));
        }
        let capacity = (PAGE_SIZE / record_len) as u16;
        Ok(Page {
            record_len,
            capacity,
            state: vec![SlotState::Free; capacity as usize],
            live: 0,
            retired: 0,
            data: vec![0u8; capacity as usize * record_len].into_boxed_slice(),
        })
    }

    /// Slots per page for this record width.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// Occupied slots.
    pub fn live(&self) -> u16 {
        self.live
    }

    /// Slots retired but not yet released (waiting out a GC grace period).
    pub fn retired(&self) -> u16 {
        self.retired
    }

    /// Whether the page has a free slot. Retired slots are *not* free —
    /// they hold their old bytes until released.
    pub fn has_room(&self) -> bool {
        self.live + self.retired < self.capacity
    }

    /// Record width this page stores.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    fn check_record(&self, record: &[u8]) -> StorageResult<()> {
        if record.len() != self.record_len {
            return Err(StorageError::RecordLength {
                expected: self.record_len,
                got: record.len(),
            });
        }
        Ok(())
    }

    fn slot_range(&self, slot: u16) -> std::ops::Range<usize> {
        let start = slot as usize * self.record_len;
        start..start + self.record_len
    }

    /// Insert into the first free slot; returns the slot number, or `None`
    /// when the page is full.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<Option<u16>> {
        self.check_record(record)?;
        let Some(slot) = self.state.iter().position(|&s| s == SlotState::Free) else {
            return Ok(None);
        };
        let slot = slot as u16;
        let range = self.slot_range(slot);
        self.data[range].copy_from_slice(record);
        self.state[slot as usize] = SlotState::Live;
        self.live += 1;
        Ok(Some(slot))
    }

    /// Read the record in `slot`. Retired slots read as gone (`NoSuchSlot`)
    /// — which is sound for a reader holding a pre-retire rid, because a
    /// retired record was GC-eligible and therefore invisible at every
    /// live session's version anyway. What the retired state *prevents* is
    /// the slot being reused before the grace period, which would make
    /// this read return a different tuple's bytes for the old rid.
    pub fn read(&self, page_no: u32, slot: u16) -> StorageResult<&[u8]> {
        if slot >= self.capacity || self.state[slot as usize] != SlotState::Live {
            return Err(StorageError::NoSuchSlot {
                page: page_no,
                slot,
            });
        }
        Ok(&self.data[self.slot_range(slot)])
    }

    /// Overwrite the record in `slot` **in place**. The replacement must have
    /// the same width — the invariant 2VNL's rewrite approach depends on.
    pub fn update_in_place(&mut self, page_no: u32, slot: u16, record: &[u8]) -> StorageResult<()> {
        self.check_record(record)?;
        if slot >= self.capacity || self.state[slot as usize] != SlotState::Live {
            return Err(StorageError::NoSuchSlot {
                page: page_no,
                slot,
            });
        }
        let range = self.slot_range(slot);
        self.data[range].copy_from_slice(record);
        Ok(())
    }

    /// Free the record in `slot` (immediate physical delete, no grace
    /// period — for callers that know no concurrent reader holds the rid).
    pub fn delete(&mut self, page_no: u32, slot: u16) -> StorageResult<()> {
        if slot >= self.capacity || self.state[slot as usize] != SlotState::Live {
            return Err(StorageError::NoSuchSlot {
                page: page_no,
                slot,
            });
        }
        self.state[slot as usize] = SlotState::Free;
        self.live -= 1;
        Ok(())
    }

    /// Retire the record in `slot`: make it invisible to reads and scans
    /// but keep the slot unavailable for reuse until [`Page::release`].
    pub fn retire(&mut self, page_no: u32, slot: u16) -> StorageResult<()> {
        if slot >= self.capacity || self.state[slot as usize] != SlotState::Live {
            return Err(StorageError::NoSuchSlot {
                page: page_no,
                slot,
            });
        }
        self.state[slot as usize] = SlotState::Retired;
        self.live -= 1;
        self.retired += 1;
        Ok(())
    }

    /// Release a retired slot for reuse — only after the GC's epoch grace
    /// period has elapsed.
    pub fn release(&mut self, page_no: u32, slot: u16) -> StorageResult<()> {
        if slot >= self.capacity || self.state[slot as usize] != SlotState::Retired {
            return Err(StorageError::NoSuchSlot {
                page: page_no,
                slot,
            });
        }
        self.state[slot as usize] = SlotState::Free;
        self.retired -= 1;
        Ok(())
    }

    /// Iterate over `(slot, record)` pairs of live slots.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == SlotState::Live)
            .map(move |(i, _)| (i as u16, &self.data[self.slot_range(i as u16)]))
    }

    /// Raw record bytes of the whole page, in slot order — the disk codec's
    /// data region. Free/retired slots contribute their stale bytes; the
    /// packed state map decides what is live on reload.
    pub(crate) fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Pack the per-slot states two bits each (`00` free, `01` live, `10`
    /// retired), slot `i` at byte `i / 4`, bits `(i % 4) * 2` — the disk
    /// codec's state region.
    pub(crate) fn pack_states(&self) -> Vec<u8> {
        let mut out = vec![0u8; (self.capacity as usize).div_ceil(4)];
        for (i, &s) in self.state.iter().enumerate() {
            let bits = match s {
                SlotState::Free => 0u8,
                SlotState::Live => 1,
                SlotState::Retired => 2,
            };
            out[i / 4] |= bits << ((i % 4) * 2);
        }
        out
    }

    /// Reconstruct a page from its disk-codec regions. `live`/`retired` are
    /// recomputed from the unpacked states; the caller validates them against
    /// the on-disk header as a corruption check.
    pub(crate) fn from_disk_parts(
        record_len: usize,
        packed_states: &[u8],
        data: &[u8],
    ) -> StorageResult<Self> {
        let mut page = Page::new(record_len)?;
        let expected_states = (page.capacity as usize).div_ceil(4);
        if packed_states.len() != expected_states || data.len() != page.data.len() {
            return Err(StorageError::Corrupt(format!(
                "disk page regions malformed: {} state bytes (want {expected_states}), {} data bytes (want {})",
                packed_states.len(),
                data.len(),
                page.data.len(),
            )));
        }
        for i in 0..page.capacity as usize {
            let bits = (packed_states[i / 4] >> ((i % 4) * 2)) & 0b11;
            page.state[i] = match bits {
                0 => SlotState::Free,
                1 => {
                    page.live += 1;
                    SlotState::Live
                }
                2 => {
                    page.retired += 1;
                    SlotState::Retired
                }
                _ => {
                    return Err(StorageError::Corrupt(format!(
                        "disk page slot {i} has invalid state bits {bits:#b}"
                    )))
                }
            };
        }
        page.data.copy_from_slice(data);
        Ok(page)
    }

    /// Copy every live record into `batch` — the only batch-path work done
    /// under the page latch. Fully-live pages take the dense single-copy
    /// fast path.
    pub(crate) fn fill_batch(&self, page_no: u32, batch: &mut crate::batch::RecordBatch) {
        batch.begin(page_no, self.record_len, self.live as usize);
        if self.live == self.capacity {
            batch.push_dense(self.capacity, &self.data);
        } else {
            for (slot, record) in self.iter() {
                batch.push_record(slot, record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_from_record_len() {
        let p = Page::new(43).unwrap();
        assert_eq!(p.capacity(), (4096 / 43) as u16);
        assert!(Page::new(0).is_err());
        assert!(Page::new(5000).is_err());
        assert_eq!(Page::new(4096).unwrap().capacity(), 1);
    }

    #[test]
    fn insert_read_round_trip() {
        let mut p = Page::new(4).unwrap();
        let s = p.insert(&[1, 2, 3, 4]).unwrap().unwrap();
        assert_eq!(p.read(0, s).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(p.live(), 1);
    }

    #[test]
    fn insert_fills_then_rejects() {
        let mut p = Page::new(2048).unwrap();
        assert!(p.insert(&[0u8; 2048]).unwrap().is_some());
        assert!(p.insert(&[0u8; 2048]).unwrap().is_some());
        assert_eq!(p.insert(&[0u8; 2048]).unwrap(), None);
        assert!(!p.has_room());
    }

    #[test]
    fn wrong_width_rejected() {
        let mut p = Page::new(4).unwrap();
        assert!(matches!(
            p.insert(&[1, 2, 3]),
            Err(StorageError::RecordLength {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn update_in_place_preserves_slot() {
        let mut p = Page::new(4).unwrap();
        let s = p.insert(&[1, 1, 1, 1]).unwrap().unwrap();
        p.update_in_place(0, s, &[2, 2, 2, 2]).unwrap();
        assert_eq!(p.read(0, s).unwrap(), &[2, 2, 2, 2]);
        assert!(p.update_in_place(0, s, &[9, 9]).is_err());
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = Page::new(4).unwrap();
        let a = p.insert(&[1, 1, 1, 1]).unwrap().unwrap();
        let _b = p.insert(&[2, 2, 2, 2]).unwrap().unwrap();
        p.delete(0, a).unwrap();
        assert!(p.read(0, a).is_err());
        let c = p.insert(&[3, 3, 3, 3]).unwrap().unwrap();
        assert_eq!(c, a); // first-fit reuse
    }

    #[test]
    fn double_delete_errors() {
        let mut p = Page::new(4).unwrap();
        let s = p.insert(&[0u8; 4]).unwrap().unwrap();
        p.delete(0, s).unwrap();
        assert!(matches!(
            p.delete(0, s),
            Err(StorageError::NoSuchSlot { .. })
        ));
    }

    #[test]
    fn retired_slot_is_invisible_but_not_reusable() {
        let mut p = Page::new(4).unwrap();
        let a = p.insert(&[1, 1, 1, 1]).unwrap().unwrap();
        p.retire(0, a).unwrap();
        assert_eq!((p.live(), p.retired()), (0, 1));
        assert!(p.read(0, a).is_err(), "retired reads as gone");
        assert!(p.iter().next().is_none(), "retired excluded from scans");
        let b = p.insert(&[2, 2, 2, 2]).unwrap().unwrap();
        assert_ne!(b, a, "retired slot must not be reused");
        assert!(p.retire(0, a).is_err(), "double retire");
        p.release(0, a).unwrap();
        assert_eq!(p.retired(), 0);
        assert!(p.release(0, a).is_err(), "double release");
        let c = p.insert(&[3, 3, 3, 3]).unwrap().unwrap();
        assert_eq!(c, a, "released slot is first-fit reusable");
    }

    #[test]
    fn retired_slots_count_against_room() {
        let mut p = Page::new(2048).unwrap();
        let a = p.insert(&[1u8; 2048]).unwrap().unwrap();
        p.insert(&[2u8; 2048]).unwrap().unwrap();
        p.retire(0, a).unwrap();
        assert!(!p.has_room(), "a retired slot is not room");
        assert_eq!(p.insert(&[3u8; 2048]).unwrap(), None);
        p.release(0, a).unwrap();
        assert!(p.has_room());
        assert!(p.insert(&[3u8; 2048]).unwrap().is_some());
    }

    #[test]
    fn fill_batch_copies_live_records() {
        let mut p = Page::new(4).unwrap();
        let a = p.insert(&[1, 0, 0, 0]).unwrap().unwrap();
        let b = p.insert(&[2, 0, 0, 0]).unwrap().unwrap();
        p.insert(&[3, 0, 0, 0]).unwrap().unwrap();
        p.delete(0, a).unwrap();
        p.retire(0, b).unwrap();
        let mut batch = crate::batch::RecordBatch::default();
        p.fill_batch(9, &mut batch);
        assert_eq!(batch.page_no(), 9);
        assert_eq!(batch.slots(), &[2]);
        assert_eq!(batch.record(0), &[3, 0, 0, 0]);
    }

    #[test]
    fn fill_batch_dense_page_fast_path() {
        let mut p = Page::new(1024).unwrap();
        for i in 0..4u8 {
            p.insert(&[i; 1024]).unwrap().unwrap();
        }
        assert_eq!(p.live(), p.capacity());
        let mut batch = crate::batch::RecordBatch::default();
        p.fill_batch(0, &mut batch);
        assert_eq!(batch.slots(), &[0, 1, 2, 3]);
        for i in 0..4usize {
            assert!(batch.record(i).iter().all(|&x| x == i as u8));
        }
    }

    #[test]
    fn iter_yields_occupied_only() {
        let mut p = Page::new(4).unwrap();
        let a = p.insert(&[1, 0, 0, 0]).unwrap().unwrap();
        let b = p.insert(&[2, 0, 0, 0]).unwrap().unwrap();
        p.delete(0, a).unwrap();
        let got: Vec<_> = p.iter().map(|(s, r)| (s, r[0])).collect();
        assert_eq!(got, vec![(b, 2)]);
    }
}
