//! File-backed page store: a stable on-disk codec for the slotted-page
//! layout, with checksummed headers and **shadow-paired blocks** as the
//! torn-write defense.
//!
//! The durability tier deliberately carries *no* write-ahead log — §7 of the
//! paper shows the tuple version slots alone reconstruct any mid-maintenance
//! state, so the only on-disk invariant the page store must defend is that
//! every *individual page* read back is some complete page image that was
//! once written (never a half-written hybrid). Shadow pairing gives exactly
//! that: each page owns two fixed-size block slots and a monotone sequence
//! number; writes alternate slots, so a write torn by a crash damages at
//! most the newer copy and the elder complete image survives. Cross-page
//! consistency is the checkpoint/recovery layer's problem, not this file's.
//!
//! Block layout (little-endian):
//!
//! ```text
//! header  0..8   magic        "2VNLPAGE"
//!         8..12  page_no      u32
//!        12..16  record_len   u32
//!        16..18  live         u16   (validation only; recomputed on load)
//!        18..20  retired      u16   (validation only; recomputed on load)
//!        20..24  reserved     u32   (zero)
//!        24..32  seq          u64   (monotone per page; picks the winner)
//!        32..40  checksum     u64   (FNV-1a over header[0..32] ++ states ++ data)
//! states  2 bits per slot, capacity.div_ceil(4) bytes
//! data    capacity × record_len bytes
//! ```

use crate::error::{StorageError, StorageResult};
use crate::page::Page;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use wh_types::fail_point;

/// `"2VNLPAGE"` as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"2VNLPAGE");

/// Header bytes per block (see module docs for the field map).
const HEADER_LEN: usize = 40;

/// FNV-1a 64-bit over a sequence of byte regions. Hand-rolled (no external
/// hashing crates): not cryptographic, but a torn or bit-flipped block
/// failing it is exactly the detection the shadow pair needs.
pub(crate) fn fnv1a_64(regions: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for region in regions {
        for &b in *region {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A page-granular file of shadow-paired blocks, addressed by page number.
///
/// All I/O goes through positioned reads/writes (`read_at`/`write_at`), so
/// the file needs no seek state and concurrent flushes of different pages
/// never interfere.
#[derive(Debug)]
pub struct DiskFile {
    file: File,
    record_len: usize,
    /// Slots per page for this record width (fixed by `record_len`).
    capacity: usize,
    /// Bytes per block: header + packed states + data.
    block_len: usize,
}

impl DiskFile {
    fn layout(record_len: usize) -> StorageResult<(usize, usize)> {
        // Validate the width the same way `Page::new` does.
        let probe = Page::new(record_len)?;
        let capacity = probe.capacity() as usize;
        let block_len = HEADER_LEN + capacity.div_ceil(4) + capacity * record_len;
        Ok((capacity, block_len))
    }

    /// Create a new (empty, truncated) page file.
    pub fn create(path: &Path, record_len: usize) -> StorageResult<Self> {
        let (capacity, block_len) = Self::layout(record_len)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(StorageError::io)?;
        Ok(DiskFile {
            file,
            record_len,
            capacity,
            block_len,
        })
    }

    /// Open an existing page file for records of `record_len` bytes.
    pub fn open(path: &Path, record_len: usize) -> StorageResult<Self> {
        let (capacity, block_len) = Self::layout(record_len)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(StorageError::io)?;
        Ok(DiskFile {
            file,
            record_len,
            capacity,
            block_len,
        })
    }

    /// Byte stride of one page's region (both shadow blocks).
    fn stride(&self) -> u64 {
        2 * self.block_len as u64
    }

    /// Number of pages the file has ever begun writing. Recovery sizes the
    /// heap from this — **not** from checkpoint metadata — because pages
    /// allocated after the last checkpoint may have been stolen (evicted)
    /// to disk and their above-checkpoint tuples still need the §7 rollback
    /// pass to run over them.
    pub fn page_count(&self) -> StorageResult<u32> {
        let len = self.file.metadata().map_err(StorageError::io)?.len();
        Ok(len.div_ceil(self.stride()) as u32)
    }

    /// Write `page`'s image as sequence number `seq`, into the shadow slot
    /// `seq % 2`. The caller owns seq monotonicity per page (the buffer
    /// pool's frame counter); alternating slots means the previous complete
    /// image is never overwritten by the write that might tear.
    pub fn write_page(&self, page_no: u32, page: &Page, seq: u64) -> StorageResult<()> {
        // trace: real I/O — span each page write under the flush/checkpoint.
        let _ts = wh_obs::trace_span!("storage.disk.write");
        fail_point!("storage.disk.write");
        let states = page.pack_states();
        let data = page.data_bytes();
        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..12].copy_from_slice(&page_no.to_le_bytes());
        header[12..16].copy_from_slice(&(self.record_len as u32).to_le_bytes());
        header[16..18].copy_from_slice(&page.live().to_le_bytes());
        header[18..20].copy_from_slice(&page.retired().to_le_bytes());
        header[24..32].copy_from_slice(&seq.to_le_bytes());
        let checksum = fnv1a_64(&[&header[0..32], &states, data]);
        header[32..40].copy_from_slice(&checksum.to_le_bytes());

        let mut block = Vec::with_capacity(self.block_len);
        block.extend_from_slice(&header);
        block.extend_from_slice(&states);
        block.extend_from_slice(data);
        debug_assert_eq!(block.len(), self.block_len);

        let offset = u64::from(page_no) * self.stride() + (seq % 2) * self.block_len as u64;
        self.file
            .write_all_at(&block, offset)
            .map_err(StorageError::io)?;
        wh_obs::counter!("storage.disk.page_writes").inc();
        Ok(())
    }

    /// Read back page `page_no`: validate both shadow blocks and return the
    /// intact image with the highest sequence number, plus that sequence.
    ///
    /// Returns `Ok(None)` for a page that was allocated but never flushed
    /// (region beyond EOF or still all-zero) — recovery treats it as empty,
    /// which is exactly what the §7 rollback would leave: everything on an
    /// unflushed page postdates the checkpoint VN. Both blocks present but
    /// invalid is real corruption and errors.
    pub fn read_page(&self, page_no: u32) -> StorageResult<Option<(Page, u64)>> {
        // trace: real I/O — span each fault-in under the caller's span.
        let _ts = wh_obs::trace_span!("storage.disk.read");
        fail_point!("storage.disk.read");
        let base = u64::from(page_no) * self.stride();
        let mut region = vec![0u8; 2 * self.block_len];
        // Short reads past EOF leave the tail zeroed, which decodes the same
        // as a never-written block.
        let mut filled = 0usize;
        while filled < region.len() {
            let n = self
                .file
                .read_at(&mut region[filled..], base + filled as u64)
                .map_err(StorageError::io)?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        wh_obs::counter!("storage.disk.page_reads").inc();

        let mut best: Option<(Page, u64)> = None;
        let mut invalid = 0usize;
        for half in 0..2 {
            let block = &region[half * self.block_len..(half + 1) * self.block_len];
            if block.iter().all(|&b| b == 0) {
                continue; // never written
            }
            match self.decode_block(page_no, block) {
                Ok((page, seq)) => {
                    if best.as_ref().is_none_or(|(_, s)| seq > *s) {
                        best = Some((page, seq));
                    }
                }
                Err(_) => invalid += 1,
            }
        }
        if best.is_none() && invalid == 2 {
            return Err(StorageError::Corrupt(format!(
                "page {page_no}: both shadow blocks fail validation"
            )));
        }
        Ok(best)
    }

    fn decode_block(&self, page_no: u32, block: &[u8]) -> StorageResult<(Page, u64)> {
        let corrupt = |what: &str| StorageError::Corrupt(format!("page {page_no}: {what}"));
        let header = &block[..HEADER_LEN];
        let field_u64 = |r: std::ops::Range<usize>| {
            // lint: allow(no-panic) — fixed-width slice of a fixed-width header
            u64::from_le_bytes(header[r].try_into().expect("8-byte header field"))
        };
        if field_u64(0..8) != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let states_len = self.capacity.div_ceil(4);
        let states = &block[HEADER_LEN..HEADER_LEN + states_len];
        let data = &block[HEADER_LEN + states_len..];
        let checksum = fnv1a_64(&[&header[0..32], states, data]);
        if checksum != field_u64(32..40) {
            return Err(corrupt("checksum mismatch"));
        }
        let hdr_page = u32::from_le_bytes(header[8..12].try_into().expect("4-byte field")); // lint: allow(no-panic) — fixed-width slice
        if hdr_page != page_no {
            return Err(corrupt("header page number does not match offset"));
        }
        let hdr_record_len =
            u32::from_le_bytes(header[12..16].try_into().expect("4-byte field")) as usize; // lint: allow(no-panic) — fixed-width slice
        if hdr_record_len != self.record_len {
            return Err(corrupt("record width does not match file"));
        }
        let page = Page::from_disk_parts(self.record_len, states, data)?;
        let hdr_live = u16::from_le_bytes(header[16..18].try_into().expect("2-byte field")); // lint: allow(no-panic) — fixed-width slice
        let hdr_retired = u16::from_le_bytes(header[18..20].try_into().expect("2-byte field")); // lint: allow(no-panic) — fixed-width slice
        if (page.live(), page.retired()) != (hdr_live, hdr_retired) {
            return Err(corrupt("occupancy counts disagree with state map"));
        }
        Ok((page, field_u64(24..32)))
    }

    /// Flush OS buffers for the page file (checkpoint end only — steal +
    /// no-force means ordinary evictions never fsync).
    pub fn sync(&self) -> StorageResult<()> {
        self.file.sync_all().map_err(StorageError::io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — unique-name counter only
        std::env::temp_dir().join(format!("wh-disk-{tag}-{}-{n}.whd", std::process::id()))
    }

    fn sample_page(record_len: usize, records: &[&[u8]]) -> Page {
        let mut p = Page::new(record_len).unwrap();
        for r in records {
            p.insert(r).unwrap().unwrap();
        }
        p
    }

    #[test]
    fn round_trip_preserves_records_and_states() {
        let path = temp_path("rt");
        let d = DiskFile::create(&path, 8).unwrap();
        let mut p = sample_page(8, &[&[1u8; 8], &[2u8; 8], &[3u8; 8]]);
        p.delete(0, 0).unwrap();
        p.retire(0, 1).unwrap();
        d.write_page(0, &p, 1).unwrap();
        let (back, seq) = d.read_page(0).unwrap().unwrap();
        assert_eq!(seq, 1);
        assert_eq!((back.live(), back.retired()), (1, 1));
        assert_eq!(back.read(0, 2).unwrap(), &[3u8; 8]);
        assert!(back.read(0, 0).is_err(), "deleted slot stays deleted");
        assert!(back.read(0, 1).is_err(), "retired slot stays invisible");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn higher_seq_wins_between_shadow_blocks() {
        let path = temp_path("seq");
        let d = DiskFile::create(&path, 16).unwrap();
        d.write_page(0, &sample_page(16, &[&[1u8; 16]]), 1).unwrap();
        d.write_page(0, &sample_page(16, &[&[2u8; 16], &[2u8; 16]]), 2)
            .unwrap();
        let (back, seq) = d.read_page(0).unwrap().unwrap();
        assert_eq!((seq, back.live()), (2, 2));
        // A third write lands back in slot 1's position and wins again.
        d.write_page(0, &sample_page(16, &[&[3u8; 16]]), 3).unwrap();
        let (back, seq) = d.read_page(0).unwrap().unwrap();
        assert_eq!((seq, back.live()), (3, 1));
        assert_eq!(back.read(0, 0).unwrap(), &[3u8; 16]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_newer_block_falls_back_to_elder() {
        let path = temp_path("torn");
        let d = DiskFile::create(&path, 16).unwrap();
        d.write_page(0, &sample_page(16, &[&[7u8; 16]]), 2).unwrap();
        d.write_page(0, &sample_page(16, &[&[8u8; 16]]), 3).unwrap();
        // Tear the seq-3 image (shadow slot 1): flip bytes mid-block.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(&[0xAA; 32], d.block_len as u64 + 60)
            .unwrap();
        let (back, seq) = d.read_page(0).unwrap().unwrap();
        assert_eq!(seq, 2, "elder complete image survives the tear");
        assert_eq!(back.read(0, 0).unwrap(), &[7u8; 16]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn both_blocks_corrupt_is_an_error() {
        let path = temp_path("corrupt");
        let d = DiskFile::create(&path, 16).unwrap();
        d.write_page(0, &sample_page(16, &[&[1u8; 16]]), 1).unwrap();
        d.write_page(0, &sample_page(16, &[&[2u8; 16]]), 2).unwrap();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(&[0xFF; 16], 4).unwrap();
        f.write_all_at(&[0xFF; 16], d.block_len as u64 + 4).unwrap();
        assert!(matches!(d.read_page(0), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unwritten_page_reads_as_none() {
        let path = temp_path("none");
        let d = DiskFile::create(&path, 16).unwrap();
        assert!(d.read_page(0).unwrap().is_none(), "beyond EOF");
        d.write_page(3, &sample_page(16, &[&[1u8; 16]]), 1).unwrap();
        assert!(d.read_page(1).unwrap().is_none(), "hole inside the file");
        assert!(d.read_page(3).unwrap().is_some());
        assert_eq!(d.page_count().unwrap(), 4, "count from file size");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_sees_previous_writes() {
        let path = temp_path("reopen");
        {
            let d = DiskFile::create(&path, 32).unwrap();
            d.write_page(0, &sample_page(32, &[&[9u8; 32]]), 5).unwrap();
            d.sync().unwrap();
        }
        let d = DiskFile::open(&path, 32).unwrap();
        let (back, seq) = d.read_page(0).unwrap().unwrap();
        assert_eq!((seq, back.read(0, 0).unwrap()[0]), (5, 9));
        // Wrong record width is caught by the header, not silently decoded.
        let wrong = DiskFile::open(&path, 16).unwrap();
        assert!(wrong.read_page(0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv_vector() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a_64(&[b""]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(&[b"a"]), 0xaf63_dc4c_8601_ec8c);
        // Region splits must not change the digest.
        assert_eq!(fnv1a_64(&[b"ab", b"c"]), fnv1a_64(&[b"abc"]));
    }
}
