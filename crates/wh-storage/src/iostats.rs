//! Logical I/O accounting.
//!
//! §6 of the paper argues that 2VNL "additional I/O's for reading and
//! modifying tuples are never required", while MV2PL's version pool can cost
//! readers extra I/Os per tuple and writers an extra I/O to copy the old
//! version out. Those are claims about *counts of page accesses*, so the
//! substrate counts every logical page read and write at the point where a
//! page latch is taken. Experiment E10 (`report_io`) reads these counters.
//!
//! Every `IoStats` instance additionally forwards its counts into the
//! process-global `wh-obs` registry (`storage.io.*`), so one
//! `Registry::snapshot()` sees total I/O traffic across all storage areas
//! without plumbing. The per-instance counters stay authoritative for the
//! paper experiments, which compare areas against each other; this struct
//! is now a thin per-area view over the same recording points.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of logical I/O and tuple traffic, shared by reference
/// across everything operating on one storage area.
#[derive(Debug, Default)]
pub struct IoStats {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    tuple_reads: AtomicU64,
    tuple_writes: AtomicU64,
}

/// A point-in-time copy of the counters, with subtraction for intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Logical page reads.
    pub page_reads: u64,
    /// Logical page writes.
    pub page_writes: u64,
    /// Tuples returned to callers.
    pub tuple_reads: u64,
    /// Tuples inserted/updated/deleted.
    pub tuple_writes: u64,
}

impl IoSnapshot {
    /// Counter deltas since `earlier` (saturating).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            tuple_reads: self.tuple_reads.saturating_sub(earlier.tuple_reads),
            tuple_writes: self.tuple_writes.saturating_sub(earlier.tuple_writes),
        }
    }

    /// Total logical page I/Os (reads + writes).
    pub fn total_pages(&self) -> u64 {
        self.page_reads + self.page_writes
    }
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` logical page reads.
    pub fn count_page_reads(&self, n: u64) {
        self.page_reads.fetch_add(n, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        wh_obs::counter!("storage.io.page_reads").add(n);
    }

    /// Record `n` logical page writes.
    pub fn count_page_writes(&self, n: u64) {
        self.page_writes.fetch_add(n, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        wh_obs::counter!("storage.io.page_writes").add(n);
    }

    /// Record `n` tuples handed to a reader.
    pub fn count_tuple_reads(&self, n: u64) {
        self.tuple_reads.fetch_add(n, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        wh_obs::counter!("storage.io.tuple_reads").add(n);
    }

    /// Record `n` tuple mutations.
    pub fn count_tuple_writes(&self, n: u64) {
        self.tuple_writes.fetch_add(n, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
        wh_obs::counter!("storage.io.tuple_writes").add(n);
    }

    /// Read all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            page_writes: self.page_writes.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            tuple_reads: self.tuple_reads.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
            tuple_writes: self.tuple_writes.load(Ordering::Relaxed), // ordering: stat-counter Relaxed — statistical read; tearing across cells is acceptable
        }
    }

    /// Zero all counters (between experiment phases).
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.page_writes.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.tuple_reads.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
        self.tuple_writes.store(0, Ordering::Relaxed); // ordering: stat-counter Relaxed — reset; callers quiesce writers around snapshots/resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = IoStats::new();
        s.count_page_reads(3);
        s.count_page_writes(2);
        s.count_tuple_reads(10);
        s.count_tuple_writes(4);
        let snap = s.snapshot();
        assert_eq!(snap.page_reads, 3);
        assert_eq!(snap.page_writes, 2);
        assert_eq!(snap.tuple_reads, 10);
        assert_eq!(snap.tuple_writes, 4);
        assert_eq!(snap.total_pages(), 5);
    }

    #[test]
    fn interval_deltas() {
        let s = IoStats::new();
        s.count_page_reads(5);
        let a = s.snapshot();
        s.count_page_reads(7);
        let b = s.snapshot();
        assert_eq!(b.since(&a).page_reads, 7);
        assert_eq!(a.since(&b).page_reads, 0); // saturating
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.count_page_writes(9);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }
}
