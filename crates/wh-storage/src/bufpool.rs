//! The buffer pool: pinned page frames over an optional [`DiskFile`], with
//! dirty tracking and clock (second-chance) eviction.
//!
//! Design:
//!
//! * **Pin = Arc.** Fetching a page returns a [`PagePin`] holding a clone of
//!   the frame's `Arc<RwLock<Page>>`. A frame is evictable only when
//!   `Arc::strong_count == 1` (no pins), checked under the frame's *state*
//!   write latch — pins are only ever cloned under the state read latch, so
//!   the check cannot race a new pin. No pin counts to maintain, no unpin
//!   calls to forget.
//! * **Steal + no-force.** Dirty pages may be written out at any time
//!   (eviction steals them) and are not forced at commit; only a checkpoint
//!   end syncs the file. §7 slot reconstruction makes both safe: any
//!   above-checkpoint tuple image that reaches disk is rolled back by
//!   recovery, and anything not yet flushed is bounded by the last
//!   checkpoint (durability lag, never corruption).
//! * **In-memory mode.** With no backing file the pool is the old
//!   `Vec<Arc<RwLock<Page>>>` in different clothes: unbounded capacity,
//!   frames never evict, fetch is one map lookup plus an Arc clone. The
//!   heap's hot paths run through the same code either way — the E22 gate
//!   in `report_durability` checks the ratio cost of that unification.
//!
//! The eviction-decision core ([`FrameCore`]) lives in `wh-kernel` and is
//! model-checked exhaustively; this module adds the I/O those verdicts gate.

use crate::disk::DiskFile;
use crate::error::{StorageError, StorageResult};
use crate::page::Page;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use wh_kernel::latch::{read_latch, try_write_latch, write_latch};
use wh_kernel::pool::{EvictVerdict, FrameCore};
use wh_types::fail_point;

/// One page's residency slot in the pool.
#[derive(Debug)]
struct Frame {
    page_no: u32,
    /// `None` = not resident. The inner Arc is the pin handle (see module
    /// docs); this outer lock is the frame's **state latch**, distinct from
    /// the page's own content latch.
    state: RwLock<Option<Arc<RwLock<Page>>>>,
    core: FrameCore,
    /// Shadow-block sequence of the last image successfully written for
    /// this page; only advanced on write success so a failed write never
    /// rotates onto (and tears) the elder valid block.
    seq: AtomicU64,
}

/// A fetched page, pinned for as long as this handle lives. Dereferences to
/// the page's content latch, so heap code latches it exactly as it latched
/// the raw `Arc<RwLock<Page>>` before the pool existed.
pub struct PagePin {
    page: Arc<RwLock<Page>>,
    frame: Arc<Frame>,
}

impl std::ops::Deref for PagePin {
    type Target = RwLock<Page>;
    fn deref(&self) -> &RwLock<Page> {
        &self.page
    }
}

impl PagePin {
    /// Record that the caller modified the page. Must be called while the
    /// page write latch is (or was just) held, before the modification is
    /// depended on — the frame protocol in `wh_kernel::pool` explains why
    /// this can never lose an update to a racing flush.
    pub fn mark_dirty(&self) {
        self.frame.core.mark_dirty();
    }
}

/// A pool of page frames, optionally backed by a [`DiskFile`].
pub struct BufferPool {
    record_len: usize,
    frames: RwLock<Vec<Arc<Frame>>>,
    disk: Option<DiskFile>,
    /// Max resident pages when disk-backed; `usize::MAX` in memory.
    capacity: usize,
    resident: AtomicUsize,
    clock: AtomicUsize,
}

impl BufferPool {
    /// An unbounded, unbacked pool — the in-memory tier-1 configuration.
    pub fn in_memory(record_len: usize) -> StorageResult<Self> {
        Page::new(record_len)?; // validate the width eagerly
        Ok(BufferPool {
            record_len,
            frames: RwLock::new(Vec::new()),
            disk: None,
            capacity: usize::MAX,
            resident: AtomicUsize::new(0),
            clock: AtomicUsize::new(0),
        })
    }

    /// A pool over a freshly created page file, holding at most `capacity`
    /// resident pages (min 1).
    pub fn create_backed(record_len: usize, path: &Path, capacity: usize) -> StorageResult<Self> {
        let disk = DiskFile::create(path, record_len)?;
        Ok(Self::backed(record_len, disk, capacity, 0))
    }

    /// A pool over an existing page file; every on-disk page gets a
    /// non-resident frame, faulted in on first fetch.
    pub fn open_backed(record_len: usize, path: &Path, capacity: usize) -> StorageResult<Self> {
        let disk = DiskFile::open(path, record_len)?;
        let pages = disk.page_count()?;
        Ok(Self::backed(record_len, disk, capacity, pages))
    }

    fn backed(record_len: usize, disk: DiskFile, capacity: usize, pages: u32) -> Self {
        let frames = (0..pages)
            .map(|page_no| {
                Arc::new(Frame {
                    page_no,
                    state: RwLock::new(None),
                    core: FrameCore::new(),
                    seq: AtomicU64::new(0),
                })
            })
            .collect();
        BufferPool {
            record_len,
            frames: RwLock::new(frames),
            disk: Some(disk),
            capacity: capacity.max(1),
            clock: AtomicUsize::new(0),
            resident: AtomicUsize::new(0),
        }
    }

    /// Whether this pool writes through to a page file.
    pub fn is_backed(&self) -> bool {
        self.disk.is_some()
    }

    /// Record width of the pooled pages.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// Number of allocated pages (resident or not).
    pub fn page_count(&self) -> u32 {
        read_latch(&self.frames).len() as u32
    }

    /// Number of currently resident pages (telemetry; racy by nature).
    pub fn resident(&self) -> usize {
        // ordering: stat-counter Relaxed — advisory count read for telemetry/tests.
        self.resident.load(Ordering::Relaxed)
    }

    /// Fetch (pinning) page `page_no`, faulting it in from disk if needed.
    pub fn fetch(&self, page_no: u32) -> StorageResult<PagePin> {
        let frame = read_latch(&self.frames)
            .get(page_no as usize)
            .cloned()
            .ok_or(StorageError::NoSuchPage(page_no))?;
        {
            let state = read_latch(&frame.state);
            if let Some(page) = state.as_ref() {
                let page = Arc::clone(page);
                drop(state);
                frame.core.mark_referenced();
                wh_obs::counter!("storage.pool.hits").inc();
                return Ok(PagePin { page, frame });
            }
        }
        // lint: allow(latch-order) — the state read latch above is scoped to the hit-check block and already dropped here; fault_in starts from a clean slate
        self.fault_in(frame)
    }

    /// Miss path: load the page image from disk under the frame's state
    /// write latch. `#[cold]` keeps the in-memory fast path (which can
    /// never miss) free of this code.
    #[cold]
    #[inline(never)]
    fn fault_in(&self, frame: Arc<Frame>) -> StorageResult<PagePin> {
        let mut state = write_latch(&frame.state);
        if let Some(page) = state.as_ref() {
            // Lost the race to another faulting fetcher: that's a hit.
            let page = Arc::clone(page);
            drop(state);
            frame.core.mark_referenced();
            wh_obs::counter!("storage.pool.hits").inc();
            return Ok(PagePin { page, frame });
        }
        wh_obs::counter!("storage.pool.misses").inc();
        let disk = self.disk.as_ref().ok_or_else(|| {
            StorageError::Corrupt("non-resident frame in an unbacked pool".into())
        })?;
        let (page, seq) = match disk.read_page(frame.page_no)? {
            Some((page, seq)) => (page, seq),
            // Allocated but never flushed: an empty page, which is exactly
            // what §7 rollback leaves of a page born after the checkpoint.
            None => (Page::new(self.record_len)?, 0),
        };
        // ordering: pool-frame SeqCst — uniform with the frame protocol; the state
        // write latch is the real publication edge.
        frame.seq.store(seq, Ordering::SeqCst);
        frame.core.clear_dirty();
        frame.core.mark_referenced();
        let page = Arc::new(RwLock::new(page));
        *state = Some(Arc::clone(&page));
        drop(state);
        // ordering: pool-resident SeqCst — resident accounting pairs with eviction's sub.
        self.resident.fetch_add(1, Ordering::SeqCst);
        wh_obs::gauge!("storage.pool.resident").set(self.resident() as i64);
        // lint: allow(latch-order) — the frame-state write latch was dropped just above; eviction inside enforce_capacity starts with no latch held
        self.enforce_capacity()?;
        Ok(PagePin { page, frame })
    }

    /// Append a new (resident, empty) page; returns its page number.
    pub fn allocate(&self) -> StorageResult<u32> {
        let page = Arc::new(RwLock::new(Page::new(self.record_len)?));
        let frame = Frame {
            page_no: 0, // patched below under the frames latch
            state: RwLock::new(Some(page)),
            core: FrameCore::new(),
            seq: AtomicU64::new(0),
        };
        frame.core.mark_referenced();
        let mut frames = write_latch(&self.frames);
        let page_no = frames.len() as u32;
        frames.push(Arc::new(Frame { page_no, ..frame }));
        drop(frames);
        // ordering: pool-resident SeqCst — resident accounting pairs with eviction's sub.
        self.resident.fetch_add(1, Ordering::SeqCst);
        self.enforce_capacity()?;
        Ok(page_no)
    }

    fn enforce_capacity(&self) -> StorageResult<()> {
        // ordering: pool-resident SeqCst — pairs with the add/sub sites.
        if self.resident.load(Ordering::SeqCst) <= self.capacity {
            return Ok(());
        }
        self.evict_down_to(self.capacity)
    }

    /// Clock sweep until at most `target` pages are resident or every frame
    /// has had its second chance. Pinned frames are skipped, so the pool
    /// can legitimately stay over target while scans hold pins.
    fn evict_down_to(&self, target: usize) -> StorageResult<()> {
        if self.disk.is_none() {
            return Ok(());
        }
        let frames: Vec<Arc<Frame>> = read_latch(&self.frames).clone();
        if frames.is_empty() {
            return Ok(());
        }
        // Two passes: one to clear reference bits, one to act on them.
        let budget = frames.len() * 2;
        let mut attempts = 0;
        // ordering: pool-resident SeqCst — resident accounting, pairs with add/sub sites.
        while self.resident.load(Ordering::SeqCst) > target && attempts < budget {
            attempts += 1;
            // ordering: clock-hand Relaxed — the hand position is only a rotation cursor.
            let idx = self.clock.fetch_add(1, Ordering::Relaxed) % frames.len();
            self.try_evict(&frames[idx])?;
        }
        Ok(())
    }

    /// One clock-hand visit: evict the frame if the kernel verdict allows,
    /// flushing first when dirty. Contended or pinned frames are skipped.
    fn try_evict(&self, frame: &Arc<Frame>) -> StorageResult<bool> {
        let Some(mut state) = try_write_latch(&frame.state) else {
            return Ok(false);
        };
        let Some(page) = state.as_ref().map(Arc::clone) else {
            return Ok(false);
        };
        // Pins beyond the frame's own reference; new pins are excluded by
        // the state write latch we hold.
        let pins = Arc::strong_count(&page) - 2; // minus `state`'s and ours
        match frame.core.evict_verdict(pins) {
            EvictVerdict::Pinned | EvictVerdict::SecondChance => Ok(false),
            verdict => {
                if verdict == EvictVerdict::MustFlush {
                    self.flush_frame(frame, &page)?;
                }
                wh_obs::trace_event!("storage.pool.evict", u64::from(frame.page_no));
                // trace: leaf under the caller's fetch/flush/checkpoint span.
                fail_point!("storage.pool.evict");
                *state = None;
                drop(state);
                // ordering: pool-resident SeqCst — pairs with the fetch/allocate adds.
                self.resident.fetch_sub(1, Ordering::SeqCst);
                wh_obs::counter!("storage.pool.evictions").inc();
                wh_obs::gauge!("storage.pool.resident").set(self.resident() as i64);
                Ok(true)
            }
        }
    }

    /// Write one frame's image out if dirty. Caller must hold the frame's
    /// state write latch — that is what serializes per-frame flushes and
    /// makes the load-then-store on `seq` safe.
    fn flush_frame(&self, frame: &Frame, page: &Arc<RwLock<Page>>) -> StorageResult<bool> {
        let Some(disk) = self.disk.as_ref() else {
            return Ok(false);
        };
        let guard = read_latch(page);
        if !frame.core.clear_dirty() {
            return Ok(false);
        }
        // ordering: pool-frame SeqCst — uniform with the frame protocol; serialized by
        // the state latch, see above.
        let seq = frame.seq.load(Ordering::SeqCst) + 1;
        // Scope the failpoint's early return so the error path below still
        // re-marks the frame dirty.
        let write = || -> StorageResult<()> {
            // trace: leaf under the caller's flush/checkpoint span.
            fail_point!("storage.pool.flush");
            disk.write_page(frame.page_no, &guard, seq)
        };
        let result = write();
        drop(guard);
        match result {
            Ok(()) => {
                // ordering: pool-frame SeqCst — advanced only on success (shadow-slot
                // rotation must track images actually on disk).
                frame.seq.store(seq, Ordering::SeqCst);
                wh_obs::counter!("storage.pool.flushes").inc();
                Ok(true)
            }
            Err(e) => {
                // The image is still only in memory: re-mark so a later
                // flush (or the next checkpoint attempt) retries it.
                frame.core.mark_dirty();
                wh_obs::counter!("storage.pool.flush_failures").inc();
                // A failed flush is an anomaly worth the recent causal
                // history: which txn dirtied the page and who demanded the
                // write all sit in the ring right now.
                wh_obs::recorder::trigger(
                    "flush_failed",
                    &format!("page {} flush failed: {e}", frame.page_no),
                );
                Err(e)
            }
        }
    }

    /// Flush every dirty page (the checkpoint body). Returns the number of
    /// pages written. Fuzzy by design: pages flush one at a time under
    /// their own latches while readers and the maintenance writer keep
    /// running — above-checkpoint images that slip in are §7-rolled-back on
    /// recovery.
    pub fn flush_all(&self) -> StorageResult<u64> {
        let _ts = wh_obs::trace_span!("storage.pool.flush_all");
        let frames: Vec<Arc<Frame>> = read_latch(&self.frames).clone();
        let mut flushed = 0u64;
        for frame in frames {
            let state = write_latch(&frame.state);
            if let Some(page) = state.as_ref() {
                if self.flush_frame(&frame, page)? {
                    flushed += 1;
                }
            }
        }
        Ok(flushed)
    }

    /// Evict every unpinned page (flushing dirty ones). Test/maintenance
    /// surface: exercises the full evict/reload cycle on demand.
    pub fn evict_all(&self) -> StorageResult<u64> {
        if self.disk.is_none() {
            return Ok(0);
        }
        let _ts = wh_obs::trace_span!("storage.pool.evict_all");
        let frames: Vec<Arc<Frame>> = read_latch(&self.frames).clone();
        let mut evicted = 0u64;
        // Two sweeps so reference bits can't shield everything.
        for _ in 0..2 {
            for frame in &frames {
                if self.try_evict(frame)? {
                    evicted += 1;
                }
            }
        }
        Ok(evicted)
    }

    /// Fsync the backing file (checkpoint end). No-op in memory.
    pub fn sync(&self) -> StorageResult<()> {
        match &self.disk {
            Some(disk) => disk.sync(),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("record_len", &self.record_len)
            .field("pages", &self.page_count())
            .field("resident", &self.resident())
            .field("backed", &self.is_backed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — unique-name counter only
        std::env::temp_dir().join(format!("wh-pool-{tag}-{}-{n}.whd", std::process::id()))
    }

    fn put(pool: &BufferPool, page_no: u32, byte: u8) {
        let pin = pool.fetch(page_no).unwrap();
        let mut page = write_latch(&pin);
        page.insert(&[byte; 64]).unwrap().unwrap();
        drop(page);
        pin.mark_dirty();
    }

    fn first_byte(pool: &BufferPool, page_no: u32) -> u8 {
        let pin = pool.fetch(page_no).unwrap();
        let page = read_latch(&pin);
        let b = page.read(page_no, 0).unwrap()[0];
        b
    }

    #[test]
    fn in_memory_pool_never_evicts() {
        let pool = BufferPool::in_memory(64).unwrap();
        for i in 0..20u8 {
            let p = pool.allocate().unwrap();
            put(&pool, p, i);
        }
        assert_eq!(pool.resident(), 20);
        assert_eq!(pool.evict_all().unwrap(), 0);
        for i in 0..20u8 {
            assert_eq!(first_byte(&pool, u32::from(i)), i);
        }
    }

    #[test]
    fn backed_pool_survives_evict_reload() {
        let path = temp_path("reload");
        let pool = BufferPool::create_backed(64, &path, 8).unwrap();
        for i in 0..8u8 {
            let p = pool.allocate().unwrap();
            put(&pool, p, i);
        }
        let evicted = pool.evict_all().unwrap();
        assert!(evicted >= 8, "all unpinned pages evict, got {evicted}");
        assert_eq!(pool.resident(), 0);
        for i in 0..8u8 {
            assert_eq!(first_byte(&pool, u32::from(i)), i, "reloaded from disk");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_bounds_residency() {
        let path = temp_path("cap");
        let pool = BufferPool::create_backed(64, &path, 4).unwrap();
        for i in 0..32u8 {
            let p = pool.allocate().unwrap();
            put(&pool, p, i);
        }
        assert!(
            pool.resident() <= 6,
            "clock keeps residency near capacity, got {}",
            pool.resident()
        );
        // Every page still readable (faulting evicted ones back in).
        for i in 0..32u8 {
            assert_eq!(first_byte(&pool, u32::from(i)), i);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let path = temp_path("pin");
        let pool = BufferPool::create_backed(64, &path, 2).unwrap();
        let p0 = pool.allocate().unwrap();
        put(&pool, p0, 42);
        let pin = pool.fetch(p0).unwrap();
        // Blow well past capacity while holding the pin.
        for i in 1..10u8 {
            let p = pool.allocate().unwrap();
            put(&pool, p, i);
        }
        pool.evict_all().unwrap();
        // The pinned page never left memory: read through the pin without
        // any fetch (which could fault it back in and mask an eviction).
        let page = read_latch(&pin);
        assert_eq!(page.read(p0, 0).unwrap()[0], 42);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_restores_pages() {
        let path = temp_path("reopen");
        {
            let pool = BufferPool::create_backed(64, &path, 64).unwrap();
            for i in 0..5u8 {
                let p = pool.allocate().unwrap();
                put(&pool, p, i);
            }
            pool.flush_all().unwrap();
            pool.sync().unwrap();
        }
        let pool = BufferPool::open_backed(64, &path, 64).unwrap();
        assert_eq!(pool.page_count(), 5);
        assert_eq!(pool.resident(), 0, "reopen starts cold");
        for i in 0..5u8 {
            assert_eq!(first_byte(&pool, u32::from(i)), i);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dirty_pages_flush_once_per_flush_all() {
        let path = temp_path("flush");
        let pool = BufferPool::create_backed(64, &path, 64).unwrap();
        for i in 0..3u8 {
            let p = pool.allocate().unwrap();
            put(&pool, p, i);
        }
        assert_eq!(pool.flush_all().unwrap(), 3);
        assert_eq!(pool.flush_all().unwrap(), 0, "clean pages skip I/O");
        put(&pool, 1, 99);
        assert_eq!(pool.flush_all().unwrap(), 1, "re-dirtied page re-flushes");
        std::fs::remove_file(&path).ok();
    }
}
