//! Heap files: growable collections of latched pages.

use crate::batch::{FieldSpec, RecordBatch};
use crate::bufpool::{BufferPool, PagePin};
use crate::checkpoint::{CheckpointMeta, CheckpointStats, VersionMeta};
use crate::error::{StorageError, StorageResult};
use crate::iostats::IoStats;
use crate::page::Rid;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
// Latch acquisition is a verified kernel: `wh_kernel::latch` is the same
// source the `cargo test -p wh-kernel --features model` suite explores
// exhaustively on wh-model's checked sync types.
use wh_kernel::latch::{lock_list, read_latch, try_read_latch, try_write_latch, write_latch};
use wh_types::fail_point;

/// Failpoints compiled into this crate under `--features failpoints`
/// (disarmed and zero-cost otherwise). Names are stable: the crash-matrix
/// driver enumerates this catalog.
pub const FAILPOINTS: &[&str] = &[
    "storage.heap.latch",
    "storage.heap.insert",
    "storage.heap.read",
    "storage.heap.write",
    "storage.heap.modify",
    "storage.heap.delete",
    "storage.heap.free_space",
    "storage.disk.read",
    "storage.disk.write",
    "storage.pool.evict",
    "storage.pool.flush",
    "storage.ckpt.begin",
    "storage.ckpt.meta",
];

/// File name of the page file within a durable heap's directory.
pub const PAGES_FILE: &str = "pages.whd";

/// [`read_latch`] with contention telemetry for page latches: uncontended
/// acquisitions take the `try_read` fast path and never touch the clock;
/// only a blocked acquisition pays for two `Instant` reads, recorded in
/// `storage.latch.read_wait_ns`. The contended path is `#[cold]` and
/// never inlined so the timing machinery stays out of scan-loop codegen —
/// the E20 overhead gate holds the fast path to the bare `try_read`.
fn read_latch_timed<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match try_read_latch(lock) {
        Some(g) => g,
        None => read_latch_contended(lock),
    }
}

#[cold]
#[inline(never)]
fn read_latch_contended<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    let wait = wh_obs::Timer::start();
    let g = read_latch(lock);
    let ns = wait.elapsed_ns();
    wh_obs::histogram!("storage.latch.read_wait_ns").record(ns);
    // Contended waits are rare enough to afford a causal event each.
    wh_obs::trace_event!("storage.latch.read_contended", ns);
    g
}

/// Write twin of [`read_latch_timed`]; waits land in
/// `storage.latch.write_wait_ns`.
fn write_latch_timed<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match try_write_latch(lock) {
        Some(g) => g,
        None => write_latch_contended(lock),
    }
}

#[cold]
#[inline(never)]
fn write_latch_contended<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    let wait = wh_obs::Timer::start();
    let g = write_latch(lock);
    let ns = wait.elapsed_ns();
    wh_obs::histogram!("storage.latch.write_wait_ns").record(ns);
    // Contended waits are rare enough to afford a causal event each.
    wh_obs::trace_event!("storage.latch.write_contended", ns);
    g
}

/// A heap file of fixed-width records.
///
/// Concurrency model (deliberately matching the paper's §4 substrate
/// requirements):
///
/// * Each page sits behind its own `RwLock` used as a **latch**: held only
///   for the duration of one record operation or one page visit during a
///   scan, never across an operation boundary, and never until commit.
/// * Readers therefore never block on writers beyond a single in-flight
///   tuple modification, and scans read "uncommitted" data by design — the
///   2VNL layer above makes that safe.
/// * Updates are **in place** and width-preserving.
///
/// Every page visit is counted against the shared [`IoStats`].
pub struct HeapFile {
    record_len: usize,
    /// Every page access goes through the pool: an unbounded never-evicting
    /// map in memory, a real pin/evict/fault-in pool when disk-backed.
    pool: BufferPool,
    /// Durable heap's directory (page file + checkpoint record); `None` in
    /// memory.
    dir: Option<PathBuf>,
    /// Pages that may have free slots; checked before allocating a new page.
    free_pages: Mutex<Vec<u32>>,
    stats: Arc<IoStats>,
    /// Rolling op count behind [`HeapFile::sample_op`].
    op_probe: std::sync::atomic::AtomicU32,
}

impl HeapFile {
    /// Create an empty heap file for records of `record_len` bytes.
    pub fn new(record_len: usize, stats: Arc<IoStats>) -> StorageResult<Self> {
        Ok(HeapFile {
            record_len,
            pool: BufferPool::in_memory(record_len)?,
            dir: None,
            free_pages: Mutex::new(Vec::new()),
            stats,
            op_probe: std::sync::atomic::AtomicU32::new(0),
        })
    }

    /// Create an empty disk-backed heap in `dir` (created if absent), with
    /// at most `capacity` pages resident in the buffer pool.
    pub fn create_backed(
        record_len: usize,
        dir: &Path,
        capacity: usize,
        stats: Arc<IoStats>,
    ) -> StorageResult<Self> {
        std::fs::create_dir_all(dir).map_err(StorageError::io)?;
        Ok(HeapFile {
            record_len,
            pool: BufferPool::create_backed(record_len, &dir.join(PAGES_FILE), capacity)?,
            dir: Some(dir.to_path_buf()),
            free_pages: Mutex::new(Vec::new()),
            stats,
            op_probe: std::sync::atomic::AtomicU32::new(0),
        })
    }

    /// Reopen a disk-backed heap from its directory. The heap is sized from
    /// the page-**file** length (not the checkpoint record — pages
    /// allocated after the last checkpoint may have been stolen to disk and
    /// still need the §7 rollback pass). The free list is rebuilt by
    /// faulting every page in once.
    pub fn open_backed(
        record_len: usize,
        dir: &Path,
        capacity: usize,
        stats: Arc<IoStats>,
    ) -> StorageResult<Self> {
        let heap = HeapFile {
            record_len,
            pool: BufferPool::open_backed(record_len, &dir.join(PAGES_FILE), capacity)?,
            dir: Some(dir.to_path_buf()),
            free_pages: Mutex::new(Vec::new()),
            stats,
            op_probe: std::sync::atomic::AtomicU32::new(0),
        };
        let mut free = Vec::new();
        for page_no in 0..heap.pool.page_count() {
            let pin = heap.pool.fetch(page_no)?;
            if read_latch(&pin).has_room() {
                free.push(page_no);
            }
        }
        *lock_list(&heap.free_pages) = free;
        Ok(heap)
    }

    /// Whether this heap persists pages to disk.
    pub fn is_durable(&self) -> bool {
        self.pool.is_backed()
    }

    /// The buffer pool (telemetry/tests: residency, evict-all).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Flush every dirty page to the page file; returns pages written.
    pub fn flush_all(&self) -> StorageResult<u64> {
        self.pool.flush_all()
    }

    /// Evict every unpinned page (flushing dirty ones first) — the full
    /// evict/reload cycle on demand, for tests and the crash matrix.
    pub fn evict_all(&self) -> StorageResult<u64> {
        self.pool.evict_all()
    }

    /// Take a fuzzy checkpoint: flush all dirty pages, fsync the page file,
    /// then atomically publish the checkpoint record carrying `version` —
    /// the version globals the caller captured **before** calling (the
    /// begin snapshot). Any maintenance work that lands on disk during the
    /// flush carries `tupleVN` above that snapshot and is §7-rolled-back on
    /// recovery, so no quiescing is needed.
    pub fn checkpoint(&self, version: VersionMeta) -> StorageResult<CheckpointStats> {
        // trace: nests under `vnl.checkpoint` when driven from the table.
        let _ts = wh_obs::trace_span!("storage.checkpoint");
        fail_point!("storage.ckpt.begin");
        let dir = self.dir.as_ref().ok_or_else(|| {
            StorageError::Corrupt("checkpoint requested on an in-memory heap".into())
        })?;
        let timer = wh_obs::Timer::start();
        let pages_flushed = self.pool.flush_all()?;
        self.pool.sync()?;
        let meta = CheckpointMeta {
            current_vn: version.current_vn,
            maintenance_active: version.maintenance_active,
            // lint: allow(version-encapsulation) — VersionMeta POD field, not the kernel atomic
            recovery_floor: version.recovery_floor,
            gc_horizon: version.gc_horizon,
            page_count: self.pool.page_count(),
            record_len: self.record_len as u32,
        };
        meta.write(dir)?;
        wh_obs::counter!("storage.ckpt.completed").inc();
        wh_obs::histogram!("storage.ckpt.ns").record(timer.elapsed_ns());
        wh_obs::histogram!("storage.ckpt.pages_flushed").record(pages_flushed);
        Ok(CheckpointStats {
            pages_flushed,
            checkpoint_vn: version.current_vn,
        })
    }

    /// Load this heap's checkpoint record (durable heaps only).
    pub fn read_checkpoint(&self) -> StorageResult<CheckpointMeta> {
        let dir = self.dir.as_ref().ok_or_else(|| {
            StorageError::Corrupt("no checkpoint record on an in-memory heap".into())
        })?;
        CheckpointMeta::read(dir)
    }

    /// Record width stored by this file.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The I/O counters this file reports into.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pool.page_count()
    }

    /// Number of live records. On a disk-backed heap this faults evicted
    /// pages in; I/O errors read as zero live records for that page.
    pub fn len(&self) -> u64 {
        (0..self.pool.page_count())
            .filter_map(|page_no| self.pool.fetch(page_no).ok())
            .map(|pin| u64::from(read_latch(&pin).live()))
            .sum()
    }

    /// Whether the file holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this operation should pay for latency timing: a point read
    /// finishes in ~0.5µs, where two clock reads per call are a measurable
    /// tax, so the per-op latency histogram samples every 16th call (the
    /// first always records). Counters stay exact; only timing is thinned.
    fn sample_op(&self) -> bool {
        wh_obs::is_enabled()
            && self
                .op_probe
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed) // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                .is_multiple_of(16)
    }

    fn page(&self, page_no: u32) -> StorageResult<PagePin> {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.latch");
        self.pool.fetch(page_no)
    }

    /// Publish the current free-list size to `storage.heap.free_pages`
    /// (free-list pressure: near-zero under append-heavy load means every
    /// insert is allocating, high values mean deletes are outpacing reuse).
    fn note_free_list(free: &[u32]) {
        wh_obs::gauge!("storage.heap.free_pages").set(free.len() as i64);
    }

    /// Insert a record, returning its RID.
    pub fn insert(&self, record: &[u8]) -> StorageResult<Rid> {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.insert");
        let op = self.sample_op().then(wh_obs::Timer::start);
        loop {
            // Try a page believed to have room.
            let candidate = lock_list(&self.free_pages).last().copied();
            if let Some(page_no) = candidate {
                let page = self.page(page_no)?;
                let mut guard = write_latch_timed(&page);
                self.stats.count_page_reads(1);
                if let Some(slot) = guard.insert(record)? {
                    page.mark_dirty();
                    self.stats.count_page_writes(1);
                    self.stats.count_tuple_writes(1);
                    if !guard.has_room() {
                        let mut free = lock_list(&self.free_pages);
                        free.retain(|&p| p != page_no);
                        Self::note_free_list(&free);
                    }
                    if let Some(op) = op {
                        wh_obs::histogram_sampled!("storage.heap.insert_ns", 16)
                            .record(op.elapsed_ns());
                    }
                    return Ok(Rid::new(page_no, slot));
                }
                // Page filled up under us; drop it from the free list and retry.
                lock_list(&self.free_pages).retain(|&p| p != page_no);
                continue;
            }
            // Allocate a new page.
            // lint: allow(latch-order) — the page write latch is scoped to the candidate branch above and is not held on this path; allocate starts with no latch held
            let page_no = self.pool.allocate()?;
            wh_obs::counter!("storage.heap.page_allocs").inc();
            let mut free = lock_list(&self.free_pages);
            free.push(page_no);
            Self::note_free_list(&free);
        }
    }

    /// Read the record at `rid` into an owned buffer.
    pub fn read(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.read");
        let op = self.sample_op().then(wh_obs::Timer::start);
        let page = self.page(rid.page)?;
        let guard = read_latch_timed(&page);
        self.stats.count_page_reads(1);
        let rec = guard.read(rid.page, rid.slot)?;
        self.stats.count_tuple_reads(1);
        let out = rec.to_vec();
        drop(guard);
        if let Some(op) = op {
            wh_obs::histogram_sampled!("storage.heap.read_ns", 16).record(op.elapsed_ns());
        }
        Ok(out)
    }

    /// Overwrite the record at `rid` in place (width-preserving).
    pub fn update_in_place(&self, rid: Rid, record: &[u8]) -> StorageResult<()> {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.write");
        let op = self.sample_op().then(wh_obs::Timer::start);
        let page = self.page(rid.page)?;
        let mut guard = write_latch_timed(&page);
        self.stats.count_page_reads(1);
        guard.update_in_place(rid.page, rid.slot, record)?;
        page.mark_dirty();
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        drop(guard);
        if let Some(op) = op {
            wh_obs::histogram_sampled!("storage.heap.write_ns", 16).record(op.elapsed_ns());
        }
        Ok(())
    }

    /// Read-modify-write the record at `rid` under a single page latch.
    ///
    /// The closure sees the current image and returns the replacement (same
    /// width). This is the primitive the 2VNL maintenance decision tables
    /// need: the decision depends on the tuple's current `tupleVN`/`operation`
    /// and must be applied atomically with respect to concurrent scans.
    pub fn modify<F>(&self, rid: Rid, f: F) -> StorageResult<()>
    where
        F: FnOnce(&[u8]) -> StorageResult<Vec<u8>>,
    {
        let sampled = self.sample_op();
        let page = self.page(rid.page)?;
        let mut guard = write_latch_timed(&page);
        // Hold time matters here: the latch stays down across the caller's
        // decision closure, which is exactly where 2VNL maintenance spends
        // its per-tuple time and what concurrent readers wait behind.
        let hold = sampled.then(wh_obs::Timer::start);
        self.stats.count_page_reads(1);
        let current = guard.read(rid.page, rid.slot)?.to_vec();
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.modify");
        let replacement = f(&current)?;
        guard.update_in_place(rid.page, rid.slot, &replacement)?;
        page.mark_dirty();
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        drop(guard);
        if let Some(hold) = hold {
            let ns = hold.elapsed_ns();
            wh_obs::histogram_sampled!("storage.latch.write_hold_ns", 16).record(ns);
            wh_obs::histogram_sampled!("storage.heap.write_ns", 16).record(ns);
        }
        Ok(())
    }

    /// Physically delete the record at `rid` only if `pred` approves its
    /// current image — checked and deleted under one page latch, so no
    /// concurrent modification can slip between the check and the delete.
    /// Returns whether the delete happened.
    pub fn delete_if<F>(&self, rid: Rid, pred: F) -> StorageResult<bool>
    where
        F: FnOnce(&[u8]) -> bool,
    {
        self.delete_if_then(rid, pred, || ())
    }

    /// [`Heap::delete_if`], plus a `then` hook that runs after the delete
    /// while the page latch is still held. Callers retire external
    /// bookkeeping (key directory, secondary indexes) atomically with the
    /// physical removal: done after the latch drops, the freed slot can be
    /// reallocated — possibly to the same key — and the late cleanup would
    /// tear down the new record's entries instead.
    pub fn delete_if_then<F, G>(&self, rid: Rid, pred: F, then: G) -> StorageResult<bool>
    where
        F: FnOnce(&[u8]) -> bool,
        G: FnOnce(),
    {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.delete");
        let op = self.sample_op().then(wh_obs::Timer::start);
        let page = self.page(rid.page)?;
        let mut guard = write_latch_timed(&page);
        self.stats.count_page_reads(1);
        let current = guard.read(rid.page, rid.slot)?;
        if !pred(current) {
            return Ok(false);
        }
        guard.delete(rid.page, rid.slot)?;
        page.mark_dirty();
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        then();
        drop(guard);
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.free_space");
        let mut free = lock_list(&self.free_pages);
        if !free.contains(&rid.page) {
            free.push(rid.page);
        }
        Self::note_free_list(&free);
        drop(free);
        if let Some(op) = op {
            wh_obs::histogram_sampled!("storage.heap.delete_ns", 16).record(op.elapsed_ns());
        }
        Ok(true)
    }

    /// Retire the record at `rid` only if `pred` approves its current
    /// image — checked and retired under one page latch, with the `then`
    /// hook run while the latch is still held (see
    /// [`Self::delete_if_then`] for why the bookkeeping must be
    /// under-latch). Unlike a delete, a retired slot is invisible but
    /// **not reusable**: the page is not returned to the free list and
    /// the old bytes stay in place until [`Self::release`] — the storage
    /// half of the GC's epoch grace period.
    pub fn retire_if_then<F, G>(&self, rid: Rid, pred: F, then: G) -> StorageResult<bool>
    where
        F: FnOnce(&[u8]) -> bool,
        G: FnOnce(),
    {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.delete");
        let op = self.sample_op().then(wh_obs::Timer::start);
        let page = self.page(rid.page)?;
        let mut guard = write_latch_timed(&page);
        self.stats.count_page_reads(1);
        let current = guard.read(rid.page, rid.slot)?;
        if !pred(current) {
            return Ok(false);
        }
        guard.retire(rid.page, rid.slot)?;
        page.mark_dirty();
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        then();
        drop(guard);
        if let Some(op) = op {
            wh_obs::histogram_sampled!("storage.heap.delete_ns", 16).record(op.elapsed_ns());
        }
        Ok(true)
    }

    /// Release a retired slot for reuse and return its page to the free
    /// list. Only the GC calls this, after the epoch grace period proves
    /// no reader can still hold the slot's rid.
    pub fn release(&self, rid: Rid) -> StorageResult<()> {
        let page = self.page(rid.page)?;
        let mut guard = write_latch_timed(&page);
        guard.release(rid.page, rid.slot)?;
        page.mark_dirty();
        drop(guard);
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.free_space");
        let mut free = lock_list(&self.free_pages);
        if !free.contains(&rid.page) {
            free.push(rid.page);
        }
        Self::note_free_list(&free);
        Ok(())
    }

    /// Physically delete the record at `rid`.
    pub fn delete(&self, rid: Rid) -> StorageResult<()> {
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.delete");
        let op = self.sample_op().then(wh_obs::Timer::start);
        let page = self.page(rid.page)?;
        let mut guard = write_latch_timed(&page);
        self.stats.count_page_reads(1);
        guard.delete(rid.page, rid.slot)?;
        page.mark_dirty();
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        drop(guard);
        // trace: point-op leaf; the enclosing vnl txn/read span is the causal parent.
        fail_point!("storage.heap.free_space");
        let mut free = lock_list(&self.free_pages);
        if !free.contains(&rid.page) {
            free.push(rid.page);
        }
        Self::note_free_list(&free);
        drop(free);
        if let Some(op) = op {
            wh_obs::histogram_sampled!("storage.heap.delete_ns", 16).record(op.elapsed_ns());
        }
        Ok(())
    }

    /// Scan all live records, invoking `visit` for each `(rid, record)`.
    ///
    /// The page latch is held only while visiting one page (copy-out
    /// happens inside), so a concurrent writer can slip between pages —
    /// exactly the read-uncommitted scan behaviour the paper's rewrite
    /// approach is built for. Tuples modified in place mid-scan are seen
    /// exactly once, in either their old or new image, never torn.
    pub fn scan<F>(&self, visit: F) -> StorageResult<()>
    where
        F: FnMut(Rid, &[u8]) -> StorageResult<()>,
    {
        self.scan_pages(0..self.page_count(), visit)
    }

    /// Scan the live records of pages in `range` (clamped to the allocated
    /// page count), invoking `visit` for each `(rid, record)`.
    ///
    /// This is the partition primitive behind [`Self::scan`] and
    /// [`Self::scan_parallel`]. I/O counters are accumulated locally and
    /// merged into the shared [`IoStats`] once at the end of the range —
    /// one atomic add per counter per partition instead of one per tuple —
    /// so partitioned scans don't serialize on the stats cache line.
    pub fn scan_pages<F>(&self, range: std::ops::Range<u32>, mut visit: F) -> StorageResult<()>
    where
        F: FnMut(Rid, &[u8]) -> StorageResult<()>,
    {
        // Clamp once up front (pages grow-only, so the bound stays valid),
        // then pin each page *lazily* inside the loop: pinning the whole
        // range at once would wedge a bounded buffer pool — a partition
        // larger than pool capacity could never fault its tail in.
        let end = range.end.min(self.pool.page_count());
        let start = range.start.min(end);
        let op = wh_obs::Timer::start();
        let mut page_reads = 0u64;
        let mut tuple_reads = 0u64;
        let mut result = Ok(());
        'pages: for page_no in start..end {
            let page = match self.pool.fetch(page_no) {
                Ok(page) => page,
                Err(e) => {
                    result = Err(e);
                    break 'pages;
                }
            };
            let guard = read_latch_timed(&page);
            page_reads += 1;
            for (slot, rec) in guard.iter() {
                tuple_reads += 1;
                if let Err(e) = visit(Rid::new(page_no, slot), rec) {
                    result = Err(e);
                    break 'pages;
                }
            }
        }
        self.stats.count_page_reads(page_reads);
        self.stats.count_tuple_reads(tuple_reads);
        wh_obs::histogram!("storage.heap.scan_partition_ns").record(op.elapsed_ns());
        result
    }

    /// Scan all live records with `threads` workers over contiguous page
    /// partitions, invoking `visit(worker, rid, record)` from worker threads.
    ///
    /// Per-page latching is identical to [`Self::scan`]; each worker merges
    /// its I/O counters once when its partition completes. The first error
    /// (by worker index) is returned. With `threads <= 1` this degrades to a
    /// serial scan on the calling thread.
    pub fn scan_parallel<F>(&self, threads: usize, visit: F) -> StorageResult<()>
    where
        F: Fn(usize, Rid, &[u8]) -> StorageResult<()> + Sync,
    {
        let pages = self.page_count();
        let workers = threads.max(1).min(pages.max(1) as usize);
        if workers <= 1 {
            return self.scan_pages(0..pages, |rid, rec| visit(0, rid, rec));
        }
        let chunk = (pages as usize).div_ceil(workers) as u32;
        let visit = &visit;
        // Propagate the coordinator's span across the worker threads so
        // each partition's span parents under the read that spawned it.
        let scan_ctx = wh_obs::trace::current();
        let mut results: Vec<StorageResult<()>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let start = w as u32 * chunk;
                    let end = (start + chunk).min(pages);
                    s.spawn(move || {
                        let _ts = wh_obs::trace_span_under!("storage.scan.partition", scan_ctx);
                        self.scan_pages(start..end, |rid, rec| visit(w, rid, rec))
                    })
                })
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked")) // lint: allow(no-panic) — re-raises a scan-worker panic on the coordinator
                .collect();
        });
        results.into_iter().collect()
    }

    /// Batched scan of the pages in `range`: each page's live records are
    /// copied out in one pass under the read latch, then the `specs`
    /// fields are gathered into column-strided arrays **after the latch is
    /// released**, and `visit` runs over the whole page batch. Compared to
    /// [`Self::scan_pages`] — which holds the latch across every per-tuple
    /// visit on the page — the latch hold shrinks to a dense copy, and the
    /// visitor gets vectorizable columns instead of per-tuple dispatch.
    ///
    /// The batch buffer is reused across pages; `visit` must not retain
    /// references into it.
    pub fn scan_batches<F>(
        &self,
        range: std::ops::Range<u32>,
        specs: &[FieldSpec],
        mut visit: F,
    ) -> StorageResult<()>
    where
        F: FnMut(&RecordBatch) -> StorageResult<()>,
    {
        for spec in specs {
            spec.validate(self.record_len)?;
        }
        // Lazy per-page pinning, as in [`Self::scan_pages`].
        let end = range.end.min(self.pool.page_count());
        let start = range.start.min(end);
        let op = wh_obs::Timer::start();
        let mut page_reads = 0u64;
        let mut tuple_reads = 0u64;
        let mut batch = RecordBatch::default();
        let mut result = Ok(());
        for page_no in start..end {
            let page = match self.pool.fetch(page_no) {
                Ok(page) => page,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            {
                let guard = read_latch_timed(&page);
                guard.fill_batch(page_no, &mut batch);
            } // latch released: gather + visit run over the copied bytes
            drop(page); // unpin before the visitor runs
            page_reads += 1;
            tuple_reads += batch.len() as u64;
            batch.gather(specs);
            if let Err(e) = visit(&batch) {
                result = Err(e);
                break;
            }
        }
        self.stats.count_page_reads(page_reads);
        self.stats.count_tuple_reads(tuple_reads);
        wh_obs::histogram!("storage.heap.scan_partition_ns").record(op.elapsed_ns());
        result
    }

    /// Parallel twin of [`Self::scan_batches`]: contiguous page partitions,
    /// one reusable batch per worker, `visit(worker, batch)` from worker
    /// threads. Partitioning and error handling match
    /// [`Self::scan_parallel`].
    pub fn scan_batches_parallel<F>(
        &self,
        threads: usize,
        specs: &[FieldSpec],
        visit: F,
    ) -> StorageResult<()>
    where
        F: Fn(usize, &RecordBatch) -> StorageResult<()> + Sync,
    {
        let pages = self.page_count();
        let workers = threads.max(1).min(pages.max(1) as usize);
        if workers <= 1 {
            return self.scan_batches(0..pages, specs, |batch| visit(0, batch));
        }
        let chunk = (pages as usize).div_ceil(workers) as u32;
        let visit = &visit;
        // Propagate the coordinator's span across the worker threads; see
        // `scan_parallel`.
        let scan_ctx = wh_obs::trace::current();
        let mut results: Vec<StorageResult<()>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let start = w as u32 * chunk;
                    let end = (start + chunk).min(pages);
                    s.spawn(move || {
                        let _ts = wh_obs::trace_span_under!("storage.scan.partition", scan_ctx);
                        self.scan_batches(start..end, specs, |batch| visit(w, batch))
                    })
                })
                .collect();
            results = handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked")) // lint: allow(no-panic) — re-raises a scan-worker panic on the coordinator
                .collect();
        });
        results.into_iter().collect()
    }

    /// Collect all live `(rid, record)` pairs. Convenience over [`Self::scan`].
    pub fn scan_all(&self) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan(|rid, rec| {
            out.push((rid, rec.to_vec()));
            Ok(())
        })?;
        Ok(out)
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("record_len", &self.record_len)
            .field("pages", &self.page_count())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(record_len: usize) -> HeapFile {
        HeapFile::new(record_len, Arc::new(IoStats::new())).unwrap()
    }

    #[test]
    fn insert_read_delete() {
        let h = file(4);
        let rid = h.insert(&[1, 2, 3, 4]).unwrap();
        assert_eq!(h.read(rid).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(h.len(), 1);
        h.delete(rid).unwrap();
        assert!(h.read(rid).is_err());
        assert!(h.is_empty());
    }

    #[test]
    fn grows_across_pages() {
        let h = file(2048); // 2 records per page
        let rids: Vec<_> = (0..5)
            .map(|i| h.insert(&[i as u8; 2048]).unwrap())
            .collect();
        assert_eq!(h.page_count(), 3);
        assert_eq!(h.len(), 5);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.read(*rid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn freed_slots_are_reused() {
        let h = file(2048);
        let a = h.insert(&[1u8; 2048]).unwrap();
        let _b = h.insert(&[2u8; 2048]).unwrap();
        h.delete(a).unwrap();
        let c = h.insert(&[3u8; 2048]).unwrap();
        assert_eq!(c, a);
        assert_eq!(h.page_count(), 1);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = file(4);
        let rid = h.insert(&[1, 1, 1, 1]).unwrap();
        h.update_in_place(rid, &[2, 2, 2, 2]).unwrap();
        assert_eq!(h.read(rid).unwrap(), vec![2, 2, 2, 2]);
        assert!(h.update_in_place(rid, &[1]).is_err());
    }

    #[test]
    fn modify_read_modify_write() {
        let h = file(4);
        let rid = h.insert(&[10, 0, 0, 0]).unwrap();
        h.modify(rid, |cur| {
            let mut next = cur.to_vec();
            next[0] += 1;
            Ok(next)
        })
        .unwrap();
        assert_eq!(h.read(rid).unwrap()[0], 11);
    }

    #[test]
    fn scan_visits_everything_once() {
        let h = file(4);
        for i in 0..100u8 {
            h.insert(&[i, 0, 0, 0]).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|_, rec| {
            seen.push(rec[0]);
            Ok(())
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scan_pages_partitions_cover_exactly_once() {
        let h = file(512); // 8 records per page
        for i in 0..100u8 {
            h.insert(&[i; 512]).unwrap();
        }
        let pages = h.page_count();
        // Any split point yields the same multiset as a full scan.
        for split in [0, 1, pages / 2, pages] {
            let mut seen = Vec::new();
            for range in [0..split, split..pages] {
                h.scan_pages(range, |_, rec| {
                    seen.push(rec[0]);
                    Ok(())
                })
                .unwrap();
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }
        // Out-of-bounds ranges clamp instead of erroring.
        h.scan_pages(pages..pages + 10, |_, _| panic!("no pages there"))
            .unwrap();
    }

    #[test]
    fn scan_parallel_matches_serial_scan() {
        let h = file(256);
        for i in 0..500u16 {
            let mut rec = [0u8; 256];
            rec[..2].copy_from_slice(&i.to_le_bytes());
            h.insert(&rec).unwrap();
        }
        let mut serial = Vec::new();
        h.scan(|rid, rec| {
            serial.push((rid, rec[0], rec[1]));
            Ok(())
        })
        .unwrap();
        serial.sort();
        for threads in [1, 2, 4, 8, 64] {
            let parallel = Mutex::new(Vec::new());
            h.scan_parallel(threads, |_, rid, rec| {
                parallel.lock().unwrap().push((rid, rec[0], rec[1]));
                Ok(())
            })
            .unwrap();
            let mut parallel = parallel.into_inner().unwrap();
            parallel.sort();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn scan_parallel_propagates_errors() {
        let h = file(512);
        for i in 0..64u8 {
            h.insert(&[i; 512]).unwrap();
        }
        let err = h
            .scan_parallel(4, |_, _, rec| {
                if rec[0] == 40 {
                    Err(StorageError::NoSuchPage(999))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::NoSuchPage(999)));
    }

    #[test]
    fn scan_io_counters_batch_per_partition() {
        // The batched counters must equal what per-tuple counting reported.
        let stats = Arc::new(IoStats::new());
        let h = HeapFile::new(512, stats.clone()).unwrap();
        for i in 0..100u8 {
            h.insert(&[i; 512]).unwrap();
        }
        let before = stats.snapshot();
        h.scan(|_, _| Ok(())).unwrap();
        let after_serial = stats.snapshot();
        assert_eq!(
            after_serial.page_reads - before.page_reads,
            h.page_count() as u64
        );
        assert_eq!(after_serial.tuple_reads - before.tuple_reads, 100);
        h.scan_parallel(4, |_, _, _| Ok(())).unwrap();
        let after_parallel = stats.snapshot();
        assert_eq!(
            after_parallel.page_reads - after_serial.page_reads,
            h.page_count() as u64
        );
        assert_eq!(after_parallel.tuple_reads - after_serial.tuple_reads, 100);
    }

    #[test]
    fn retire_defers_slot_reuse_until_release() {
        let h = file(2048);
        let a = h.insert(&[1u8; 2048]).unwrap();
        let b = h.insert(&[2u8; 2048]).unwrap();
        let mut hooked = false;
        assert!(h
            .retire_if_then(a, |rec| rec[0] == 1, || hooked = true)
            .unwrap());
        assert!(hooked, "then-hook runs on retire");
        assert_eq!(h.len(), 1, "retired records are not live");
        assert!(h.read(a).is_err(), "retired rid reads as gone");
        assert_eq!(h.read(b).unwrap()[0], 2, "neighbours untouched");
        // The retired slot is not reusable: the next insert allocates page 1.
        let c = h.insert(&[3u8; 2048]).unwrap();
        assert_ne!(c.page, a.page);
        h.release(a).unwrap();
        let d = h.insert(&[4u8; 2048]).unwrap();
        assert_eq!(d, a, "released slot is reused");
    }

    #[test]
    fn retire_if_then_respects_predicate() {
        let h = file(4);
        let rid = h.insert(&[7, 0, 0, 0]).unwrap();
        assert!(!h.retire_if_then(rid, |rec| rec[0] == 9, || ()).unwrap());
        assert_eq!(h.read(rid).unwrap()[0], 7, "rejected retire is a no-op");
    }

    fn first_byte_spec() -> FieldSpec {
        // Test records have no null bitmap; treat byte 0 as both the field
        // and a never-set null byte by masking nothing.
        FieldSpec {
            offset: 0,
            width: 1,
            null_byte: 0,
            null_mask: 0,
        }
    }

    #[test]
    fn scan_batches_matches_scan() {
        let h = file(512); // 8 records per page
        for i in 0..100u8 {
            h.insert(&[i; 512]).unwrap();
        }
        // Punch some holes so batches are non-dense.
        for page in [0u32, 3] {
            h.delete(Rid::new(page, 2)).unwrap();
        }
        let mut serial = Vec::new();
        h.scan(|rid, rec| {
            serial.push((rid, rec[0]));
            Ok(())
        })
        .unwrap();
        let mut batched = Vec::new();
        h.scan_batches(0..h.page_count(), &[first_byte_spec()], |batch| {
            for (i, &slot) in batch.slots().iter().enumerate() {
                batched.push((Rid::new(batch.page_no(), slot), batch.record(i)[0]));
                assert_eq!(batch.field(0)[i], i64::from(batch.record(i)[0]));
            }
            Ok(())
        })
        .unwrap();
        serial.sort();
        batched.sort();
        assert_eq!(batched, serial);
    }

    #[test]
    fn scan_batches_parallel_matches_serial() {
        let h = file(256);
        for i in 0..500u16 {
            let mut rec = [0u8; 256];
            rec[..2].copy_from_slice(&i.to_le_bytes());
            h.insert(&rec).unwrap();
        }
        let mut serial = Vec::new();
        h.scan_batches(0..h.page_count(), &[], |batch| {
            for (i, &slot) in batch.slots().iter().enumerate() {
                serial.push((Rid::new(batch.page_no(), slot), batch.record(i).to_vec()));
            }
            Ok(())
        })
        .unwrap();
        serial.sort();
        for threads in [1, 2, 4, 8] {
            let parallel = Mutex::new(Vec::new());
            h.scan_batches_parallel(threads, &[], |_, batch| {
                let mut p = parallel.lock().unwrap();
                for (i, &slot) in batch.slots().iter().enumerate() {
                    p.push((Rid::new(batch.page_no(), slot), batch.record(i).to_vec()));
                }
                Ok(())
            })
            .unwrap();
            let mut parallel = parallel.into_inner().unwrap();
            parallel.sort();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn scan_batches_rejects_bad_specs() {
        let h = file(8);
        let bad = FieldSpec {
            offset: 6,
            width: 4,
            null_byte: 0,
            null_mask: 0,
        };
        assert!(h.scan_batches(0..1, &[bad], |_| Ok(())).is_err());
    }

    #[test]
    fn io_counters_track_operations() {
        let stats = Arc::new(IoStats::new());
        let h = HeapFile::new(4, stats.clone()).unwrap();
        let rid = h.insert(&[0u8; 4]).unwrap();
        let after_insert = stats.snapshot();
        assert_eq!(after_insert.page_writes, 1);
        assert_eq!(after_insert.tuple_writes, 1);
        h.read(rid).unwrap();
        let after_read = stats.snapshot();
        assert_eq!(after_read.tuple_reads, 1);
        assert!(after_read.page_reads > after_insert.page_reads);
    }

    #[test]
    fn concurrent_inserts_and_scans() {
        let h = Arc::new(file(16));
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..250u16 {
                        let mut rec = [0u8; 16];
                        rec[0] = t as u8;
                        rec[1..3].copy_from_slice(&i.to_le_bytes());
                        h.insert(&rec).unwrap();
                    }
                });
            }
            let h2 = Arc::clone(&h);
            s.spawn(move || {
                for _ in 0..10 {
                    let mut n = 0u32;
                    h2.scan(|_, _| {
                        n += 1;
                        Ok(())
                    })
                    .unwrap();
                    assert!(n <= 1000);
                }
            });
        });
        assert_eq!(h.len(), 1000);
    }
}
