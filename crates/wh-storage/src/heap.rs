//! Heap files: growable collections of latched pages.

use crate::error::{StorageError, StorageResult};
use crate::iostats::IoStats;
use crate::page::{Page, Rid};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// A heap file of fixed-width records.
///
/// Concurrency model (deliberately matching the paper's §4 substrate
/// requirements):
///
/// * Each page sits behind its own `RwLock` used as a **latch**: held only
///   for the duration of one record operation or one page visit during a
///   scan, never across an operation boundary, and never until commit.
/// * Readers therefore never block on writers beyond a single in-flight
///   tuple modification, and scans read "uncommitted" data by design — the
///   2VNL layer above makes that safe.
/// * Updates are **in place** and width-preserving.
///
/// Every page visit is counted against the shared [`IoStats`].
pub struct HeapFile {
    record_len: usize,
    pages: RwLock<Vec<Arc<RwLock<Page>>>>,
    /// Pages that may have free slots; checked before allocating a new page.
    free_pages: Mutex<Vec<u32>>,
    stats: Arc<IoStats>,
}

impl HeapFile {
    /// Create an empty heap file for records of `record_len` bytes.
    pub fn new(record_len: usize, stats: Arc<IoStats>) -> StorageResult<Self> {
        // Validate the width eagerly by building (and discarding) a page.
        Page::new(record_len)?;
        Ok(HeapFile {
            record_len,
            pages: RwLock::new(Vec::new()),
            free_pages: Mutex::new(Vec::new()),
            stats,
        })
    }

    /// Record width stored by this file.
    pub fn record_len(&self) -> usize {
        self.record_len
    }

    /// The I/O counters this file reports into.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.pages.read().len() as u32
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        let pages = self.pages.read();
        pages.iter().map(|p| p.read().live() as u64).sum()
    }

    /// Whether the file holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn page(&self, page_no: u32) -> StorageResult<Arc<RwLock<Page>>> {
        self.pages
            .read()
            .get(page_no as usize)
            .cloned()
            .ok_or(StorageError::NoSuchPage(page_no))
    }

    /// Insert a record, returning its RID.
    pub fn insert(&self, record: &[u8]) -> StorageResult<Rid> {
        loop {
            // Try a page believed to have room.
            let candidate = self.free_pages.lock().last().copied();
            if let Some(page_no) = candidate {
                let page = self.page(page_no)?;
                let mut guard = page.write();
                self.stats.count_page_reads(1);
                if let Some(slot) = guard.insert(record)? {
                    self.stats.count_page_writes(1);
                    self.stats.count_tuple_writes(1);
                    if !guard.has_room() {
                        self.free_pages.lock().retain(|&p| p != page_no);
                    }
                    return Ok(Rid::new(page_no, slot));
                }
                // Page filled up under us; drop it from the free list and retry.
                self.free_pages.lock().retain(|&p| p != page_no);
                continue;
            }
            // Allocate a new page.
            let mut pages = self.pages.write();
            let page_no = pages.len() as u32;
            pages.push(Arc::new(RwLock::new(Page::new(self.record_len)?)));
            drop(pages);
            self.free_pages.lock().push(page_no);
        }
    }

    /// Read the record at `rid` into an owned buffer.
    pub fn read(&self, rid: Rid) -> StorageResult<Vec<u8>> {
        let page = self.page(rid.page)?;
        let guard = page.read();
        self.stats.count_page_reads(1);
        let rec = guard.read(rid.page, rid.slot)?;
        self.stats.count_tuple_reads(1);
        Ok(rec.to_vec())
    }

    /// Overwrite the record at `rid` in place (width-preserving).
    pub fn update_in_place(&self, rid: Rid, record: &[u8]) -> StorageResult<()> {
        let page = self.page(rid.page)?;
        let mut guard = page.write();
        self.stats.count_page_reads(1);
        guard.update_in_place(rid.page, rid.slot, record)?;
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        Ok(())
    }

    /// Read-modify-write the record at `rid` under a single page latch.
    ///
    /// The closure sees the current image and returns the replacement (same
    /// width). This is the primitive the 2VNL maintenance decision tables
    /// need: the decision depends on the tuple's current `tupleVN`/`operation`
    /// and must be applied atomically with respect to concurrent scans.
    pub fn modify<F>(&self, rid: Rid, f: F) -> StorageResult<()>
    where
        F: FnOnce(&[u8]) -> StorageResult<Vec<u8>>,
    {
        let page = self.page(rid.page)?;
        let mut guard = page.write();
        self.stats.count_page_reads(1);
        let current = guard.read(rid.page, rid.slot)?.to_vec();
        let replacement = f(&current)?;
        guard.update_in_place(rid.page, rid.slot, &replacement)?;
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        Ok(())
    }

    /// Physically delete the record at `rid` only if `pred` approves its
    /// current image — checked and deleted under one page latch, so no
    /// concurrent modification can slip between the check and the delete.
    /// Returns whether the delete happened.
    pub fn delete_if<F>(&self, rid: Rid, pred: F) -> StorageResult<bool>
    where
        F: FnOnce(&[u8]) -> bool,
    {
        let page = self.page(rid.page)?;
        let mut guard = page.write();
        self.stats.count_page_reads(1);
        let current = guard.read(rid.page, rid.slot)?;
        if !pred(current) {
            return Ok(false);
        }
        guard.delete(rid.page, rid.slot)?;
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        drop(guard);
        let mut free = self.free_pages.lock();
        if !free.contains(&rid.page) {
            free.push(rid.page);
        }
        Ok(true)
    }

    /// Physically delete the record at `rid`.
    pub fn delete(&self, rid: Rid) -> StorageResult<()> {
        let page = self.page(rid.page)?;
        let mut guard = page.write();
        self.stats.count_page_reads(1);
        guard.delete(rid.page, rid.slot)?;
        self.stats.count_page_writes(1);
        self.stats.count_tuple_writes(1);
        let mut free = self.free_pages.lock();
        if !free.contains(&rid.page) {
            free.push(rid.page);
        }
        Ok(())
    }

    /// Scan all live records, invoking `visit` for each `(rid, record)`.
    ///
    /// The page latch is held only while visiting one page (copy-out
    /// happens inside), so a concurrent writer can slip between pages —
    /// exactly the read-uncommitted scan behaviour the paper's rewrite
    /// approach is built for. Tuples modified in place mid-scan are seen
    /// exactly once, in either their old or new image, never torn.
    pub fn scan<F>(&self, mut visit: F) -> StorageResult<()>
    where
        F: FnMut(Rid, &[u8]) -> StorageResult<()>,
    {
        let page_handles: Vec<_> = self.pages.read().iter().cloned().enumerate().collect();
        for (page_no, page) in page_handles {
            let guard = page.read();
            self.stats.count_page_reads(1);
            for (slot, rec) in guard.iter() {
                self.stats.count_tuple_reads(1);
                visit(Rid::new(page_no as u32, slot), rec)?;
            }
        }
        Ok(())
    }

    /// Collect all live `(rid, record)` pairs. Convenience over [`Self::scan`].
    pub fn scan_all(&self) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan(|rid, rec| {
            out.push((rid, rec.to_vec()));
            Ok(())
        })?;
        Ok(out)
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("record_len", &self.record_len)
            .field("pages", &self.page_count())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(record_len: usize) -> HeapFile {
        HeapFile::new(record_len, Arc::new(IoStats::new())).unwrap()
    }

    #[test]
    fn insert_read_delete() {
        let h = file(4);
        let rid = h.insert(&[1, 2, 3, 4]).unwrap();
        assert_eq!(h.read(rid).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(h.len(), 1);
        h.delete(rid).unwrap();
        assert!(h.read(rid).is_err());
        assert!(h.is_empty());
    }

    #[test]
    fn grows_across_pages() {
        let h = file(2048); // 2 records per page
        let rids: Vec<_> = (0..5).map(|i| h.insert(&[i as u8; 2048]).unwrap()).collect();
        assert_eq!(h.page_count(), 3);
        assert_eq!(h.len(), 5);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.read(*rid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn freed_slots_are_reused() {
        let h = file(2048);
        let a = h.insert(&[1u8; 2048]).unwrap();
        let _b = h.insert(&[2u8; 2048]).unwrap();
        h.delete(a).unwrap();
        let c = h.insert(&[3u8; 2048]).unwrap();
        assert_eq!(c, a);
        assert_eq!(h.page_count(), 1);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = file(4);
        let rid = h.insert(&[1, 1, 1, 1]).unwrap();
        h.update_in_place(rid, &[2, 2, 2, 2]).unwrap();
        assert_eq!(h.read(rid).unwrap(), vec![2, 2, 2, 2]);
        assert!(h.update_in_place(rid, &[1]).is_err());
    }

    #[test]
    fn modify_read_modify_write() {
        let h = file(4);
        let rid = h.insert(&[10, 0, 0, 0]).unwrap();
        h.modify(rid, |cur| {
            let mut next = cur.to_vec();
            next[0] += 1;
            Ok(next)
        })
        .unwrap();
        assert_eq!(h.read(rid).unwrap()[0], 11);
    }

    #[test]
    fn scan_visits_everything_once() {
        let h = file(4);
        for i in 0..100u8 {
            h.insert(&[i, 0, 0, 0]).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|_, rec| {
            seen.push(rec[0]);
            Ok(())
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn io_counters_track_operations() {
        let stats = Arc::new(IoStats::new());
        let h = HeapFile::new(4, stats.clone()).unwrap();
        let rid = h.insert(&[0u8; 4]).unwrap();
        let after_insert = stats.snapshot();
        assert_eq!(after_insert.page_writes, 1);
        assert_eq!(after_insert.tuple_writes, 1);
        h.read(rid).unwrap();
        let after_read = stats.snapshot();
        assert_eq!(after_read.tuple_reads, 1);
        assert!(after_read.page_reads > after_insert.page_reads);
    }

    #[test]
    fn concurrent_inserts_and_scans() {
        let h = Arc::new(file(16));
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move |_| {
                    for i in 0..250u16 {
                        let mut rec = [0u8; 16];
                        rec[0] = t as u8;
                        rec[1..3].copy_from_slice(&i.to_le_bytes());
                        h.insert(&rec).unwrap();
                    }
                });
            }
            let h2 = Arc::clone(&h);
            s.spawn(move |_| {
                for _ in 0..10 {
                    let mut n = 0u32;
                    h2.scan(|_, _| {
                        n += 1;
                        Ok(())
                    })
                    .unwrap();
                    assert!(n <= 1000);
                }
            });
        })
        .unwrap();
        assert_eq!(h.len(), 1000);
    }
}
