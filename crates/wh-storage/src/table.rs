//! Typed table facade: schema + codec + heap file.

use crate::error::StorageResult;
use crate::heap::HeapFile;
use crate::iostats::IoStats;
use crate::page::Rid;
use std::sync::Arc;
use wh_types::{Row, RowCodec, Schema};

/// A relation stored in a heap file, with row-level encode/decode.
///
/// This is the storage-facing view of a table; query processing (`wh-sql`)
/// and the 2VNL layer (`wh-vnl`) both operate through it.
pub struct Table {
    name: String,
    codec: RowCodec,
    heap: HeapFile,
}

impl Table {
    /// Create an empty table.
    pub fn create(
        name: impl Into<String>,
        schema: Schema,
        stats: Arc<IoStats>,
    ) -> StorageResult<Self> {
        let codec = RowCodec::new(schema);
        let heap = HeapFile::new(codec.encoded_len(), stats)?;
        Ok(Table {
            name: name.into(),
            codec,
            heap,
        })
    }

    /// Create an empty disk-backed table in `dir` with a buffer pool of at
    /// most `capacity` resident pages.
    pub fn create_backed(
        name: impl Into<String>,
        schema: Schema,
        dir: &std::path::Path,
        capacity: usize,
        stats: Arc<IoStats>,
    ) -> StorageResult<Self> {
        let codec = RowCodec::new(schema);
        let heap = HeapFile::create_backed(codec.encoded_len(), dir, capacity, stats)?;
        Ok(Table {
            name: name.into(),
            codec,
            heap,
        })
    }

    /// Reopen a disk-backed table from its directory. The caller supplies
    /// the schema (the checkpoint record persists only the record width);
    /// a width mismatch against the supplied schema's codec is rejected as
    /// corruption before any page is decoded.
    pub fn open_backed(
        name: impl Into<String>,
        schema: Schema,
        dir: &std::path::Path,
        capacity: usize,
        stats: Arc<IoStats>,
    ) -> StorageResult<Self> {
        let codec = RowCodec::new(schema);
        let meta = crate::checkpoint::CheckpointMeta::read(dir)?;
        if meta.record_len as usize != codec.encoded_len() {
            return Err(crate::error::StorageError::Corrupt(format!(
                "checkpoint record width {} does not match schema width {}",
                meta.record_len,
                codec.encoded_len()
            )));
        }
        let heap = HeapFile::open_backed(codec.encoded_len(), dir, capacity, stats)?;
        Ok(Table {
            name: name.into(),
            codec,
            heap,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.codec.schema()
    }

    /// The row codec (exposes the stored tuple width).
    pub fn codec(&self) -> &RowCodec {
        &self.codec
    }

    /// The underlying heap file.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// Live row count.
    pub fn len(&self) -> u64 {
        self.heap.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a row; returns its RID.
    pub fn insert(&self, row: &[wh_types::Value]) -> StorageResult<Rid> {
        let buf = self.codec.encode(row)?;
        self.heap.insert(&buf)
    }

    /// Read the row at `rid`.
    pub fn read(&self, rid: Rid) -> StorageResult<Row> {
        let buf = self.heap.read(rid)?;
        Ok(self.codec.decode(&buf)?)
    }

    /// Replace the row at `rid` in place.
    pub fn update(&self, rid: Rid, row: &[wh_types::Value]) -> StorageResult<()> {
        let buf = self.codec.encode(row)?;
        self.heap.update_in_place(rid, &buf)
    }

    /// Read-modify-write the row at `rid` under one page latch.
    pub fn modify<F>(&self, rid: Rid, f: F) -> StorageResult<()>
    where
        F: FnOnce(Row) -> StorageResult<Row>,
    {
        self.heap.modify(rid, |buf| {
            let row = self.codec.decode(buf)?;
            let next = f(row)?;
            Ok(self.codec.encode(&next)?)
        })
    }

    /// Physically delete the row at `rid`.
    pub fn delete(&self, rid: Rid) -> StorageResult<()> {
        self.heap.delete(rid)
    }

    /// Delete the row at `rid` only if `pred` approves its current value,
    /// atomically under the page latch. Returns whether it was deleted.
    pub fn delete_if<F>(&self, rid: Rid, pred: F) -> StorageResult<bool>
    where
        F: FnOnce(&Row) -> bool,
    {
        self.delete_if_then(rid, pred, || ())
    }

    /// [`Table::delete_if`] plus a hook run under the same page latch after
    /// the delete — see [`Heap::delete_if_then`] for why cleanup that must
    /// not interleave with slot reuse belongs inside the latch.
    pub fn delete_if_then<F, G>(&self, rid: Rid, pred: F, then: G) -> StorageResult<bool>
    where
        F: FnOnce(&Row) -> bool,
        G: FnOnce(),
    {
        self.heap.delete_if_then(
            rid,
            |buf| match self.codec.decode(buf) {
                Ok(row) => pred(&row),
                Err(_) => false,
            },
            then,
        )
    }

    /// Retire the row at `rid` if `pred` approves its current value,
    /// atomically under the page latch, with `then` run under the same
    /// latch. A retired slot is invisible but **not reusable** until
    /// [`Table::release`] — see [`HeapFile::retire_if_then`].
    pub fn retire_if_then<F, G>(&self, rid: Rid, pred: F, then: G) -> StorageResult<bool>
    where
        F: FnOnce(&Row) -> bool,
        G: FnOnce(),
    {
        self.heap.retire_if_then(
            rid,
            |buf| match self.codec.decode(buf) {
                Ok(row) => pred(&row),
                Err(_) => false,
            },
            then,
        )
    }

    /// Release a retired slot for reuse (the caller has proven, via the
    /// epoch grace period, that no reader still holds its RID).
    pub fn release(&self, rid: Rid) -> StorageResult<()> {
        self.heap.release(rid)
    }

    /// Visit every live row.
    pub fn scan<F>(&self, mut visit: F) -> StorageResult<()>
    where
        F: FnMut(Rid, Row) -> StorageResult<()>,
    {
        self.heap.scan(|rid, buf| {
            let row = self.codec.decode(buf)?;
            visit(rid, row)
        })
    }

    /// Visit every live row with `threads` workers over contiguous page
    /// partitions; `visit(worker, rid, row)` runs on worker threads.
    pub fn scan_parallel<F>(&self, threads: usize, visit: F) -> StorageResult<()>
    where
        F: Fn(usize, Rid, Row) -> StorageResult<()> + Sync,
    {
        self.heap.scan_parallel(threads, |worker, rid, buf| {
            let row = self.codec.decode(buf)?;
            visit(worker, rid, row)
        })
    }

    /// Collect all live rows with their RIDs.
    pub fn scan_all(&self) -> StorageResult<Vec<(Rid, Row)>> {
        let mut out = Vec::new();
        self.scan(|rid, row| {
            out.push((rid, row));
            Ok(())
        })?;
        Ok(out)
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::schema::daily_sales_schema;
    use wh_types::{Date, Value};

    fn sample_table() -> Table {
        Table::create("DailySales", daily_sales_schema(), Arc::new(IoStats::new())).unwrap()
    }

    fn row(city: &str, sales: i64) -> Row {
        vec![
            Value::from(city),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(sales),
        ]
    }

    #[test]
    fn typed_round_trip() {
        let t = sample_table();
        let r = row("San Jose", 10_000);
        let rid = t.insert(&r).unwrap();
        assert_eq!(t.read(rid).unwrap(), r);
    }

    #[test]
    fn update_and_modify() {
        let t = sample_table();
        let rid = t.insert(&row("San Jose", 10_000)).unwrap();
        let mut r = row("San Jose", 12_000);
        t.update(rid, &r).unwrap();
        assert_eq!(t.read(rid).unwrap()[4], Value::from(12_000));
        t.modify(rid, |mut cur| {
            cur[4] = cur[4].add(&Value::from(500)).unwrap();
            Ok(cur)
        })
        .unwrap();
        r[4] = Value::from(12_500);
        assert_eq!(t.read(rid).unwrap(), r);
    }

    #[test]
    fn scan_all_returns_rows() {
        let t = sample_table();
        t.insert(&row("San Jose", 1)).unwrap();
        t.insert(&row("Berkeley", 2)).unwrap();
        let mut sales: Vec<i64> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(_, r)| r[4].as_int().unwrap())
            .collect();
        sales.sort_unstable();
        assert_eq!(sales, vec![1, 2]);
    }

    #[test]
    fn scan_parallel_agrees_with_scan_all() {
        let t = sample_table();
        for i in 0..300 {
            t.insert(&row(&format!("city{i:03}"), i)).unwrap();
        }
        let mut serial = t.scan_all().unwrap();
        serial.sort_by_key(|(rid, _)| *rid);
        let collected = std::sync::Mutex::new(Vec::new());
        t.scan_parallel(4, |_, rid, r| {
            collected.lock().unwrap().push((rid, r));
            Ok(())
        })
        .unwrap();
        let mut parallel = collected.into_inner().unwrap();
        parallel.sort_by_key(|(rid, _)| *rid);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn delete_removes_row() {
        let t = sample_table();
        let rid = t.insert(&row("San Jose", 1)).unwrap();
        t.delete(rid).unwrap();
        assert!(t.is_empty());
        assert!(t.read(rid).is_err());
    }

    #[test]
    fn schema_violations_surface() {
        let t = sample_table();
        assert!(t.insert(&[Value::Int(1)]).is_err());
    }
}
