//! Storage substrate for the `warehouse-2vnl` system.
//!
//! The paper implements 2VNL *on top of* a conventional relational DBMS and
//! requires exactly two properties of its storage layer (§4):
//!
//! 1. While a tuple is being modified, a **latch** (short-duration lock) on
//!    the tuple/page keeps readers from seeing a partly-modified tuple; the
//!    latch is released as soon as the modification completes, *not* at
//!    transaction commit. No write locks are held against readers.
//! 2. Physical tuple updates happen **in place**, so a scanning reader never
//!    sees two physical records for one tuple.
//!
//! This crate provides that substrate: fixed-slot pages guarded by
//! `parking_lot` RwLocks (the latches), a heap file with a free list, and a
//! typed [`Table`] facade. Every page access is counted in [`IoStats`] so the
//! §6 I/O comparisons against 2V2PL/MV2PL are measurable rather than assumed.

pub mod batch;
pub mod bufpool;
pub mod checkpoint;
pub mod disk;
pub mod error;
pub mod heap;
pub mod iostats;
pub mod page;
pub mod table;

pub use batch::{FieldSpec, RecordBatch, NULL_SENTINEL};
pub use bufpool::{BufferPool, PagePin};
pub use checkpoint::{CheckpointMeta, CheckpointStats, VersionMeta, META_FILE};
pub use disk::DiskFile;
pub use error::{StorageError, StorageResult};
pub use heap::{HeapFile, FAILPOINTS, PAGES_FILE};
pub use iostats::IoStats;
pub use page::{Page, Rid, PAGE_SIZE};
pub use table::Table;
