//! Page-level batch accessor: column-strided gathers over copied records.
//!
//! The scalar scan path holds a page's read latch for the whole visit —
//! decode, visibility test, and the visitor all run under it. The batch
//! path instead copies the page's live records into a [`RecordBatch`] in
//! one dense `memcpy` (the only work under the latch) and then, off-latch,
//! *gathers* the version fields every record shares — the `(tupleVN_j,
//! operation_j)` pairs of the 2VNL/nVNL layout — into column-strided `i64`
//! arrays. The Table-1 visibility test then runs as tight loops over those
//! arrays (see `wh_vnl::scan::BatchScanner`) instead of per-tuple byte
//! dispatch, and only the selected records are decoded at all.
//!
//! The batch is storage-schema-agnostic: callers describe each field to
//! gather with a [`FieldSpec`] (byte offset, width, null-bitmap position),
//! which the heap validates against the record width once per scan.

use crate::error::{StorageError, StorageResult};

/// Sentinel gathered for a NULL field. Version numbers and operation bytes
/// are small non-negative values, so `i64::MIN` is unambiguous.
pub const NULL_SENTINEL: i64 = i64::MIN;

/// One fixed-width field to gather from every record of a batch.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// Byte offset of the field within the record (including the null
    /// bitmap prefix).
    pub offset: usize,
    /// Field width in bytes: 1 (u8), 4 (i32/u32 LE) or 8 (i64 LE).
    pub width: usize,
    /// Byte of the null bitmap holding this field's null bit.
    pub null_byte: usize,
    /// Mask selecting the null bit within that byte.
    pub null_mask: u8,
}

impl FieldSpec {
    /// Check the spec stays inside a record of `record_len` bytes and has
    /// a gatherable width. Run once per scan, so the per-record loops can
    /// use unchecked indexing.
    pub fn validate(&self, record_len: usize) -> StorageResult<()> {
        let ok = matches!(self.width, 1 | 4 | 8)
            && self
                .offset
                .checked_add(self.width)
                .is_some_and(|end| end <= record_len)
            && self.null_byte < record_len;
        if ok {
            Ok(())
        } else {
            Err(StorageError::RecordTooLarge(self.offset + self.width))
        }
    }
}

/// The live records of one page, copied out dense, plus their gathered
/// field columns. Reused across pages by the scan driver to amortize
/// allocations.
#[derive(Debug, Default)]
pub struct RecordBatch {
    page_no: u32,
    record_len: usize,
    slots: Vec<u16>,
    bytes: Vec<u8>,
    fields: Vec<Vec<i64>>,
}

impl RecordBatch {
    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Page this batch was copied from.
    pub fn page_no(&self) -> u32 {
        self.page_no
    }

    /// The slot numbers of the copied records, in batch order.
    pub fn slots(&self) -> &[u16] {
        &self.slots
    }

    /// The raw bytes of record `i`.
    pub fn record(&self, i: usize) -> &[u8] {
        &self.bytes[i * self.record_len..(i + 1) * self.record_len]
    }

    /// Gathered column `f` (one `i64` per record; NULLs are
    /// [`NULL_SENTINEL`]).
    pub fn field(&self, f: usize) -> &[i64] {
        &self.fields[f]
    }

    /// Reset for refilling from a new page (called under the page latch —
    /// keep it trivial).
    pub(crate) fn begin(&mut self, page_no: u32, record_len: usize, capacity: usize) {
        self.page_no = page_no;
        self.record_len = record_len;
        self.slots.clear();
        self.bytes.clear();
        self.slots.reserve(capacity);
        self.bytes.reserve(capacity * record_len);
    }

    /// Append one live record (called under the page latch).
    pub(crate) fn push_record(&mut self, slot: u16, record: &[u8]) {
        self.slots.push(slot);
        self.bytes.extend_from_slice(record);
    }

    /// Append a dense run of records `[0, count)` in one copy (the
    /// fast path for fully-live pages; called under the page latch).
    pub(crate) fn push_dense(&mut self, count: u16, data: &[u8]) {
        self.slots.extend(0..count);
        self.bytes.extend_from_slice(data);
    }

    /// Gather the requested fields into column-strided arrays. Runs
    /// *after* the page latch is released: it touches only the copied
    /// bytes. `specs` must have been validated against `record_len`.
    pub(crate) fn gather(&mut self, specs: &[FieldSpec]) {
        let n = self.slots.len();
        self.fields.resize_with(specs.len(), Vec::new);
        for (f, spec) in specs.iter().enumerate() {
            let col = &mut self.fields[f];
            col.clear();
            col.reserve(n);
            let rl = self.record_len;
            let bytes = &self.bytes[..];
            debug_assert!(bytes.len() == n * rl);
            debug_assert!(spec.offset + spec.width <= rl && spec.null_byte < rl);
            for i in 0..n {
                let base = i * rl;
                // safety: `begin`/`push_*` maintain `bytes.len() == n * rl`,
                // and `FieldSpec::validate` proved `null_byte < rl` and
                // `offset + width <= rl`, so every index below is in
                // bounds for record `i`.
                let v = unsafe {
                    if bytes.get_unchecked(base + spec.null_byte) & spec.null_mask != 0 {
                        NULL_SENTINEL
                    } else {
                        let p = bytes.as_ptr().add(base + spec.offset);
                        match spec.width {
                            1 => i64::from(*p),
                            4 => i64::from(i32::from_le_bytes(std::ptr::read_unaligned(
                                p as *const [u8; 4],
                            ))),
                            _ => i64::from_le_bytes(std::ptr::read_unaligned(p as *const [u8; 8])),
                        }
                    }
                };
                col.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(offset: usize, width: usize, bit: usize) -> FieldSpec {
        FieldSpec {
            offset,
            width,
            null_byte: bit / 8,
            null_mask: 1 << (bit % 8),
        }
    }

    /// Records: 1 bitmap byte, then a u8 field and an i64 field.
    fn record(bitmap: u8, a: u8, b: i64) -> Vec<u8> {
        let mut r = vec![bitmap, a];
        r.extend_from_slice(&b.to_le_bytes());
        r
    }

    #[test]
    fn gather_reads_fields_and_nulls() {
        let mut batch = RecordBatch::default();
        batch.begin(7, 10, 4);
        batch.push_record(0, &record(0, 5, -1));
        batch.push_record(2, &record(0b10, 9, 1 << 40));
        batch.push_record(3, &record(0b01, 9, 3));
        let specs = [spec(1, 1, 0), spec(2, 8, 1)];
        for s in &specs {
            s.validate(10).unwrap();
        }
        batch.gather(&specs);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.page_no(), 7);
        assert_eq!(batch.slots(), &[0, 2, 3]);
        assert_eq!(batch.field(0), &[5, 9, NULL_SENTINEL]);
        assert_eq!(batch.field(1), &[-1, NULL_SENTINEL, 3]);
        assert_eq!(batch.record(1)[1], 9);
    }

    #[test]
    fn gather_i32_field_sign_extends() {
        let mut batch = RecordBatch::default();
        batch.begin(0, 5, 1);
        let mut r = vec![0u8];
        r.extend_from_slice(&(-7i32).to_le_bytes());
        batch.push_record(4, &r);
        batch.gather(&[spec(1, 4, 3)]);
        assert_eq!(batch.field(0), &[-7]);
    }

    #[test]
    fn reuse_resets_columns() {
        let mut batch = RecordBatch::default();
        batch.begin(0, 10, 2);
        batch.push_record(0, &record(0, 1, 2));
        batch.gather(&[spec(1, 1, 0)]);
        assert_eq!(batch.field(0), &[1]);
        batch.begin(1, 10, 2);
        batch.push_dense(2, &[record(0, 3, 4), record(0, 5, 6)].concat());
        batch.gather(&[spec(1, 1, 0)]);
        assert_eq!(batch.slots(), &[0, 1]);
        assert_eq!(batch.field(0), &[3, 5]);
    }

    #[test]
    fn validate_rejects_out_of_range_specs() {
        assert!(spec(8, 4, 0).validate(10).is_err(), "field past the end");
        assert!(spec(0, 3, 0).validate(10).is_err(), "odd width");
        assert!(
            FieldSpec {
                offset: 0,
                width: 1,
                null_byte: 10,
                null_mask: 1
            }
            .validate(10)
            .is_err(),
            "null byte past the end"
        );
        assert!(spec(2, 8, 7).validate(10).is_ok());
    }
}
