//! The checkpoint metadata record: version-state globals persisted
//! atomically at checkpoint end.
//!
//! A checkpoint is *fuzzy*: the version snapshot `V` is captured at
//! checkpoint **begin**, then dirty pages flush while readers and the
//! maintenance writer keep running, and only at the **end** is this record
//! written — temp file, fsync, atomic rename — making the checkpoint real.
//! Any maintenance activity that lands on disk mid-flush carries
//! `tupleVN > V` and is uniformly rolled back by the §7 recovery pass, so
//! the record needs no page LSNs, no dirty-page table, no log anchors: just
//! the version globals as of `V`.
//!
//! A crash between begin and the rename leaves the *previous* record intact
//! (rename is atomic), so recovery always finds some complete checkpoint —
//! or none, which is an explicit "nothing durable yet" state.
//!
//! This record is also the durable form of the one-tuple `Version` mirror
//! relation: the mirror itself is *not* persisted as a table, it is
//! reconstructed from these fields on recovery.

use crate::disk::fnv1a_64;
use crate::error::{StorageError, StorageResult};
use std::path::{Path, PathBuf};
use wh_types::fail_point;

/// `"2VNLCKPT"` as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"2VNLCKPT");

/// On-disk record format version.
const FORMAT: u32 = 1;

/// Encoded size: 48 payload bytes + 8 checksum.
const LEN: usize = 56;

/// File name of the checkpoint record within a durable table's directory.
pub const META_FILE: &str = "checkpoint.meta";

/// The version-state globals a checkpoint persists (fields as of the
/// begin-snapshot `V`, except `page_count`/`record_len`, which describe the
/// page file for validation on reopen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// `currentVN` at checkpoint begin — the recovery target version.
    pub current_vn: u64,
    /// Whether a maintenance transaction was active at begin. Recovery
    /// clears it after the slot-reconstruction pass.
    pub maintenance_active: bool,
    /// The recovery fence at begin; restored, then possibly raised further
    /// by the §7 pass.
    pub recovery_floor: u64,
    /// The GC/lease horizon at begin (min active session VN clamped to
    /// `current_vn`): telemetry for the recovery report — sessions do not
    /// survive a restart, so it constrains nothing afterwards.
    pub gc_horizon: u64,
    /// Pages allocated at checkpoint end. Validation only — recovery sizes
    /// the heap from the page-file length, which may exceed this when
    /// post-checkpoint allocations were stolen to disk.
    pub page_count: u32,
    /// Record width of the page file, validated against the reopening
    /// table's codec.
    pub record_len: u32,
}

impl CheckpointMeta {
    fn meta_path(dir: &Path) -> PathBuf {
        dir.join(META_FILE)
    }

    fn encode(&self) -> [u8; LEN] {
        let mut buf = [0u8; LEN];
        buf[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        buf[8..12].copy_from_slice(&FORMAT.to_le_bytes());
        buf[12..16].copy_from_slice(&self.record_len.to_le_bytes());
        buf[16..24].copy_from_slice(&self.current_vn.to_le_bytes());
        // lint: allow(version-encapsulation) — CheckpointMeta's own POD field
        buf[24..32].copy_from_slice(&self.recovery_floor.to_le_bytes());
        buf[32..40].copy_from_slice(&self.gc_horizon.to_le_bytes());
        buf[40..44].copy_from_slice(&self.page_count.to_le_bytes());
        buf[44] = u8::from(self.maintenance_active);
        let checksum = fnv1a_64(&[&buf[0..48]]);
        buf[48..56].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Persist the record atomically: write a temp file, fsync it, rename
    /// over the live record. The rename is the commit point of the whole
    /// checkpoint.
    pub fn write(&self, dir: &Path) -> StorageResult<()> {
        // trace: the checkpoint's commit point — span it under the caller.
        let _ts = wh_obs::trace_span!("storage.ckpt.meta_commit");
        fail_point!("storage.ckpt.meta");
        let tmp = dir.join(format!("{META_FILE}.tmp"));
        let buf = self.encode();
        let file = std::fs::File::create(&tmp).map_err(StorageError::io)?;
        use std::io::Write as _;
        (&file).write_all(&buf).map_err(StorageError::io)?;
        file.sync_all().map_err(StorageError::io)?;
        drop(file);
        std::fs::rename(&tmp, Self::meta_path(dir)).map_err(StorageError::io)?;
        Ok(())
    }

    /// Load and validate the checkpoint record. A missing file is the
    /// explicit "no checkpoint has ever completed" error.
    pub fn read(dir: &Path) -> StorageResult<CheckpointMeta> {
        // trace: restart's first read — span it under the restart root.
        let _ts = wh_obs::trace_span!("storage.ckpt.meta_read");
        fail_point!("storage.disk.read");
        let path = Self::meta_path(dir);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::Corrupt(format!(
                    "no checkpoint record at {}: nothing durable to recover",
                    path.display()
                )))
            }
            Err(e) => return Err(StorageError::io(e)),
        };
        let corrupt = |what: &str| StorageError::Corrupt(format!("checkpoint record: {what}"));
        if buf.len() != LEN {
            return Err(corrupt("wrong length"));
        }
        let field_u64 = |r: std::ops::Range<usize>| {
            u64::from_le_bytes(buf[r].try_into().expect("8-byte field")) // lint: allow(no-panic) — fixed-width slice of a length-checked buffer
        };
        let field_u32 = |r: std::ops::Range<usize>| {
            u32::from_le_bytes(buf[r].try_into().expect("4-byte field")) // lint: allow(no-panic) — fixed-width slice of a length-checked buffer
        };
        if field_u64(0..8) != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if field_u32(8..12) != FORMAT {
            return Err(corrupt("unknown format version"));
        }
        if fnv1a_64(&[&buf[0..48]]) != field_u64(48..56) {
            return Err(corrupt("checksum mismatch"));
        }
        Ok(CheckpointMeta {
            current_vn: field_u64(16..24),
            maintenance_active: buf[44] != 0,
            recovery_floor: field_u64(24..32),
            gc_horizon: field_u64(32..40),
            page_count: field_u32(40..44),
            record_len: field_u32(12..16),
        })
    }
}

/// The version-state globals the caller captured at checkpoint **begin**
/// (before any page flushed — the ordering the fuzzy-checkpoint argument
/// rests on). The heap adds the page-file facts at checkpoint end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionMeta {
    /// `currentVN` at begin.
    pub current_vn: u64,
    /// `maintenanceActive` at begin.
    pub maintenance_active: bool,
    /// Recovery fence at begin.
    pub recovery_floor: u64,
    /// GC/lease horizon at begin.
    pub gc_horizon: u64,
}

/// What a completed checkpoint did (surfaced through `wh-vnl` and the
/// `report_durability` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Dirty pages written by the flush pass.
    pub pages_flushed: u64,
    /// The begin-snapshot version the checkpoint is consistent at.
    pub checkpoint_vn: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed); // ordering: id-alloc Relaxed — unique-name counter only
        let dir = std::env::temp_dir().join(format!("wh-ckpt-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> CheckpointMeta {
        CheckpointMeta {
            current_vn: 17,
            maintenance_active: true,
            recovery_floor: 3,
            gc_horizon: 15,
            page_count: 42,
            record_len: 128,
        }
    }

    #[test]
    fn round_trip() {
        let dir = temp_dir("rt");
        sample().write(&dir).unwrap();
        assert_eq!(CheckpointMeta::read(&dir).unwrap(), sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = temp_dir("rw");
        sample().write(&dir).unwrap();
        let newer = CheckpointMeta {
            current_vn: 18,
            maintenance_active: false,
            ..sample()
        };
        newer.write(&dir).unwrap();
        assert_eq!(CheckpointMeta::read(&dir).unwrap(), newer);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_corrupt_records_error() {
        let dir = temp_dir("bad");
        assert!(matches!(
            CheckpointMeta::read(&dir),
            Err(StorageError::Corrupt(_))
        ));
        sample().write(&dir).unwrap();
        // Flip a payload byte: checksum catches it.
        let path = dir.join(META_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            CheckpointMeta::read(&dir),
            Err(StorageError::Corrupt(_))
        ));
        // Truncation is caught before field decoding.
        std::fs::write(&path, &bytes[..30]).unwrap();
        assert!(matches!(
            CheckpointMeta::read(&dir),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_file_is_ignored() {
        let dir = temp_dir("tmp");
        sample().write(&dir).unwrap();
        // A crash between tmp-write and rename leaves a tmp file behind;
        // reads only ever look at the live record.
        std::fs::write(dir.join(format!("{META_FILE}.tmp")), b"garbage").unwrap();
        assert_eq!(CheckpointMeta::read(&dir).unwrap(), sample());
        std::fs::remove_dir_all(&dir).ok();
    }
}
