//! The buffer-pool frame kernel: per-frame dirty/referenced bits and the
//! clock-eviction verdict.
//!
//! This is the concurrency-bearing core of `wh_storage`'s buffer pool,
//! stripped of the I/O it gates (page serialization, `write_at`, metrics).
//! The production pool's protocol, which the model tests explore
//! exhaustively:
//!
//! * A frame's **pin count** is the number of outstanding page handles
//!   beyond the frame's own (in production: `Arc::strong_count − 1`, read
//!   under the frame's state write latch, which excludes the handle-cloning
//!   fast path that runs under the state read latch).
//! * [`FrameCore::evict_verdict`] is consulted only under that latch; a
//!   verdict of [`EvictVerdict::MustFlush`] obliges the caller to write the
//!   page image *before* dropping it, and a pinned frame is never dropped.
//! * The dirty bit is set while holding the page's own write latch;
//!   flushers [`FrameCore::clear_dirty`] (an atomic swap) *before* reading
//!   the page bytes under the page read latch — a writer racing the flush
//!   either lands its bytes before the flusher's read, or re-marks the
//!   frame dirty after it, so no update is ever silently clean.

use crate::sync::atomic::{AtomicBool, Ordering};

/// What the clock hand should do with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictVerdict {
    /// Outstanding page handles exist: skip, never evict.
    Pinned,
    /// The reference bit was set; it has been cleared (second chance) —
    /// skip on this sweep.
    SecondChance,
    /// Unpinned, unreferenced, clean: safe to drop without I/O.
    Clean,
    /// Unpinned, unreferenced, dirty: the caller must write the page image
    /// out before dropping it.
    MustFlush,
}

/// Per-frame eviction state: a dirty bit and a clock reference bit.
#[derive(Debug, Default)]
pub struct FrameCore {
    dirty: AtomicBool,
    referenced: AtomicBool,
}

impl FrameCore {
    /// A clean, unreferenced frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the frame's page has unwritten modifications. Called
    /// while the caller holds the page write latch, so it can never race a
    /// flusher's bytes-read of the same modification.
    pub fn mark_dirty(&self) {
        // ordering: pool-frame SeqCst — uniform with the rest of the frame protocol;
        // the page latch is the real publication edge for the bytes, this
        // bit only schedules I/O.
        self.dirty.store(true, Ordering::SeqCst);
    }

    /// Whether the frame's page has unwritten modifications.
    pub fn is_dirty(&self) -> bool {
        // ordering: pool-frame SeqCst — uniform with the rest of the frame protocol.
        self.dirty.load(Ordering::SeqCst)
    }

    /// Claim the dirty bit for a flush: atomically clear it and report
    /// whether it was set. The swap (rather than load-then-store) closes
    /// the lost-update window between two racing flushers — exactly one
    /// observes `true` and performs the write.
    pub fn clear_dirty(&self) -> bool {
        // ordering: pool-frame SeqCst — the claim must not reorder after the flusher's
        // subsequent page-bytes read; a writer blocked on the page latch
        // re-marks after that read completes.
        self.dirty.swap(false, Ordering::SeqCst)
    }

    /// Record a page access (fetch hit or miss) for clock second-chance.
    pub fn mark_referenced(&self) {
        // ordering: pool-frame SeqCst — uniform; the bit is a heuristic, but keeping
        // one ordering across the protocol keeps the model and production
        // identical.
        self.referenced.store(true, Ordering::SeqCst);
    }

    /// The clock-hand decision for a frame whose state latch the caller
    /// holds. `pins` is the number of outstanding page handles beyond the
    /// frame's own; the latch guarantees no new handle appears while the
    /// verdict is acted on.
    pub fn evict_verdict(&self, pins: usize) -> EvictVerdict {
        if pins > 0 {
            return EvictVerdict::Pinned;
        }
        // ordering: pool-frame SeqCst — clearing the reference bit is the second
        // chance itself; a concurrent fetch re-sets it and the next sweep
        // sees the frame referenced again.
        if self.referenced.swap(false, Ordering::SeqCst) {
            return EvictVerdict::SecondChance;
        }
        if self.is_dirty() {
            EvictVerdict::MustFlush
        } else {
            EvictVerdict::Clean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_frames_are_never_evictable() {
        let c = FrameCore::new();
        c.mark_dirty();
        c.mark_referenced();
        assert_eq!(c.evict_verdict(1), EvictVerdict::Pinned);
        assert_eq!(c.evict_verdict(3), EvictVerdict::Pinned);
        // The pinned verdict consumed no state: the reference bit is still
        // set for the unpinned sweep.
        assert_eq!(c.evict_verdict(0), EvictVerdict::SecondChance);
    }

    #[test]
    fn second_chance_then_flush_then_clean() {
        let c = FrameCore::new();
        c.mark_dirty();
        c.mark_referenced();
        assert_eq!(c.evict_verdict(0), EvictVerdict::SecondChance);
        assert_eq!(c.evict_verdict(0), EvictVerdict::MustFlush);
        assert!(c.clear_dirty(), "the flusher claims the dirty bit");
        assert_eq!(c.evict_verdict(0), EvictVerdict::Clean);
    }

    #[test]
    fn clear_dirty_claims_exactly_once() {
        let c = FrameCore::new();
        assert!(!c.clear_dirty(), "clean frame: nothing to claim");
        c.mark_dirty();
        assert!(c.clear_dirty());
        assert!(!c.clear_dirty(), "second claimant sees clean");
        c.mark_dirty();
        assert!(c.is_dirty(), "re-dirty after flush is a fresh claim");
    }
}
