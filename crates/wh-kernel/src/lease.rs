//! The lease-registry kernel: slot bookkeeping for reader-session leases.
//!
//! This is the latched core of `wh_vnl::resilience::LeaseRegistry`: the
//! wrapper supplies wall-clock deadlines (`Instant`) and telemetry; the
//! kernel is generic over the timestamp type so the model tests can drive
//! it with plain integers and stay deterministic. A `BTreeMap` (not a
//! `HashMap`) keeps iteration order deterministic for the same reason —
//! model replay requires it — at no practical cost for lease counts.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Mutex, MutexGuard, PoisonError};
use std::collections::BTreeMap;

/// Database version number (kept local so the kernel stays dependency-free).
pub type VersionNo = u64;

/// Handle to one registered lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LeaseId(pub(crate) u64);

impl LeaseId {
    /// The numeric lease id, for logs and trace-event payloads.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Point-in-time copy of one lease's state.
#[derive(Debug, Clone)]
pub struct LeaseView<T> {
    /// The lease handle.
    pub id: LeaseId,
    /// The version the leased session reads.
    pub session_vn: VersionNo,
    /// When the declared work runs out (absent renewal).
    pub deadline: T,
    /// How many times the lease has been renewed.
    pub renewals: u64,
    /// Whether a pacer revoked the lease.
    pub revoked: bool,
}

struct Slot<T> {
    session_vn: VersionNo,
    deadline: T,
    renewals: u64,
    revoked: bool,
}

/// Registry of active leases over timestamps of type `T`.
pub struct LeaseCore<T> {
    slots: Mutex<BTreeMap<u64, Slot<T>>>,
    next: AtomicU64,
}

impl<T: Copy + Ord> Default for LeaseCore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Ord> LeaseCore<T> {
    /// Empty registry.
    pub fn new() -> Self {
        LeaseCore {
            slots: Mutex::new(BTreeMap::new()),
            next: AtomicU64::new(1),
        }
    }

    /// Lease state is single-field-at-a-time under the lock, so a poisoned
    /// map is still consistent; recover rather than cascade the panic.
    fn locked(&self) -> MutexGuard<'_, BTreeMap<u64, Slot<T>>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register a lease for a session at `session_vn` running until about
    /// `deadline`.
    pub fn register(&self, session_vn: VersionNo, deadline: T) -> LeaseId {
        // ordering: id-alloc Relaxed — a pure ID allocator; uniqueness is all that
        // matters and the RMW provides it without ordering anything else.
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.locked().insert(
            id,
            Slot {
                session_vn,
                deadline,
                renewals: 0,
                revoked: false,
            },
        );
        LeaseId(id)
    }

    /// Extend a lease to `deadline`. Returns `false` when the lease is
    /// gone or revoked — the holder should treat that as expiration and
    /// restart at a fresh VN.
    pub fn renew(&self, id: LeaseId, deadline: T) -> bool {
        let mut slots = self.locked();
        match slots.get_mut(&id.0) {
            Some(slot) if !slot.revoked => {
                slot.deadline = deadline;
                slot.renewals += 1;
                true
            }
            _ => false,
        }
    }

    /// Drop a lease (session finished).
    pub fn release(&self, id: LeaseId) {
        self.locked().remove(&id.0);
    }

    /// Whether a pacer revoked this lease. Also `true` for a released or
    /// unknown lease — from the holder's perspective both mean "stop
    /// trusting this session".
    pub fn is_revoked(&self, id: LeaseId) -> bool {
        self.locked().get(&id.0).is_none_or(|s| s.revoked)
    }

    /// Revoke a lease (pacer `ExpireOldest`). Returns `false` when already
    /// gone or revoked.
    pub fn revoke(&self, id: LeaseId) -> bool {
        let mut slots = self.locked();
        match slots.get_mut(&id.0) {
            Some(slot) if !slot.revoked => {
                slot.revoked = true;
                true
            }
            _ => false,
        }
    }

    /// Number of registered leases (including expired/revoked ones whose
    /// sessions have not finished yet).
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// Whether no leases are registered.
    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }

    /// Leases still within their deadline (relative to `now`) and not
    /// revoked.
    pub fn active(&self, now: T) -> Vec<LeaseView<T>> {
        self.locked()
            .iter()
            .filter(|(_, s)| !s.revoked && s.deadline > now)
            .map(|(&id, s)| LeaseView {
                id: LeaseId(id),
                session_vn: s.session_vn,
                deadline: s.deadline,
                renewals: s.renewals,
                revoked: s.revoked,
            })
            .collect()
    }

    /// Active leases that would fail the §4.1 global check right after a
    /// commit publishes `vn_after` with an effective window of `n`:
    /// `vn_after − sessionVN ≥ n`. Stalest first: `ExpireOldest` revokes
    /// in this order.
    pub fn at_risk(&self, vn_after: VersionNo, n: usize, now: T) -> Vec<LeaseView<T>> {
        let mut risky: Vec<LeaseView<T>> = self
            .active(now)
            .into_iter()
            .filter(|l| vn_after.saturating_sub(l.session_vn) >= n as u64)
            .collect();
        risky.sort_by_key(|l| l.session_vn);
        risky
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_stickiness() {
        let reg: LeaseCore<u64> = LeaseCore::new();
        assert!(reg.is_empty());
        let id = reg.register(5, 10);
        assert_eq!(reg.len(), 1);
        assert!(reg.renew(id, 20));
        assert_eq!(reg.active(0)[0].renewals, 1);
        assert!(reg.revoke(id));
        assert!(!reg.revoke(id), "second revoke is a no-op");
        assert!(reg.is_revoked(id));
        assert!(!reg.renew(id, 30));
        assert!(reg.active(0).is_empty());
        reg.release(id);
        assert!(reg.is_empty());
        assert!(reg.is_revoked(id), "released reads as revoked");
    }

    #[test]
    fn at_risk_orders_stalest_first() {
        let reg: LeaseCore<u64> = LeaseCore::new();
        reg.register(3, 100);
        reg.register(1, 100);
        reg.register(5, 100);
        let vns: Vec<u64> = reg.at_risk(5, 2, 0).iter().map(|l| l.session_vn).collect();
        assert_eq!(vns, vec![1, 3]);
        assert!(reg.at_risk(5, 5, 0).is_empty());
        // Past-deadline leases are not at risk (they are already expired).
        let reg2: LeaseCore<u64> = LeaseCore::new();
        reg2.register(1, 5);
        assert!(reg2.at_risk(10, 2, 6).is_empty());
    }
}
