//! The sync shim: `std::sync` types by default, `wh-model`'s checked types
//! under the `model` feature. Kernel code imports everything through here so
//! the same source compiles both ways.

#[cfg(not(feature = "model"))]
pub use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "model"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(feature = "model"))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(feature = "model")]
pub use wh_model::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "model")]
pub use wh_model::sync::atomic;

#[cfg(feature = "model")]
pub use wh_model::thread;

pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
