//! The delta-log retention kernel: bounded, VN-keyed retention of
//! maintenance net-effect batches for session repair.
//!
//! A maintenance commit can *retain* its net-effect batch keyed by its
//! `maintenanceVN`; an expired reader at `sessionVN` then asks for the
//! **window** `(sessionVN, currentVN]` and replays it against its partial
//! result instead of rescanning (Veldhuizen's transaction-repair idea
//! applied to the paper's expire-and-restart protocol). Two properties are
//! load-bearing and model-checked exhaustively:
//!
//! * **All-or-nothing windows.** Retention is bounded (a capacity ring) and
//!   evicted from the front; a window that has lost *any* VN must be
//!   refused outright (`None` → the caller falls back to restart), never
//!   served partially — replaying a gap-ridden window silently produces a
//!   wrong answer. [`DeltaLogCore::window`] checks completeness under the
//!   same mutex hold that guards retention and eviction.
//! * **Repair ≡ rescan.** A consistent snapshot at `sessionVN` patched with
//!   a complete window `(sessionVN, v]` equals a fresh snapshot at `v`.
//!   The `wh-model` suite drives this against [`crate::version::VersionCore`]
//!   with retention inside the commit's `post` closure — the production
//!   ordering — and shows the lossy variant ([`DeltaLogCore::entries_in`]
//!   ignoring completeness) is caught.
//!
//! The kernel is batch-agnostic (`B` is opaque; `wh-vnl` stores
//! `Arc<DeltaBatch>`) and effect-free: eviction only *forgets* — actual
//! memory release rides the batch handle's ownership (an `Arc` drop in
//! production, safe under concurrent window readers because a served window
//! cloned its handles under the mutex).

use crate::sync::{Mutex, MutexGuard, PoisonError};
use std::collections::VecDeque;

/// Version number type (matches [`crate::version::VersionNo`]).
pub type VersionNo = u64;

struct Inner<B> {
    /// `(vn, batch)` in strictly ascending VN order. Committed VNs are
    /// contiguous under the one-writer protocol (an abort re-issues its
    /// VN), but completeness is *checked*, never assumed.
    entries: VecDeque<(VersionNo, B)>,
    /// Batches dropped from the front (capacity or explicit eviction).
    evicted: u64,
}

/// Bounded, VN-keyed retention of net-effect batches.
pub struct DeltaLogCore<B> {
    inner: Mutex<Inner<B>>,
    capacity: usize,
}

impl<B> std::fmt::Debug for DeltaLogCore<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaLogCore")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<B> DeltaLogCore<B> {
    /// An empty log retaining at most `capacity` batches (min 1).
    pub fn new(capacity: usize) -> Self {
        DeltaLogCore {
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                evicted: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Take the mutex, recovering from poison: the map is never left
    /// mid-mutation (every method restores the ascending-VN invariant
    /// before returning), so readers keep working after a panicking writer.
    fn locked(&self) -> MutexGuard<'_, Inner<B>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained batch count.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.locked().entries.is_empty()
    }

    /// Batches dropped from the front so far (capacity + explicit evicts).
    pub fn evicted_count(&self) -> u64 {
        self.locked().evicted
    }

    /// Newest retained VN, if any.
    pub fn last_vn(&self) -> Option<VersionNo> {
        self.locked().entries.back().map(|&(vn, _)| vn)
    }

    /// Retain `batch` under `vn`. VNs must arrive in ascending order (the
    /// one-writer commit protocol guarantees it; out-of-order retention is
    /// refused so a stale publisher can never corrupt window completeness).
    /// Returns the batches evicted from the front to hold the bound.
    pub fn retain(&self, vn: VersionNo, batch: B) -> Vec<B> {
        let mut inner = self.locked();
        if inner.entries.back().is_some_and(|&(last, _)| last >= vn) {
            // Refuse rather than reorder: the caller publishes under the
            // version latch, so this arm is unreachable in production; the
            // guard keeps the invariant local.
            return vec![batch];
        }
        inner.entries.push_back((vn, batch));
        let mut out = Vec::new();
        while inner.entries.len() > self.capacity {
            if let Some((_, b)) = inner.entries.pop_front() {
                inner.evicted += 1;
                out.push(b);
            }
        }
        out
    }

    /// Drop every batch with `vn < keep_from` (they can no longer be part
    /// of any live session's repair window). Returns the evicted batches.
    pub fn evict_below(&self, keep_from: VersionNo) -> Vec<B> {
        let mut inner = self.locked();
        let mut out = Vec::new();
        while inner.entries.front().is_some_and(|&(vn, _)| vn < keep_from) {
            if let Some((_, b)) = inner.entries.pop_front() {
                inner.evicted += 1;
                out.push(b);
            }
        }
        out
    }

    /// Forget everything (crash recovery: repair state never survives a
    /// restart). Returns the dropped batches.
    pub fn clear(&self) -> Vec<B> {
        let mut inner = self.locked();
        inner.evicted += inner.entries.len() as u64;
        inner.entries.drain(..).map(|(_, b)| b).collect()
    }
}

impl<B: Clone> DeltaLogCore<B> {
    /// The complete window `(from_exclusive, to_inclusive]`, or `None` if
    /// *any* VN in that range is not retained — a partial window must never
    /// be served (replaying it would produce a silently wrong repair; the
    /// caller falls back to restart). Completeness is judged against the
    /// contiguous-commit protocol: the range holds exactly
    /// `to_inclusive − from_exclusive` committed VNs.
    pub fn window(&self, from_exclusive: VersionNo, to_inclusive: VersionNo) -> Option<Vec<B>> {
        if to_inclusive <= from_exclusive {
            return Some(Vec::new());
        }
        let inner = self.locked();
        let need = to_inclusive - from_exclusive;
        let got: Vec<B> = inner
            .entries
            .iter()
            .filter(|&&(vn, _)| vn > from_exclusive && vn <= to_inclusive)
            .map(|(_, b)| b.clone())
            .collect();
        if got.len() as u64 == need {
            Some(got)
        } else {
            None
        }
    }

    /// Whatever happens to be retained in `(from_exclusive, to_inclusive]`,
    /// with **no completeness check** — introspection only. The model suite
    /// uses this as the regression arm: replaying it where [`Self::window`]
    /// belongs is exactly the wrong-answer bug the checker must catch.
    pub fn entries_in(
        &self,
        from_exclusive: VersionNo,
        to_inclusive: VersionNo,
    ) -> Vec<(VersionNo, B)> {
        self.locked()
            .entries
            .iter()
            .filter(|&&(vn, _)| vn > from_exclusive && vn <= to_inclusive)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_and_serves_complete_windows() {
        let log = DeltaLogCore::new(8);
        assert!(log.is_empty());
        for vn in 2..=5u64 {
            assert!(log.retain(vn, format!("b{vn}")).is_empty());
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.last_vn(), Some(5));
        assert_eq!(
            log.window(2, 5).unwrap(),
            vec!["b3".to_string(), "b4".into(), "b5".into()]
        );
        assert_eq!(log.window(5, 5).unwrap(), Vec::<String>::new());
        // A VN below the retained range is gone: refuse.
        assert!(log.window(0, 5).is_none());
    }

    #[test]
    fn capacity_evicts_front_and_refuses_partial_windows() {
        let log = DeltaLogCore::new(2);
        assert!(log.retain(2, "b2").is_empty());
        assert!(log.retain(3, "b3").is_empty());
        assert_eq!(log.retain(4, "b4"), vec!["b2"]);
        assert_eq!(log.evicted_count(), 1);
        assert!(log.window(1, 4).is_none(), "lost b2 → whole window refused");
        assert_eq!(log.window(2, 4).unwrap(), vec!["b3", "b4"]);
        assert_eq!(log.entries_in(1, 4).len(), 2, "lossy view still partial");
    }

    #[test]
    fn explicit_eviction_and_clear() {
        let log = DeltaLogCore::new(8);
        for vn in 2..=6u64 {
            log.retain(vn, vn);
        }
        assert_eq!(log.evict_below(4), vec![2, 3]);
        assert_eq!(log.window(3, 6).unwrap(), vec![4, 5, 6]);
        assert!(log.window(2, 6).is_none());
        assert_eq!(log.clear(), vec![4, 5, 6]);
        assert!(log.is_empty());
        assert_eq!(log.evicted_count(), 5);
    }

    #[test]
    fn out_of_order_retention_is_refused() {
        let log = DeltaLogCore::new(8);
        assert!(log.retain(3, "b3").is_empty());
        assert_eq!(log.retain(3, "dup"), vec!["dup"]);
        assert_eq!(log.retain(2, "late"), vec!["late"]);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn empty_window_is_complete_below_any_retention() {
        let log: DeltaLogCore<u64> = DeltaLogCore::new(4);
        assert_eq!(log.window(7, 7).unwrap(), Vec::<u64>::new());
        assert_eq!(log.window(9, 3).unwrap(), Vec::<u64>::new());
    }
}
