//! Poison-recovering latch acquisition — the page-latch kernel.
//!
//! A panic (e.g. an injected `Panic` fault) can never leave a page
//! mid-mutation — every heap mutation is a full-record store after
//! validation — so the data under a poisoned latch is intact and readers
//! (crash recovery in particular) must keep working instead of cascading
//! the panic. `wh_storage`'s heap calls these for every page visit; the
//! timed/contended telemetry variants there wrap the same functions.

use crate::sync::{
    Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError,
};

/// Acquire a read latch, recovering from poison.
pub fn read_latch<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write twin of [`read_latch`].
pub fn write_latch<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Mutex twin of [`read_latch`] (free-list bookkeeping).
pub fn lock_list<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Non-blocking read latch: `None` only when contended (poison recovers,
/// as in [`read_latch`]). The heap's timed fast path uses this and only
/// starts a wait-clock when it returns `None`.
pub fn try_read_latch<T>(lock: &RwLock<T>) -> Option<RwLockReadGuard<'_, T>> {
    match lock.try_read() {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}

/// Write twin of [`try_read_latch`].
pub fn try_write_latch<T>(lock: &RwLock<T>) -> Option<RwLockWriteGuard<'_, T>> {
    match lock.try_write() {
        Ok(g) => Some(g),
        Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
        Err(TryLockError::WouldBlock) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latches_grant_and_release() {
        let l = RwLock::new(1u64);
        {
            let r1 = read_latch(&l);
            let r2 = try_read_latch(&l).expect("readers share");
            assert_eq!((*r1, *r2), (1, 1));
            assert!(try_write_latch(&l).is_none(), "writer excluded");
        }
        *write_latch(&l) = 2;
        assert_eq!(*read_latch(&l), 2);
        let m = Mutex::new(3u64);
        *lock_list(&m) += 1;
        assert_eq!(*lock_list(&m), 4);
    }

    #[test]
    fn poisoned_latches_recover() {
        let l = std::sync::Arc::new(RwLock::new(7u64));
        let m = std::sync::Arc::new(Mutex::new(7u64));
        let (l2, m2) = (std::sync::Arc::clone(&l), std::sync::Arc::clone(&m));
        let _ = std::thread::spawn(move || {
            let _g1 = l2.write();
            let _g2 = m2.lock();
            panic!("poison both");
        })
        .join();
        assert_eq!(*read_latch(&l), 7);
        assert_eq!(*write_latch(&l), 7);
        assert_eq!(*lock_list(&m), 7);
        assert_eq!(try_read_latch(&l).map(|g| *g), Some(7));
        assert_eq!(try_write_latch(&l).map(|g| *g), Some(7));
    }
}
