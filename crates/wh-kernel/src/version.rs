//! The version-global kernel: `currentVN`, `maintenanceActive`, the
//! lock-free telemetry mirror, and the recovery fence.
//!
//! This is the latched core of `wh_vnl::VersionState` (§3/§4 of the paper):
//! the wrapper owns the one-tuple `Version` relation, failpoints, and
//! telemetry, and passes them back in as `under_latch` closures so their
//! position relative to the state mutations — which the crash matrix
//! depends on — is preserved exactly.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Mutex, MutexGuard, PoisonError};

/// Database / maintenance-transaction version number.
pub type VersionNo = u64;

/// Point-in-time copy of the version globals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionView {
    /// The current database version number.
    pub current_vn: VersionNo,
    /// Whether a maintenance transaction is active.
    pub maintenance_active: bool,
}

/// Why [`VersionCore::begin_maintenance`] refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginError<E> {
    /// A maintenance transaction is already active (the one-at-a-time
    /// external protocol).
    AlreadyActive,
    /// The `under_latch` effect failed; `maintenanceActive` stays set, as
    /// in the production wrapper, and recovery must clear it.
    Effect(E),
}

struct Inner {
    current_vn: VersionNo,
    maintenance_active: bool,
}

/// Global version state: a latched pair plus two lock-free atomics.
pub struct VersionCore {
    inner: Mutex<Inner>,
    /// Relaxed mirror of `Inner::current_vn` for telemetry hot paths: read
    /// without the latch, may trail the latched value by an instant, never
    /// torn, and no data is ever dereferenced through it.
    current_vn_relaxed: AtomicU64,
    /// The recovery fence: smallest `sessionVN` post-crash-recovery reads
    /// are guaranteed to serve exactly. Monotone; `1` = no inexact
    /// recovery has ever run.
    recovery_floor: AtomicU64,
}

impl Default for VersionCore {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionCore {
    /// Fresh state: `currentVN = 1`, no maintenance active (§3: "Variable
    /// currentVN is 1 initially").
    pub fn new() -> Self {
        VersionCore {
            inner: Mutex::new(Inner {
                current_vn: 1,
                maintenance_active: false,
            }),
            current_vn_relaxed: AtomicU64::new(1),
            recovery_floor: AtomicU64::new(1),
        }
    }

    /// Resume state persisted by a checkpoint: seed `currentVN`, the
    /// `maintenanceActive` flag, and the recovery fence exactly as the
    /// checkpoint recorded them. The §7 disk-recovery pass starts from
    /// here — a checkpoint taken mid-maintenance resumes with the flag
    /// still set, and the slot-reconstruction pass clears it.
    ///
    /// Lives in this crate (not the wrapper) because `recovery_floor` is
    /// deliberately unreachable from outside — the version-encapsulation
    /// lint enforces that — and a seeded floor is still a *raise* from the
    /// fence's point of view: it is monotone from the persisted value on.
    pub fn resume(
        current_vn: VersionNo,
        maintenance_active: bool,
        recovery_floor: VersionNo,
    ) -> Self {
        VersionCore {
            inner: Mutex::new(Inner {
                current_vn,
                maintenance_active,
            }),
            current_vn_relaxed: AtomicU64::new(current_vn),
            recovery_floor: AtomicU64::new(recovery_floor.max(1)),
        }
    }

    /// Take the latch, recovering from poison: version mutations are
    /// multi-field but a panic between them leaves values a recovering
    /// process can still read (the crash matrix proves it), so readers must
    /// keep working instead of cascading the panic.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Read both globals under the latch, running `under_latch` (the
    /// wrapper's mirror-relation read) while it is held.
    pub fn snapshot_with(&self, under_latch: impl FnOnce(&VersionView)) -> VersionView {
        let inner = self.locked();
        let view = VersionView {
            current_vn: inner.current_vn,
            maintenance_active: inner.maintenance_active,
        };
        under_latch(&view);
        view
    }

    /// Read both globals under the latch with no side effects.
    pub fn peek(&self) -> VersionView {
        self.snapshot_with(|_| {})
    }

    /// Lock-free read of `currentVN` alone — the telemetry form.
    pub fn current_vn_relaxed(&self) -> VersionNo {
        // ordering: vn-mirror Relaxed — a monotone staleness probe; callers tolerate
        // a value that trails the latched truth and never dereference
        // through it. The latched snapshot is the consistency anchor.
        self.current_vn_relaxed.load(Ordering::Relaxed)
    }

    /// The current recovery fence.
    pub fn recovery_floor(&self) -> VersionNo {
        // ordering: recovery-floor Acquire — pairs with the AcqRel fetch_max in
        // `raise_recovery_floor`: a session that observes the raised floor
        // also observes everything recovery did before raising it.
        self.recovery_floor.load(Ordering::Acquire)
    }

    /// Raise the recovery fence to `floor` (monotone; lowering is a
    /// no-op). Must be called *before* recovery mutates any tuple, so a
    /// scan in flight re-checks the fence when it completes and expires
    /// instead of returning reconstructed values.
    pub fn raise_recovery_floor(&self, floor: VersionNo) {
        // ordering: recovery-floor AcqRel — Release publishes the pre-raise state to
        // fence readers; Acquire keeps the subsequent slot rebuilding from
        // being reordered before the raise.
        self.recovery_floor.fetch_max(floor, Ordering::AcqRel);
    }

    /// Begin a maintenance transaction: set the active flag and return
    /// `maintenanceVN = currentVN + 1`. `under_latch(current_vn)` runs
    /// after the flag flip (failpoint + mirror write); its error leaves the
    /// flag set, exactly the state crash recovery must clear.
    ///
    /// # Errors
    ///
    /// [`BeginError::AlreadyActive`] under the one-at-a-time protocol;
    /// [`BeginError::Effect`] propagates the closure's error.
    pub fn begin_maintenance<E>(
        &self,
        under_latch: impl FnOnce(VersionNo) -> Result<(), E>,
    ) -> Result<VersionNo, BeginError<E>> {
        let mut inner = self.locked();
        if inner.maintenance_active {
            return Err(BeginError::AlreadyActive);
        }
        inner.maintenance_active = true;
        under_latch(inner.current_vn).map_err(BeginError::Effect)?;
        Ok(inner.current_vn + 1)
    }

    /// Publish a maintenance commit: `currentVN ← maintenance_vn`, flag
    /// off, lock-free mirror updated — all under one latch hold. `pre`
    /// runs before any mutation (the failpoint position: its error commits
    /// nothing); `post(maintenance_vn)` runs after (the mirror write).
    ///
    /// # Errors
    ///
    /// Propagates the first closure error; a `pre` error leaves the
    /// globals untouched.
    pub fn publish_commit<E>(
        &self,
        maintenance_vn: VersionNo,
        pre: impl FnOnce() -> Result<(), E>,
        post: impl FnOnce(VersionNo) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut inner = self.locked();
        pre()?;
        debug_assert_eq!(maintenance_vn, inner.current_vn + 1);
        inner.current_vn = maintenance_vn;
        // ordering: vn-mirror Relaxed — the mirror is advisory (see
        // `current_vn_relaxed`); the store sits inside the latch hold so
        // it can never lead the latched value by more than this critical
        // section.
        self.current_vn_relaxed
            .store(maintenance_vn, Ordering::Relaxed);
        inner.maintenance_active = false;
        post(maintenance_vn)
    }

    /// Record a maintenance abort: flag off, `currentVN` unchanged. `pre`
    /// is the failpoint position; `post(current_vn)` the mirror write.
    ///
    /// # Errors
    ///
    /// Propagates the first closure error; a `pre` error leaves the
    /// globals untouched.
    pub fn publish_abort<E>(
        &self,
        pre: impl FnOnce() -> Result<(), E>,
        post: impl FnOnce(VersionNo) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut inner = self.locked();
        pre()?;
        inner.maintenance_active = false;
        post(inner.current_vn)
    }

    /// The §4.1 global (pessimistic) session-liveness check, generalized
    /// for nVNL, fenced by the recovery floor. `under_latch` is the I/O
    /// charge the wrapper levies for the snapshot read.
    pub fn session_live_with(
        &self,
        session_vn: VersionNo,
        n: usize,
        under_latch: impl FnOnce(&VersionView),
    ) -> bool {
        if session_vn < self.recovery_floor() {
            // A crash recovery reconstructed slots this session's reads
            // would depend on; it must expire rather than read a guess.
            return false;
        }
        let snap = self.snapshot_with(under_latch);
        let n = n as u64;
        // With n versions, a session survives overlapping n-1 maintenance
        // transactions. Sessions at currentVN are always live. A session
        // at currentVN - k (k >= 1) has overlapped k committed maintenance
        // transactions plus possibly the active one.
        let k = snap.current_vn.saturating_sub(session_vn);
        if session_vn > snap.current_vn {
            return false; // cannot happen through the public API
        }
        let overlapped = k + u64::from(snap.maintenance_active);
        overlapped < n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_global_check() {
        let c = VersionCore::new();
        assert_eq!(c.peek().current_vn, 1);
        let vn = c
            .begin_maintenance(|cur| {
                assert_eq!(cur, 1);
                Ok::<(), ()>(())
            })
            .unwrap();
        assert_eq!(vn, 2);
        assert!(matches!(
            c.begin_maintenance(|_| Ok::<(), ()>(())),
            Err(BeginError::AlreadyActive)
        ));
        assert!(c.session_live_with(1, 2, |_| {}));
        c.publish_commit(vn, || Ok::<(), ()>(()), |_| Ok(()))
            .unwrap();
        assert_eq!(c.peek().current_vn, 2);
        assert_eq!(c.current_vn_relaxed(), 2);
        assert!(c.session_live_with(1, 2, |_| {}));
        let vn = c.begin_maintenance(|_| Ok::<(), ()>(())).unwrap();
        assert!(!c.session_live_with(1, 2, |_| {}));
        assert!(c.session_live_with(1, 3, |_| {}));
        c.publish_abort(|| Ok::<(), ()>(()), |_| Ok(())).unwrap();
        assert_eq!(c.peek().current_vn, 2);
        assert_eq!(c.begin_maintenance(|_| Ok::<(), ()>(())).unwrap(), vn);
    }

    #[test]
    fn failed_begin_effect_leaves_flag_set() {
        let c = VersionCore::new();
        assert!(matches!(
            c.begin_maintenance(|_| Err("io")),
            Err(BeginError::Effect("io"))
        ));
        assert!(c.peek().maintenance_active, "recovery clears this state");
    }

    #[test]
    fn failed_commit_pre_commits_nothing() {
        let c = VersionCore::new();
        let vn = c.begin_maintenance(|_| Ok::<(), &str>(())).unwrap();
        assert_eq!(
            c.publish_commit(vn, || Err("crash"), |_| Ok(())),
            Err("crash")
        );
        let view = c.peek();
        assert_eq!(view.current_vn, 1);
        assert!(view.maintenance_active);
        assert_eq!(c.current_vn_relaxed(), 1);
    }

    #[test]
    fn recovery_floor_is_monotone_and_fences() {
        let c = VersionCore::new();
        assert!(c.session_live_with(1, 2, |_| {}));
        c.raise_recovery_floor(2);
        c.raise_recovery_floor(1); // lowering is a no-op
        assert_eq!(c.recovery_floor(), 2);
        assert!(!c.session_live_with(1, 8, |_| {}), "fenced regardless of n");
    }
}
