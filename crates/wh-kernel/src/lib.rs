//! The lock-free kernels of the 2VNL engine, extracted so the exact code
//! production runs can also be compiled onto `wh-model`'s checked types and
//! explored exhaustively.
//!
//! Each module here is the concurrency-bearing core of a production
//! component, stripped of its I/O, failpoint, and telemetry effects (those
//! are passed back in as closures or live in the wrapping crate):
//!
//! * [`version`] — `currentVN`/`maintenanceActive` latching, the lock-free
//!   `current_vn_relaxed` mirror, the `recovery_floor` fence, and the §4.1
//!   global session-liveness check (wrapped by `wh_vnl::VersionState`).
//! * [`delta`] — the session-repair delta log: bounded, VN-keyed retention
//!   of maintenance net-effect batches with all-or-nothing window serving
//!   (wrapped by `wh_vnl::VersionState` for the repair engine).
//! * [`lease`] — the reader-session lease registry's slot bookkeeping
//!   (wrapped by `wh_vnl::resilience::LeaseRegistry`).
//! * [`adaptive`] — the effective-`n` window cell and the grow/shrink
//!   decision rule (wrapped by `wh_vnl::VnlTable` / `AdaptiveN`).
//! * [`latch`] — poison-recovering page-latch acquisition (wrapped by
//!   `wh_storage`'s heap).
//! * [`epoch`] — epoch-based reclamation: reader pins, grace-period
//!   detection, and deferred retire lists (wrapped by `wh_vnl::gc`).
//! * [`pool`] — buffer-pool frame state: dirty/referenced bits and the
//!   clock-eviction verdict (wrapped by `wh_storage`'s buffer pool).
//!
//! Everything synchronizes through the [`sync`] shim: `std::sync` by
//! default, `wh_model`'s checked types under the `model` feature, which
//! only this crate's own model tests enable. `cargo test -p wh-kernel
//! --features model` runs the exhaustive-interleaving suite.

pub mod adaptive;
pub mod delta;
pub mod epoch;
pub mod latch;
pub mod lease;
pub mod pool;
pub mod sync;
pub mod version;
