//! The adaptive-nVNL kernel: the effective-window cell and the grow/shrink
//! decision rule.
//!
//! `wh_vnl::VnlTable` owns an [`EffectiveWindow`] (its `effective_n`) and
//! `wh_vnl::resilience::AdaptiveN` applies [`decide`] at each decision
//! boundary. The cell is the lock-free piece: the §4.1 global check and
//! the pacer read it Relaxed while a controller narrows or re-widens it
//! concurrently with maintenance commits.

use crate::sync::atomic::{AtomicUsize, Ordering};

/// A table's effective version window `n_eff ∈ [2, physical n]`.
///
/// Only the global (pessimistic) check and the pacer's at-risk computation
/// read it; extraction, `push_back`, and rollback always use the physical
/// slot count. Growing *admits* older sessions the slots already support,
/// and shrinking merely expires sessions earlier than the slots strictly
/// require, so neither direction can produce a wrong answer — which is why
/// Relaxed suffices.
pub struct EffectiveWindow {
    physical_n: usize,
    n_eff: AtomicUsize,
}

impl EffectiveWindow {
    /// A window starting at the physical slot count.
    pub fn new(physical_n: usize) -> Self {
        EffectiveWindow {
            physical_n,
            n_eff: AtomicUsize::new(physical_n),
        }
    }

    /// The physical slot count (the cap).
    pub fn physical_n(&self) -> usize {
        self.physical_n
    }

    /// The effective window.
    pub fn get(&self) -> usize {
        // ordering: n-eff Relaxed — n_eff only widens/narrows the liveness
        // window; both directions are sound (doc above), so no other state
        // needs to be ordered with the read.
        self.n_eff.load(Ordering::Relaxed)
    }

    /// Set the effective window, clamped to `[2, physical n]`; returns the
    /// clamped value.
    pub fn set(&self, n: usize) -> usize {
        let clamped = n.clamp(2, self.physical_n);
        // ordering: n-eff Relaxed — see `get`; the clamp (not ordering) is the
        // safety argument.
        self.n_eff.store(clamped, Ordering::Relaxed);
        clamped
    }
}

/// The window controller's decision rule: given the observed
/// expirations-per-commit `rate` over the closed window and the `current`
/// effective n, grow by one at `rate ≥ grow_at`, shrink by one at
/// `rate ≤ shrink_at`, within `[min_n, max_n]`.
pub fn decide(
    rate: f64,
    current: usize,
    min_n: usize,
    max_n: usize,
    grow_at: f64,
    shrink_at: f64,
) -> usize {
    let current = current.clamp(min_n, max_n);
    if rate >= grow_at && current < max_n {
        current + 1
    } else if rate <= shrink_at && current > min_n {
        current - 1
    } else {
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_clamps_to_physical_bounds() {
        let w = EffectiveWindow::new(4);
        assert_eq!(w.get(), 4);
        assert_eq!(w.set(1), 2);
        assert_eq!(w.set(9), 4);
        assert_eq!(w.set(3), 3);
        assert_eq!(w.get(), 3);
        assert_eq!(w.physical_n(), 4);
    }

    #[test]
    fn decision_rule_growth_and_hysteresis() {
        // Noisy window grows, quiet window shrinks, middle holds.
        assert_eq!(decide(0.5, 2, 2, 4, 0.5, 0.0), 3);
        assert_eq!(decide(0.0, 3, 2, 4, 0.5, 0.0), 2);
        assert_eq!(decide(0.25, 3, 2, 4, 0.5, 0.0), 3);
        // Caps hold at both ends.
        assert_eq!(decide(1.0, 4, 2, 4, 0.5, 0.0), 4);
        assert_eq!(decide(0.0, 2, 2, 4, 0.5, 0.0), 2);
        // Out-of-range current is clamped first.
        assert_eq!(decide(0.25, 7, 2, 4, 0.5, 0.0), 4);
    }
}
