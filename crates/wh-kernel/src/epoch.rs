//! Epoch-based reclamation — the GC grace-period kernel.
//!
//! Readers *pin* an epoch before following any pointer (rid) into shared
//! storage and *unpin* when done. The collector *retires* an unlinked
//! object (tagging it with the epoch observed after the unlink), then
//! *advances* the global epoch when every pinned reader has caught up, and
//! finally *releases* retired objects whose tag is two advances old. The
//! two-epoch grace margin is the classic EBR argument: a reader pinned at
//! epoch `a` can still hold rids gathered at `a`, and one advance may slip
//! past it (the check races its announcement), but a second advance cannot
//! — so a retire tagged `e ≥ a` only drains once `G ≥ e + 2 > a + 1`, by
//! which point that reader has unpinned or re-pinned at a newer epoch.
//!
//! The kernel is effect-free: it decides *when* reclamation is safe, never
//! performs it. `wh-vnl`'s GC drains the retire list and does the actual
//! slot release. Compiled onto [`crate::sync`], so the same code runs under
//! std and under `wh-model`'s exhaustive schedule checker.

use std::collections::VecDeque;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Mutex, PoisonError};

/// Announcement value meaning "this slot's reader is not in a critical
/// section". Epochs are small integers; `u64::MAX` can never be reached.
const IDLE: u64 = u64::MAX;

/// Number of epoch advances a retired object must survive before release.
pub const GRACE: u64 = 2;

/// The shared epoch state: one global epoch counter plus a fixed array of
/// per-reader announcement slots.
#[derive(Debug)]
pub struct EpochCore {
    global: AtomicU64,
    slots: Box<[AtomicU64]>,
}

/// RAII pin: the slot is re-announced as idle on drop.
#[derive(Debug)]
pub struct EpochPin<'a> {
    core: &'a EpochCore,
    slot: usize,
}

impl EpochPin<'_> {
    /// The announcement slot index held by this pin (telemetry/tests).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        self.core.unpin(self.slot);
    }
}

impl EpochCore {
    /// A core with `capacity` announcement slots (max concurrent pins).
    pub fn new(capacity: usize) -> Self {
        EpochCore {
            global: AtomicU64::new(0),
            slots: (0..capacity).map(|_| AtomicU64::new(IDLE)).collect(),
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        // ordering: epoch SeqCst — the epoch read must not move before preceding
        // slot stores or after subsequent retire-list reads; the whole
        // protocol runs sequentially consistent (one load per scan/pass,
        // never per tuple, so the cost is irrelevant).
        self.global.load(Ordering::SeqCst)
    }

    /// Number of announcement slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The epoch announced in `slot`, `None` when idle (model tests and
    /// telemetry).
    pub fn announced(&self, slot: usize) -> Option<u64> {
        // ordering: epoch SeqCst — uniform with the rest of the protocol.
        let a = self.slots[slot].load(Ordering::SeqCst);
        (a != IDLE).then_some(a)
    }

    /// Number of currently pinned slots (telemetry only — racy by nature).
    pub fn pinned(&self) -> usize {
        self.slots
            .iter()
            // ordering: epoch SeqCst — uniform with the rest of the protocol;
            // the count is advisory either way.
            .filter(|s| s.load(Ordering::SeqCst) != IDLE)
            .count()
    }

    /// Try to pin the current epoch: claim a free announcement slot and
    /// publish the global epoch into it, re-reading until the announcement
    /// is *stable* (global unchanged across the store). `None` when all
    /// slots are taken — callers back off and retry; the kernel never
    /// spins so the model checker can enumerate it.
    ///
    /// The re-announce loop is load-bearing: without it, a reader that is
    /// preempted between reading `global` and storing its announcement
    /// could publish an epoch arbitrarily older than `global`, and
    /// [`Self::try_advance`] (which only compares against the *current*
    /// global) could have advanced twice already — voiding the grace
    /// margin. Re-reading after the store guarantees the announced epoch
    /// is at most one behind any concurrent advance.
    pub fn try_pin(&self) -> Option<EpochPin<'_>> {
        let slot = self.claim_slot()?;
        // ordering: epoch SeqCst — the initial epoch read; the loop below makes
        // any staleness here harmless.
        let mut e = self.global.load(Ordering::SeqCst);
        loop {
            // ordering: epoch SeqCst — publish the announcement before re-checking
            // global; must not reorder after the load below, or a concurrent
            // try_advance could miss this pin and advance past it twice.
            self.slots[slot].store(e, Ordering::SeqCst);
            // ordering: epoch SeqCst — see the store above; this load validates
            // that the published announcement equals the current epoch.
            let now = self.global.load(Ordering::SeqCst);
            if now == e {
                return Some(EpochPin { core: self, slot });
            }
            e = now;
        }
    }

    /// Claim an IDLE slot via CAS; `None` if every slot is pinned.
    fn claim_slot(&self) -> Option<usize> {
        for (i, s) in self.slots.iter().enumerate() {
            // ordering: epoch SeqCst/SeqCst — slot ownership handoff; success
            // makes the claim visible to other claimants and to
            // try_advance's sweep.
            if s.compare_exchange(IDLE, 0, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    /// Release a pinned slot (done by [`EpochPin::drop`]).
    fn unpin(&self, slot: usize) {
        // ordering: epoch SeqCst — the idle store must not reorder before the
        // reader's final shared-memory reads, or the collector could
        // release an object the reader is still dereferencing.
        self.slots[slot].store(IDLE, Ordering::SeqCst);
    }

    /// Try to advance the global epoch. Succeeds (returning the new epoch)
    /// only when every announcement slot is idle or already at the current
    /// epoch; otherwise returns `None` and the epoch is unchanged. At most
    /// one advance can slip past a reader whose announcement store races
    /// this sweep — the `GRACE = 2` margin absorbs exactly that.
    pub fn try_advance(&self) -> Option<u64> {
        // ordering: epoch SeqCst — snapshot the epoch the sweep compares against.
        let e = self.global.load(Ordering::SeqCst);
        for s in &self.slots {
            // ordering: epoch SeqCst — each announcement must be read no earlier
            // than the epoch snapshot above; a stale read here could treat
            // a just-pinned reader as idle.
            let a = s.load(Ordering::SeqCst);
            if a != IDLE && a != e {
                return None;
            }
        }
        // ordering: epoch SeqCst/SeqCst — the advance itself; failure means a
        // concurrent advancer won, which is just as good for our caller.
        match self
            .global
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => Some(e + 1),
            Err(now) => Some(now),
        }
    }
}

/// A deferred-reclamation queue: unlinked objects tagged with the epoch at
/// which they were retired, drained once the grace period has elapsed.
///
/// Tags are monotone in queue order (the tag is read under the queue lock
/// from a monotone counter), so draining pops from the front only.
#[derive(Debug)]
pub struct RetireList<T> {
    items: Mutex<VecDeque<(u64, T)>>,
}

impl<T> Default for RetireList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RetireList<T> {
    pub fn new() -> Self {
        RetireList {
            items: Mutex::new(VecDeque::new()),
        }
    }

    fn locked(&self) -> crate::sync::MutexGuard<'_, VecDeque<(u64, T)>> {
        self.items.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Retire an object, tagging it with the epoch observed *now*. The
    /// caller must have already unlinked the object from every shared
    /// structure: the tag is deliberately read at insert time (not passed
    /// in), so it is ≥ the epoch any still-pinned reader announced before
    /// the unlink — which is exactly what the grace argument needs.
    pub fn retire(&self, core: &EpochCore, item: T) -> u64 {
        let mut q = self.locked();
        let e = core.epoch();
        q.push_back((e, item));
        e
    }

    /// Pop every object whose tag is at least [`GRACE`] epochs old. These
    /// are safe to physically reclaim: no pin from before the unlink can
    /// still be active.
    pub fn drain_safe(&self, core: &EpochCore) -> Vec<T> {
        let now = core.epoch();
        let mut q = self.locked();
        let mut out = Vec::new();
        while let Some(&(tag, _)) = q.front() {
            if tag + GRACE > now {
                break;
            }
            // lint: allow(no-panic) — front() above proves non-empty
            let (_, item) = q.pop_front().expect("front checked");
            out.push(item);
        }
        out
    }

    /// Objects still waiting for their grace period (telemetry).
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_blocks_advance_until_dropped() {
        let core = EpochCore::new(2);
        assert_eq!(core.epoch(), 0);
        let pin = core.try_pin().expect("slot free");
        assert_eq!(core.pinned(), 1);
        // The pinned reader announced epoch 0, which equals global — one
        // advance is allowed (the reader entered *at* 0, objects retired
        // at 0 were unlinked before its probe or are still reachable).
        assert_eq!(core.try_advance(), Some(1));
        // Now the announcement (0) lags global (1): no further advance.
        assert_eq!(core.try_advance(), None);
        drop(pin);
        assert_eq!(core.pinned(), 0);
        assert_eq!(core.try_advance(), Some(2));
    }

    #[test]
    fn retire_drains_only_after_grace() {
        let core = EpochCore::new(1);
        let list = RetireList::new();
        assert_eq!(list.retire(&core, "a"), 0);
        assert!(list.drain_safe(&core).is_empty(), "no grace yet");
        core.try_advance().unwrap();
        assert!(
            list.drain_safe(&core).is_empty(),
            "one advance is not enough"
        );
        core.try_advance().unwrap();
        assert_eq!(list.drain_safe(&core), vec!["a"]);
        assert!(list.is_empty());
    }

    #[test]
    fn slot_exhaustion_returns_none_and_recovers() {
        let core = EpochCore::new(2);
        let p1 = core.try_pin().unwrap();
        let p2 = core.try_pin().unwrap();
        assert_ne!(p1.slot(), p2.slot());
        assert!(core.try_pin().is_none(), "all slots pinned");
        drop(p1);
        let p3 = core.try_pin().expect("slot freed by drop");
        drop((p2, p3));
        assert_eq!(core.pinned(), 0);
    }

    #[test]
    fn repin_announces_current_epoch() {
        let core = EpochCore::new(1);
        for _ in 0..5 {
            core.try_advance().unwrap();
        }
        let pin = core.try_pin().unwrap();
        // The announcement equals the current epoch, so one advance works.
        assert_eq!(core.try_advance(), Some(6));
        assert_eq!(core.try_advance(), None);
        drop(pin);
    }

    #[test]
    fn drain_order_is_fifo_per_tag() {
        let core = EpochCore::new(1);
        let list = RetireList::new();
        list.retire(&core, 1);
        core.try_advance().unwrap();
        list.retire(&core, 2);
        core.try_advance().unwrap();
        // Epoch is 2: only the tag-0 retire has aged out.
        assert_eq!(list.drain_safe(&core), vec![1]);
        assert_eq!(list.len(), 1);
        core.try_advance().unwrap();
        assert_eq!(list.drain_safe(&core), vec![2]);
    }
}
