//! Exhaustive-interleaving models of the lock-free kernels.
//!
//! Run with `cargo test -p wh-kernel --features model` (the `loom` CI
//! job). Under that feature the kernel's sync shim compiles onto
//! `wh_model`'s checked types, so these tests explore every interleaving
//! (up to the preemption bound) of the *same source* production runs, with
//! vector-clock race detection in which `Relaxed` atomics do not
//! synchronize.
//!
//! Some tests are regression models of historical (or deliberately
//! re-introduced) bugs: they re-implement the pre-fix ordering inline and
//! assert the checker *finds* the bad interleaving, then the production
//! ordering passes exhaustively.

#![cfg(feature = "model")]

use std::sync::Arc;
use wh_kernel::adaptive::EffectiveWindow;
use wh_kernel::delta::DeltaLogCore;
use wh_kernel::epoch::{EpochCore, RetireList};
use wh_kernel::latch::{read_latch, write_latch};
use wh_kernel::lease::LeaseCore;
use wh_kernel::pool::{EvictVerdict, FrameCore};
use wh_kernel::sync::atomic::{AtomicU64, Ordering};
use wh_kernel::sync::RwLock;
use wh_kernel::version::VersionCore;
use wh_model::{try_model, Builder};

fn builder() -> Builder {
    Builder {
        max_preemptions: 3,
        max_iterations: 500_000,
    }
}

fn ok(report: Result<wh_model::Report, wh_model::Failure>) -> wh_model::Report {
    match report {
        Ok(r) => r,
        Err(f) => panic!("{f}"),
    }
}

/// The `current_vn_relaxed` mirror may trail the latched `currentVN` but
/// must never lead it: a reader that loads the mirror and then takes the
/// latch must see a latched value at least as new, in every interleaving
/// of a full maintenance begin/commit cycle.
#[test]
fn relaxed_mirror_never_leads_latched_vn() {
    let report = ok(try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        let c2 = Arc::clone(&core);
        let maint = wh_model::thread::spawn(move || {
            let vn = c2
                .begin_maintenance(|_| Ok::<(), ()>(()))
                .expect("sole maintenance txn");
            c2.publish_commit(vn, || Ok::<(), ()>(()), |_| Ok(()))
                .expect("commit publishes");
        });
        let mirrored = core.current_vn_relaxed();
        let latched = core.peek().current_vn;
        assert!(
            mirrored <= latched,
            "mirror {mirrored} leads latched {latched}"
        );
        maint.join().unwrap();
        assert_eq!(core.current_vn_relaxed(), 2);
        assert_eq!(core.peek().current_vn, 2);
    }));
    assert!(report.iterations > 10, "expected a real interleaving space");
}

/// §4.1 global check vs a maintenance commit: a session the check admits
/// under window `n` can have overlapped at most `n − 1` committed
/// maintenance transactions at snapshot time — so with one maintenance
/// thread and 2VNL, the session at VN 1 is admitted before the commit
/// publishes and (in interleavings where the check runs after) rejected
/// only once `overlapped ≥ n`.
#[test]
fn global_check_is_consistent_with_commit_publication() {
    ok(try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        let c2 = Arc::clone(&core);
        let maint = wh_model::thread::spawn(move || {
            for _ in 0..2 {
                let vn = c2
                    .begin_maintenance(|_| Ok::<(), ()>(()))
                    .expect("sole maintenance txn");
                c2.publish_commit(vn, || Ok::<(), ()>(()), |_| Ok(()))
                    .expect("commit publishes");
            }
        });
        // The reader's own snapshot logic, reproduced around the check so
        // the assertion can name the k it was admitted against.
        let live = core.session_live_with(1, 2, |_| {});
        let after = core.peek();
        if live {
            // Liveness was decided against a snapshot no older than one
            // commit behind `after` (2VNL admits k + active ≤ 1).
            assert!(
                after.current_vn <= 3,
                "check admitted a session the window never covered"
            );
        } else {
            // Rejection requires the window to actually have moved (or a
            // maintenance txn to be in flight) by snapshot time.
            assert!(
                after.current_vn >= 2 || after.maintenance_active,
                "check rejected a session at the current version"
            );
        }
        maint.join().unwrap();
        assert!(!core.session_live_with(1, 2, |_| {}), "k = 2 expires 2VNL");
        assert!(core.session_live_with(1, 4, |_| {}), "4VNL still covers it");
    }));
}

/// The recovery fence, production ordering: the floor is raised *before*
/// any slot is rebuilt, so a scan that observes reconstructed data always
/// fails its completion-time fence check and never returns a guess.
#[test]
fn recovery_fence_raised_before_rebuild_is_sound() {
    ok(try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        let page = Arc::new(RwLock::new(10u64)); // exact value at VN 1
        let (c2, p2) = (Arc::clone(&core), Arc::clone(&page));
        let recovery = wh_model::thread::spawn(move || {
            // Production order (wh_vnl::recover): fence first, then rebuild.
            c2.raise_recovery_floor(2);
            *write_latch(&p2) = 99; // reconstructed guess
        });
        let seen = *read_latch(&page);
        // Completion-time fence check (VnlTable::fence_check).
        let live = core.recovery_floor() <= 1;
        assert!(
            !(seen == 99 && live),
            "scan returned reconstructed data without expiring"
        );
        recovery.join().unwrap();
    }));
}

/// Regression model of the historical fence bug: raising the floor *after*
/// mutating lets an in-flight scan read a reconstructed value and still
/// pass its fence check. The checker must find that interleaving.
#[test]
fn recovery_fence_raised_after_rebuild_is_caught() {
    let failure = try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        let page = Arc::new(RwLock::new(10u64));
        let (c2, p2) = (Arc::clone(&core), Arc::clone(&page));
        let recovery = wh_model::thread::spawn(move || {
            // The pre-fix order: rebuild, then fence.
            *write_latch(&p2) = 99;
            c2.raise_recovery_floor(2);
        });
        let seen = *read_latch(&page);
        let live = core.recovery_floor() <= 1;
        assert!(
            !(seen == 99 && live),
            "scan returned reconstructed data without expiring"
        );
        recovery.join().unwrap();
    })
    .expect_err("the buggy ordering must have a failing interleaving");
    assert!(
        failure.message.contains("reconstructed"),
        "unexpected failure: {failure}"
    );
}

/// Adaptive-n narrowing concurrent with the global check: the window cell
/// stays inside `[2, physical]` in every interleaving, and the liveness
/// verdict always agrees with the `n` the reader actually loaded.
#[test]
fn adaptive_narrowing_vs_global_check() {
    ok(try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        // Two committed maintenance txns before the race: currentVN = 3.
        for _ in 0..2 {
            let vn = core.begin_maintenance(|_| Ok::<(), ()>(())).expect("begin");
            core.publish_commit(vn, || Ok::<(), ()>(()), |_| Ok(()))
                .expect("commit");
        }
        let window = Arc::new(EffectiveWindow::new(4));
        let w2 = Arc::clone(&window);
        let controller = wh_model::thread::spawn(move || {
            w2.set(2); // narrow under a quiet window
        });
        let n = window.get();
        assert!((2..=4).contains(&n), "effective n escaped its bounds");
        let live = core.session_live_with(1, n, |_| {});
        // currentVN = 3, no active txn: k = 2, so live ⇔ n ≥ 3. Narrowing
        // only ever expires earlier than the physical slots require.
        assert_eq!(live, n >= 3, "verdict disagrees with the loaded window");
        controller.join().unwrap();
        assert_eq!(window.get(), 2);
    }));
}

/// Page-latch kernel: write latches are mutually exclusive (no lost
/// update) and a concurrent read latch never races them.
#[test]
fn latch_mutual_exclusion_and_reader_safety() {
    ok(try_model(builder(), || {
        let page = Arc::new(RwLock::new(0u64));
        let writers: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&page);
                wh_model::thread::spawn(move || {
                    let mut g = write_latch(&p);
                    *g += 1;
                })
            })
            .collect();
        let seen = *read_latch(&page);
        assert!(seen <= 2);
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(*read_latch(&page), 2, "a write latch lost an update");
    }));
}

/// Lease kernel: renew racing revoke. Revocation is sticky — whatever the
/// interleaving, once `revoke` has returned the lease reads revoked and
/// every later renewal fails.
#[test]
fn lease_renew_vs_revoke_is_sticky() {
    ok(try_model(builder(), || {
        let reg: Arc<LeaseCore<u64>> = Arc::new(LeaseCore::new());
        let id = reg.register(1, 100);
        let r2 = Arc::clone(&reg);
        let pacer = wh_model::thread::spawn(move || {
            assert!(r2.revoke(id), "sole revoker always wins");
        });
        let renewed = reg.renew(id, 200);
        pacer.join().unwrap();
        assert!(reg.is_revoked(id), "revocation lost");
        assert!(!reg.renew(id, 300), "renewal after revoke must fail");
        if renewed {
            // The renew won the race; its deadline write must still be
            // superseded by the sticky revocation.
            assert!(reg.active(0).is_empty());
        }
    }));
}

/// Epoch kernel, production protocol: a reader that pins an epoch and then
/// follows a rid it found in an index can never land in a slot the GC has
/// already handed out for reuse — in every interleaving of unlink → retire
/// → advance ×2 → drain. This is exactly the rid-reuse scenario the epoch
/// layer exists to close: the GC unlinks the index entry, retires the rid,
/// and only overwrites the slot once `drain_safe` says the grace period
/// has elapsed.
#[test]
fn epoch_pin_blocks_reclaim_of_reachable_slot() {
    ok(try_model(builder(), || {
        let core = Arc::new(EpochCore::new(1));
        let list: Arc<RetireList<()>> = Arc::new(RetireList::new());
        let linked = Arc::new(AtomicU64::new(1)); // index entry → rid
        let page = Arc::new(RwLock::new(10u64)); // slot contents at the rid
        let (c2, l2, k2, p2) = (
            Arc::clone(&core),
            Arc::clone(&list),
            Arc::clone(&linked),
            Arc::clone(&page),
        );
        let gc = wh_model::thread::spawn(move || {
            // Unlink from the index, then retire — the tag is read by
            // RetireList *after* the unlink, which is what makes the grace
            // argument sound.
            k2.store(0, Ordering::SeqCst);
            l2.retire(&c2, ());
            c2.try_advance();
            c2.try_advance();
            for () in l2.drain_safe(&c2) {
                *write_latch(&p2) = 99; // slot released and reused
            }
        });
        // Reader: pin, probe the index, follow the rid.
        let pin = core.try_pin().expect("sole reader");
        if linked.load(Ordering::SeqCst) == 1 {
            let seen = *read_latch(&page);
            assert_eq!(seen, 10, "pinned reader followed a rid into a reused slot");
        }
        drop(pin);
        gc.join().unwrap();
    }));
}

/// Regression model of reclaim-before-grace: a sweep that treats a retired
/// slot as immediately reusable (the pre-epoch behaviour, where the latch
/// was assumed to exclude readers end-to-end) lets a pinned reader follow
/// an already-resolved rid into reused bytes. The checker must find it.
#[test]
fn epoch_reclaim_before_grace_is_caught() {
    let failure = try_model(builder(), || {
        let core = Arc::new(EpochCore::new(1));
        let list: Arc<RetireList<()>> = Arc::new(RetireList::new());
        let linked = Arc::new(AtomicU64::new(1));
        let page = Arc::new(RwLock::new(10u64));
        let (c2, l2, k2, p2) = (
            Arc::clone(&core),
            Arc::clone(&list),
            Arc::clone(&linked),
            Arc::clone(&page),
        );
        let gc = wh_model::thread::spawn(move || {
            k2.store(0, Ordering::SeqCst);
            l2.retire(&c2, ());
            // Pre-fix behaviour: reclaim right away, no grace period.
            *write_latch(&p2) = 99;
        });
        let pin = core.try_pin().expect("sole reader");
        if linked.load(Ordering::SeqCst) == 1 {
            let seen = *read_latch(&page);
            assert_eq!(seen, 10, "pinned reader followed a rid into a reused slot");
        }
        drop(pin);
        gc.join().unwrap();
    })
    .expect_err("graceless reclamation must have a failing interleaving");
    assert!(
        failure.message.contains("reused slot"),
        "unexpected failure: {failure}"
    );
}

/// Epoch kernel, advance vs pin: however the announcement store races the
/// advancer's sweep, at most one advance slips past a pinned reader — the
/// global epoch never exceeds the announcement + 1 while the pin is held,
/// which is the invariant the `GRACE = 2` margin rests on.
#[test]
fn epoch_advance_never_outruns_a_pin_by_two() {
    ok(try_model(builder(), || {
        let core = Arc::new(EpochCore::new(1));
        let c2 = Arc::clone(&core);
        let advancer = wh_model::thread::spawn(move || {
            for _ in 0..2 {
                c2.try_advance();
            }
        });
        let pin = core.try_pin().expect("sole pinner");
        let a = core.announced(pin.slot()).expect("pinned slot announces");
        advancer.join().unwrap();
        assert!(
            core.epoch() <= a + 1,
            "two advances slipped past a pinned reader"
        );
        drop(pin);
        assert!(core.try_advance().is_some(), "idle core advances freely");
    }));
}

/// A model of one buffer-pool frame, mirroring `wh_storage::bufpool`'s
/// protocol exactly: the frame state latch guards an `Option<Arc<page>>`,
/// a pin is an `Arc` clone taken under the state read latch, eviction
/// holds the state write latch and consults [`FrameCore::evict_verdict`]
/// with `pins = strong_count − 2` (the state's copy plus the evictor's
/// local clone), and a dirty frame is flushed — under the same state
/// latch, with the `clear_dirty` swap as the exactly-one-flusher claim —
/// before its page is dropped.
struct FrameModel {
    state: RwLock<Option<Arc<RwLock<u64>>>>,
    core: FrameCore,
    disk: RwLock<u64>,
}

impl FrameModel {
    fn resident(v: u64) -> Self {
        FrameModel {
            state: RwLock::new(Some(Arc::new(RwLock::new(v)))),
            core: FrameCore::new(),
            disk: RwLock::new(v),
        }
    }

    /// Pin the page, faulting it in from "disk" if evicted — the
    /// production `fetch` path.
    fn pin(&self) -> Arc<RwLock<u64>> {
        if let Some(page) = read_latch(&self.state).as_ref().map(Arc::clone) {
            self.core.mark_referenced();
            return page;
        }
        let mut state = write_latch(&self.state);
        if let Some(page) = state.as_ref().map(Arc::clone) {
            // Lost the fault-in race; the other thread's copy wins.
            self.core.mark_referenced();
            return page;
        }
        let page = Arc::new(RwLock::new(*read_latch(&self.disk)));
        *state = Some(Arc::clone(&page));
        self.core.clear_dirty();
        self.core.mark_referenced();
        page
    }

    /// Write through a pin — the production heap write sites: mutate under
    /// the page write latch and mark the frame dirty while it is held.
    fn write(&self, pin: &Arc<RwLock<u64>>, v: u64) {
        let mut g = write_latch(pin);
        *g = v;
        self.core.mark_dirty();
    }

    /// Production eviction: verdict under the state write latch, flush
    /// before release.
    fn try_evict(&self) -> bool {
        let mut state = write_latch(&self.state);
        let Some(page) = state.as_ref().map(Arc::clone) else {
            return false;
        };
        let pins = Arc::strong_count(&page) - 2;
        match self.core.evict_verdict(pins) {
            EvictVerdict::Pinned | EvictVerdict::SecondChance => false,
            EvictVerdict::MustFlush => {
                let v = *read_latch(&page);
                if self.core.clear_dirty() {
                    *write_latch(&self.disk) = v;
                }
                drop(page);
                *state = None;
                true
            }
            EvictVerdict::Clean => {
                drop(page);
                *state = None;
                true
            }
        }
    }

    /// The value an observer would see: the resident page if there is one,
    /// the disk image otherwise.
    fn visible(&self) -> u64 {
        match read_latch(&self.state).as_ref() {
            Some(page) => *read_latch(page),
            None => *read_latch(&self.disk),
        }
    }
}

/// Buffer-pool kernel: a pinned page is never evicted. Whatever the
/// interleaving of a reader's pin against a clock-sweep eviction, the
/// reader's pin stays the frame's one true copy — if the frame is
/// resident while the pin is held, it is the *same* `Arc`, so no
/// fault-in can create a divergent second copy of the page.
#[test]
fn pool_pinned_page_is_never_evicted() {
    let report = ok(try_model(builder(), || {
        let frame = Arc::new(FrameModel::resident(10));
        let f2 = Arc::clone(&frame);
        let evictor = wh_model::thread::spawn(move || {
            // Two sweeps: the first may be refused by the second-chance
            // bit, the second by the pin — never by anything else.
            f2.try_evict();
            f2.try_evict();
        });
        let pin = frame.pin();
        assert_eq!(*read_latch(&pin), 10, "pinned reader saw torn content");
        if let Some(resident) = read_latch(&frame.state).as_ref() {
            assert!(
                Arc::ptr_eq(resident, &pin),
                "a pinned page was evicted and refaulted as a second copy"
            );
        }
        drop(pin);
        evictor.join().unwrap();
        assert_eq!(frame.visible(), 10);
    }));
    assert!(report.iterations > 10, "expected a real interleaving space");
}

/// Buffer-pool kernel: a dirty page is never dropped without a flush. A
/// writer dirties the page through its pin while an evictor sweeps; in
/// every interleaving the acknowledged write survives — resident or
/// flushed — and once the frame is finally evicted the disk image holds
/// it.
#[test]
fn pool_dirty_page_never_dropped_without_flush() {
    ok(try_model(builder(), || {
        let frame = Arc::new(FrameModel::resident(10));
        let f2 = Arc::clone(&frame);
        let evictor = wh_model::thread::spawn(move || {
            f2.try_evict();
            f2.try_evict();
        });
        let pin = frame.pin();
        frame.write(&pin, 20);
        drop(pin);
        evictor.join().unwrap();
        assert_eq!(frame.visible(), 20, "an acknowledged write was lost");
        // Dirty implies resident: the only transition that clears
        // residency flushes first.
        if frame.core.is_dirty() {
            assert!(
                read_latch(&frame.state).is_some(),
                "dirty frame lost its page"
            );
        }
        // Drain the frame (second chance, then flush-evict): the write
        // must now be on disk.
        frame.try_evict();
        frame.try_evict();
        assert!(read_latch(&frame.state).is_none(), "unpinned frame evicts");
        assert_eq!(*read_latch(&frame.disk), 20, "flush-before-release lost");
    }));
}

/// Regression model of drop-without-flush: an eviction sweep that treats
/// "unpinned" as "reclaimable" — skipping the verdict's `MustFlush` arm,
/// the pre-pool behaviour where all state was memory-resident and nothing
/// was lost by dropping — silently discards a committed write. The
/// checker must find that interleaving.
#[test]
fn pool_drop_without_flush_is_caught() {
    let failure = try_model(builder(), || {
        let frame = Arc::new(FrameModel::resident(10));
        let f2 = Arc::clone(&frame);
        let evictor = wh_model::thread::spawn(move || {
            // Pre-fix sweep: anything unpinned is dropped, dirty or not.
            let mut state = write_latch(&f2.state);
            if let Some(page) = state.as_ref().map(Arc::clone) {
                let pins = Arc::strong_count(&page) - 2;
                if f2.core.evict_verdict(pins) != EvictVerdict::Pinned {
                    drop(page);
                    *state = None;
                }
            }
        });
        let pin = frame.pin();
        frame.write(&pin, 20);
        drop(pin);
        evictor.join().unwrap();
        assert_eq!(
            frame.visible(),
            20,
            "a dirty page was dropped without flush"
        );
    })
    .expect_err("drop-without-flush must have a failing interleaving");
    assert!(
        failure.message.contains("dropped without flush"),
        "unexpected failure: {failure}"
    );
}

/// Delta-log kernel: windows are all-or-nothing. Whatever state the
/// concurrent retain/evict stream is in — capacity eviction mid-retain,
/// an explicit `evict_below` between retains — any window the log serves
/// is complete and in ascending VN order; a window that has lost a VN is
/// refused outright.
#[test]
fn delta_window_is_all_or_nothing_under_eviction() {
    let report = ok(try_model(builder(), || {
        let log: Arc<DeltaLogCore<u64>> = Arc::new(DeltaLogCore::new(2));
        let l2 = Arc::clone(&log);
        let writer = wh_model::thread::spawn(move || {
            l2.retain(2, 2);
            l2.retain(3, 3);
            l2.evict_below(3);
            l2.retain(4, 4);
        });
        if let Some(w) = log.window(1, 3) {
            assert_eq!(w, vec![2, 3], "partial or disordered window served");
        }
        if let Some(w) = log.window(2, 4) {
            assert_eq!(w, vec![3, 4], "partial or disordered window served");
        }
        writer.join().unwrap();
        assert_eq!(log.window(2, 4).expect("VNs 3..=4 retained"), vec![3, 4]);
        assert!(
            log.window(1, 4).is_none(),
            "a window missing evicted VN 2 was served"
        );
    }));
    assert!(report.iterations > 10, "expected a real interleaving space");
}

/// Repair ≡ rescan, the equivalence the whole session-repair subsystem
/// rests on: a consistent partial result copied at `sessionVN`, patched
/// with the complete delta window `(sessionVN, currentVN]`, equals a fresh
/// consistent read at `currentVN` — in every interleaving of the reader's
/// snapshot against a stream of maintenance commits. Retention sits inside
/// `publish_commit`'s `post` closure, under the version latch, exactly as
/// `wh_vnl::VersionState::publish_commit_with` places it.
#[test]
fn delta_repair_equals_rescan() {
    let report = ok(try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        // A two-key table: slot 0 starts at value 1, slot 1 absent.
        let map = Arc::new(RwLock::new([Some(1u64), None]));
        let log: Arc<DeltaLogCore<(usize, u64)>> = Arc::new(DeltaLogCore::new(4));
        let (c2, m2, l2) = (Arc::clone(&core), Arc::clone(&map), Arc::clone(&log));
        let maint = wh_model::thread::spawn(move || {
            for (idx, val) in [(0_usize, 2_u64), (1, 5)] {
                let vn = c2
                    .begin_maintenance(|_| Ok::<(), ()>(()))
                    .expect("sole maintenance txn");
                c2.publish_commit(
                    vn,
                    || Ok::<(), ()>(()),
                    |vn| {
                        // Production ordering: the table's new state and the
                        // net-effect batch publish under one latch hold.
                        write_latch(&m2)[idx] = Some(val);
                        l2.retain(vn, (idx, val));
                        Ok::<(), ()>(())
                    },
                )
                .expect("commit publishes");
            }
        });
        // The "session": a consistent (partial result, sessionVN) pair.
        let mut repaired = [None, None];
        let mut svn = 0;
        core.snapshot_with(|view| {
            repaired = *read_latch(&map);
            svn = view.current_vn;
        });
        maint.join().unwrap();
        // The "rescan": a fresh consistent read at the final VN.
        let mut rescanned = [None, None];
        let mut vn_now = 0;
        core.snapshot_with(|view| {
            rescanned = *read_latch(&map);
            vn_now = view.current_vn;
        });
        // The repair: replay the complete window over the stale result.
        for (idx, val) in log
            .window(svn, vn_now)
            .expect("capacity 4 never evicts two batches")
        {
            repaired[idx] = Some(val);
        }
        assert_eq!(repaired, rescanned, "repair diverged from rescan");
    }));
    assert!(report.iterations > 10, "expected a real interleaving space");
}

/// Regression model of lossy replay: patching with whatever happens to
/// survive eviction (`entries_in`, no completeness check) instead of the
/// all-or-nothing `window` silently produces a wrong repaired result once
/// the capacity bound has dropped a batch. The checker must find it — and
/// the real `window` API refuses the same range.
#[test]
fn delta_lossy_replay_is_caught() {
    let failure = try_model(builder(), || {
        let core = Arc::new(VersionCore::new());
        let map = Arc::new(RwLock::new([Some(1u64), None]));
        let log: Arc<DeltaLogCore<(usize, u64)>> = Arc::new(DeltaLogCore::new(1));
        // The session snapshots before any maintenance: sessionVN = 1.
        let mut repaired = [None, None];
        let mut svn = 0;
        core.snapshot_with(|view| {
            repaired = *read_latch(&map);
            svn = view.current_vn;
        });
        let (c2, m2, l2) = (Arc::clone(&core), Arc::clone(&map), Arc::clone(&log));
        let maint = wh_model::thread::spawn(move || {
            for (idx, val) in [(0_usize, 2_u64), (1, 5)] {
                let vn = c2
                    .begin_maintenance(|_| Ok::<(), ()>(()))
                    .expect("sole maintenance txn");
                c2.publish_commit(
                    vn,
                    || Ok::<(), ()>(()),
                    |vn| {
                        write_latch(&m2)[idx] = Some(val);
                        l2.retain(vn, (idx, val));
                        Ok::<(), ()>(())
                    },
                )
                .expect("commit publishes");
            }
        });
        maint.join().unwrap();
        let mut rescanned = [None, None];
        let mut vn_now = 0;
        core.snapshot_with(|view| {
            rescanned = *read_latch(&map);
            vn_now = view.current_vn;
        });
        // Capacity 1 dropped VN 2's batch: the honest API refuses ...
        assert!(log.window(svn, vn_now).is_none(), "window must refuse");
        // ... but the pre-fix behaviour replays the survivors anyway.
        for (_, (idx, val)) in log.entries_in(svn, vn_now) {
            repaired[idx] = Some(val);
        }
        assert_eq!(repaired, rescanned, "lossy replay diverged from rescan");
    })
    .expect_err("lossy replay must have a failing interleaving");
    assert!(
        failure.message.contains("diverged"),
        "unexpected failure: {failure}"
    );
}

/// Lease kernel: concurrent registrations never collide on an ID.
#[test]
fn lease_registration_ids_are_unique() {
    ok(try_model(builder(), || {
        let reg: Arc<LeaseCore<u64>> = Arc::new(LeaseCore::new());
        let r2 = Arc::clone(&reg);
        let t = wh_model::thread::spawn(move || r2.register(7, 50));
        let a = reg.register(8, 50);
        let b = t.join().unwrap();
        assert_ne!(a, b, "lease IDs collided");
        assert_eq!(reg.len(), 2);
    }));
}
