//! Randomized tests: the fixed-width row codec must round-trip every valid
//! row of every schema, and its length accounting must hold exactly — the
//! in-place-update requirement of paper §4 depends on it.
//!
//! Inputs are generated with the deterministic [`SplitMix64`] generator, so
//! every run exercises the same cases (no external proptest dependency).

use wh_types::{Column, DataType, Date, Row, RowCodec, Schema, SplitMix64, Value};

fn random_datatype(rng: &mut SplitMix64) -> DataType {
    match rng.next_below(6) {
        0 => DataType::UInt8,
        1 => DataType::Int32,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Char(rng.range_i64(1, 24) as usize),
        _ => DataType::Date,
    }
}

fn random_value_for(rng: &mut SplitMix64, ty: DataType) -> Value {
    // ~1 in 4 values are NULL, as in the original distribution.
    if rng.chance(1, 4) {
        return Value::Null;
    }
    match ty {
        DataType::UInt8 => Value::Int(rng.range_i64(0, 256)),
        DataType::Int32 => Value::Int(rng.range_i64(i32::MIN as i64, i32::MAX as i64)),
        DataType::Int64 => Value::Int(rng.next_u64() as i64),
        DataType::Float64 => {
            if rng.chance(1, 2) {
                Value::Float(rng.next_u64() as i64 as f64)
            } else {
                Value::Float((rng.next_f64() - 0.5) * 2e12)
            }
        }
        DataType::Char(n) => {
            let len = rng.next_below(n as u64 + 1) as usize;
            let mut s: String = (0..len)
                .map(|_| (b' ' + rng.next_below(95) as u8) as char)
                .collect();
            // Trailing spaces are padding, not content; they would not
            // round-trip, so trim them like the original filter did.
            while s.ends_with(' ') {
                s.pop();
            }
            Value::Str(s.into())
        }
        DataType::Date => Value::Date(Date::ymd(
            rng.range_i64(1900, 2100) as u16,
            rng.range_i64(1, 13) as u8,
            rng.range_i64(1, 29) as u8,
        )),
    }
}

fn random_schema_and_row(rng: &mut SplitMix64) -> (Schema, Row) {
    let arity = rng.range_i64(1, 10) as usize;
    let types: Vec<DataType> = (0..arity).map(|_| random_datatype(rng)).collect();
    let columns: Vec<Column> = types
        .iter()
        .enumerate()
        .map(|(i, &ty)| {
            if i % 2 == 0 {
                Column::new(format!("c{i}"), ty)
            } else {
                Column::updatable(format!("c{i}"), ty)
            }
        })
        .collect();
    let schema = Schema::new(columns).expect("unique names");
    let row: Row = types.iter().map(|&ty| random_value_for(rng, ty)).collect();
    (schema, row)
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = SplitMix64::seed_from_u64(0x0C0D_EC01);
    for _ in 0..256 {
        let (schema, row) = random_schema_and_row(&mut rng);
        let codec = RowCodec::new(schema);
        let buf = codec.encode(&row).unwrap();
        assert_eq!(buf.len(), codec.encoded_len());
        let decoded = codec.decode(&buf).unwrap();
        assert_eq!(decoded.len(), row.len());
        for (d, r) in decoded.iter().zip(&row) {
            assert_eq!(d, r, "column mismatch");
        }
    }
}

#[test]
fn encoded_len_is_schema_constant() {
    let mut rng = SplitMix64::seed_from_u64(0x0C0D_EC02);
    for _ in 0..256 {
        let (schema, row) = random_schema_and_row(&mut rng);
        let codec = RowCodec::new(schema.clone());
        let expected = schema.arity().div_ceil(8) + schema.payload_width();
        assert_eq!(codec.encoded_len(), expected);
        // Every encoded row of this schema has the same width — the
        // precondition for in-place updates.
        let buf = codec.encode(&row).unwrap();
        let nulls: Row = vec![Value::Null; schema.arity()];
        let buf2 = codec.encode(&nulls).unwrap();
        assert_eq!(buf.len(), buf2.len());
    }
}

#[test]
fn in_place_overwrite_is_total() {
    let mut rng = SplitMix64::seed_from_u64(0x0C0D_EC03);
    for _ in 0..256 {
        let (schema, row) = random_schema_and_row(&mut rng);
        // Decoding after overwriting one image with another never sees a mix.
        let codec = RowCodec::new(schema.clone());
        let nulls: Row = vec![Value::Null; schema.arity()];
        let mut slot = codec.encode(&nulls).unwrap();
        let image = codec.encode(&row).unwrap();
        slot.copy_from_slice(&image);
        let decoded = codec.decode(&slot).unwrap();
        for (d, r) in decoded.iter().zip(&row) {
            assert_eq!(d, r);
        }
    }
}
