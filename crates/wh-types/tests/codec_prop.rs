//! Property tests: the fixed-width row codec must round-trip every valid
//! row of every schema, and its length accounting must hold exactly — the
//! in-place-update requirement of paper §4 depends on it.

use proptest::prelude::*;
use wh_types::{Column, DataType, Date, Row, RowCodec, Schema, Value};

fn arb_datatype() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::UInt8),
        Just(DataType::Int32),
        Just(DataType::Int64),
        Just(DataType::Float64),
        (1usize..24).prop_map(DataType::Char),
        Just(DataType::Date),
    ]
}

fn arb_value_for(ty: DataType) -> BoxedStrategy<Value> {
    let non_null: BoxedStrategy<Value> = match ty {
        DataType::UInt8 => (0i64..=255).prop_map(Value::Int).boxed(),
        DataType::Int32 => (i32::MIN as i64..=i32::MAX as i64)
            .prop_map(Value::Int)
            .boxed(),
        DataType::Int64 => any::<i64>().prop_map(Value::Int).boxed(),
        DataType::Float64 => prop_oneof![
            any::<i64>().prop_map(|i| Value::Float(i as f64)),
            (-1e12f64..1e12).prop_map(Value::Float),
        ]
        .boxed(),
        DataType::Char(n) => proptest::string::string_regex(&format!("[ -~]{{0,{n}}}"))
            .expect("valid regex")
            .prop_filter("no trailing spaces (padding is not content)", |s| {
                !s.ends_with(' ')
            })
            .prop_map(Value::Str)
            .boxed(),
        DataType::Date => (1900u16..2100, 1u8..=12, 1u8..=28)
            .prop_map(|(y, m, d)| Value::Date(Date::ymd(y, m, d)))
            .boxed(),
    };
    prop_oneof![3 => non_null, 1 => Just(Value::Null)].boxed()
}

fn arb_schema_and_row() -> impl Strategy<Value = (Schema, Row)> {
    prop::collection::vec(arb_datatype(), 1..10).prop_flat_map(|types| {
        let columns: Vec<Column> = types
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                if i % 2 == 0 {
                    Column::new(format!("c{i}"), ty)
                } else {
                    Column::updatable(format!("c{i}"), ty)
                }
            })
            .collect();
        let schema = Schema::new(columns).expect("unique names");
        let values: Vec<BoxedStrategy<Value>> =
            types.iter().map(|&ty| arb_value_for(ty)).collect();
        (Just(schema), values)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trips((schema, row) in arb_schema_and_row()) {
        let codec = RowCodec::new(schema.clone());
        let buf = codec.encode(&row).unwrap();
        prop_assert_eq!(buf.len(), codec.encoded_len());
        let decoded = codec.decode(&buf).unwrap();
        // Int stored in a Float64 column legitimately decodes as Float; use
        // the grouping equality (numeric cross-type) for comparison.
        prop_assert_eq!(decoded.len(), row.len());
        for (d, r) in decoded.iter().zip(&row) {
            prop_assert_eq!(d, r, "column mismatch");
        }
    }

    #[test]
    fn encoded_len_is_schema_constant((schema, row) in arb_schema_and_row()) {
        let codec = RowCodec::new(schema.clone());
        let expected = schema.arity().div_ceil(8) + schema.payload_width();
        prop_assert_eq!(codec.encoded_len(), expected);
        // Every encoded row of this schema has the same width — the
        // precondition for in-place updates.
        let buf = codec.encode(&row).unwrap();
        let nulls: Row = vec![Value::Null; schema.arity()];
        let buf2 = codec.encode(&nulls).unwrap();
        prop_assert_eq!(buf.len(), buf2.len());
    }

    #[test]
    fn in_place_overwrite_is_total((schema, row) in arb_schema_and_row()) {
        // Decoding after overwriting one image with another never sees a mix.
        let codec = RowCodec::new(schema.clone());
        let nulls: Row = vec![Value::Null; schema.arity()];
        let mut slot = codec.encode(&nulls).unwrap();
        let image = codec.encode(&row).unwrap();
        slot.copy_from_slice(&image);
        let decoded = codec.decode(&slot).unwrap();
        for (d, r) in decoded.iter().zip(&row) {
            prop_assert_eq!(d, r);
        }
    }
}
