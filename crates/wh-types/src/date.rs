//! Calendar dates, stored as `(year, month, day)` and encoded in 4 bytes.
//!
//! The paper's running example keys the `DailySales` summary table on a
//! 4-byte `date` column (Figure 3). Dates order chronologically and support
//! day arithmetic so the workload generator can produce daily batches.

use std::fmt;

/// A calendar date. Ordering is chronological.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: u16,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u16, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Construct a date, validating the month and day ranges.
    ///
    /// Returns `None` for out-of-range components (month 0/13, day 0, or a
    /// day past the end of the month, honouring leap years).
    pub fn new(year: u16, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Construct without validation; panics (debug) on invalid input.
    ///
    /// Convenient for literals in tests and examples.
    pub fn ymd(year: u16, month: u8, day: u8) -> Self {
        Self::new(year, month, day).expect("invalid date literal") // lint: allow(no-panic) — invariant documented in the expect message
    }

    /// Year component.
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Month component (1-12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day-of-month component (1-31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// The next calendar day.
    pub fn succ(&self) -> Date {
        let (mut y, mut m, mut d) = (self.year, self.month, self.day);
        if d < days_in_month(y, m) {
            d += 1;
        } else if m < 12 {
            m += 1;
            d = 1;
        } else {
            y += 1;
            m = 1;
            d = 1;
        }
        Date {
            year: y,
            month: m,
            day: d,
        }
    }

    /// The date `n` days after this one.
    pub fn plus_days(&self, n: u32) -> Date {
        let mut cur = *self;
        for _ in 0..n {
            cur = cur.succ();
        }
        cur
    }

    /// Pack into a `u32` that preserves chronological order
    /// (`year * 10_000 + month * 100 + day`). Used by the 4-byte codec.
    pub fn to_packed(&self) -> u32 {
        self.year as u32 * 10_000 + self.month as u32 * 100 + self.day as u32
    }

    /// Inverse of [`Date::to_packed`]. Returns `None` if the packed value does
    /// not denote a valid date.
    pub fn from_packed(packed: u32) -> Option<Self> {
        let year = (packed / 10_000) as u16;
        let month = ((packed / 100) % 100) as u8;
        let day = (packed % 100) as u8;
        Date::new(year, month, day)
    }

    /// Parse `"MM/DD/YYYY"` or `"YYYY-MM-DD"`; two-digit years in the slash
    /// form are interpreted as 19xx, matching the paper's `10/14/96` style.
    pub fn parse(s: &str) -> Option<Self> {
        if let Some((y, rest)) = s.split_once('-') {
            let (m, d) = rest.split_once('-')?;
            return Date::new(y.parse().ok()?, m.parse().ok()?, d.parse().ok()?);
        }
        let mut it = s.split('/');
        let m: u8 = it.next()?.parse().ok()?;
        let d: u8 = it.next()?.parse().ok()?;
        let y_raw: u16 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        let y = if y_raw < 100 { 1900 + y_raw } else { y_raw };
        Date::new(y, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_accessors() {
        let d = Date::ymd(1996, 10, 14);
        assert_eq!(d.year(), 1996);
        assert_eq!(d.month(), 10);
        assert_eq!(d.day(), 14);
    }

    #[test]
    fn rejects_invalid() {
        assert!(Date::new(1996, 0, 1).is_none());
        assert!(Date::new(1996, 13, 1).is_none());
        assert!(Date::new(1996, 2, 30).is_none());
        assert!(Date::new(1996, 4, 31).is_none());
        assert!(Date::new(1996, 1, 0).is_none());
    }

    #[test]
    fn leap_years() {
        assert!(Date::new(1996, 2, 29).is_some());
        assert!(Date::new(1997, 2, 29).is_none());
        assert!(Date::new(2000, 2, 29).is_some());
        assert!(Date::new(1900, 2, 29).is_none());
    }

    #[test]
    fn succ_rolls_over() {
        assert_eq!(Date::ymd(1996, 10, 14).succ(), Date::ymd(1996, 10, 15));
        assert_eq!(Date::ymd(1996, 10, 31).succ(), Date::ymd(1996, 11, 1));
        assert_eq!(Date::ymd(1996, 12, 31).succ(), Date::ymd(1997, 1, 1));
        assert_eq!(Date::ymd(1996, 2, 28).succ(), Date::ymd(1996, 2, 29));
        assert_eq!(Date::ymd(1997, 2, 28).succ(), Date::ymd(1997, 3, 1));
    }

    #[test]
    fn plus_days() {
        assert_eq!(Date::ymd(1996, 12, 30).plus_days(3), Date::ymd(1997, 1, 2));
        assert_eq!(Date::ymd(1996, 1, 1).plus_days(0), Date::ymd(1996, 1, 1));
    }

    #[test]
    fn packed_round_trip() {
        let d = Date::ymd(1996, 10, 14);
        assert_eq!(Date::from_packed(d.to_packed()), Some(d));
        assert_eq!(d.to_packed(), 19_961_014);
        assert!(Date::from_packed(19_961_345).is_none());
    }

    #[test]
    fn packed_preserves_order() {
        let a = Date::ymd(1996, 10, 14);
        let b = Date::ymd(1996, 10, 15);
        let c = Date::ymd(1997, 1, 1);
        assert!(a < b && b < c);
        assert!(a.to_packed() < b.to_packed() && b.to_packed() < c.to_packed());
    }

    #[test]
    fn parse_both_forms() {
        assert_eq!(Date::parse("10/14/96"), Some(Date::ymd(1996, 10, 14)));
        assert_eq!(Date::parse("10/14/1996"), Some(Date::ymd(1996, 10, 14)));
        assert_eq!(Date::parse("1996-10-14"), Some(Date::ymd(1996, 10, 14)));
        assert_eq!(Date::parse("14-10"), None);
        assert_eq!(Date::parse("garbage"), None);
        assert_eq!(Date::parse("13/01/96"), None);
    }

    #[test]
    fn display() {
        assert_eq!(Date::ymd(1996, 10, 14).to_string(), "1996-10-14");
    }
}
