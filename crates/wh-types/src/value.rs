//! Dynamically-typed column values.

use crate::date::Date;
use crate::error::{TypeError, TypeResult};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single column value.
///
/// `Null` follows SQL three-valued-logic conventions where it matters to the
/// algorithms in this system: comparisons involving `Null` return `None`
/// (unknown) from [`Value::sql_cmp`], and aggregates skip `Null` inputs. The
/// paper relies on `NULL` pre-update attributes to mark freshly inserted
/// tuples (Table 1 / Figure 4), so faithful null handling is load-bearing.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (also used for 32-bit and 8-bit columns).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Character string. `Arc<str>` rather than `String`: scans and the
    /// SQL executor clone string values far more often than they create
    /// them (projection, group keys, query results), and warehouse string
    /// columns are low-cardinality — a clone must be a refcount bump, not
    /// an allocation. Construction goes through `From`, so call sites are
    /// agnostic.
    Str(Arc<str>),
    /// Calendar date.
    Date(Date),
    /// Boolean (used by expression evaluation; not a storable column type).
    Bool(bool),
}

impl Value {
    /// Human-readable type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Str(_) => "STRING",
            Value::Date(_) => "DATE",
            Value::Bool(_) => "BOOL",
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, coercing from float when lossless is not required.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (unknown), error on
    /// incomparable types. Int/Float compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> TypeResult<Option<Ordering>> {
        use Value::*;
        let ord = match (self, other) {
            (Null, _) | (_, Null) => return Ok(None),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => {
                return Err(TypeError::Mismatch {
                    op: "compare",
                    left: self.type_name().into(),
                    right: other.type_name().into(),
                })
            }
        };
        Ok(Some(ord))
    }

    /// Total order used for GROUP BY / ORDER BY / index keys: NULLs sort
    /// first, then by type, then by value. Unlike [`Value::sql_cmp`] this is
    /// total and never errors, which grouping requires.
    pub fn grouping_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Date(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    fn numeric_binop(
        &self,
        other: &Value,
        op: &'static str,
        fi: impl Fn(i64, i64) -> TypeResult<i64>,
        ff: impl Fn(f64, f64) -> TypeResult<f64>,
    ) -> TypeResult<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(a), Int(b)) => Ok(Int(fi(*a, *b)?)),
            (Float(a), Float(b)) => Ok(Float(ff(*a, *b)?)),
            (Int(a), Float(b)) => Ok(Float(ff(*a as f64, *b)?)),
            (Float(a), Int(b)) => Ok(Float(ff(*a, *b as f64)?)),
            _ => Err(TypeError::Mismatch {
                op,
                left: self.type_name().into(),
                right: other.type_name().into(),
            }),
        }
    }

    /// SQL `+`. NULL-propagating.
    pub fn add(&self, other: &Value) -> TypeResult<Value> {
        self.numeric_binop(other, "add", |a, b| Ok(a.wrapping_add(b)), |a, b| Ok(a + b))
    }

    /// SQL `-`. NULL-propagating.
    pub fn sub(&self, other: &Value) -> TypeResult<Value> {
        self.numeric_binop(other, "sub", |a, b| Ok(a.wrapping_sub(b)), |a, b| Ok(a - b))
    }

    /// SQL `*`. NULL-propagating.
    pub fn mul(&self, other: &Value) -> TypeResult<Value> {
        self.numeric_binop(other, "mul", |a, b| Ok(a.wrapping_mul(b)), |a, b| Ok(a * b))
    }

    /// SQL `/`. NULL-propagating; integer division by zero is an error.
    pub fn div(&self, other: &Value) -> TypeResult<Value> {
        self.numeric_binop(
            other,
            "div",
            |a, b| {
                if b == 0 {
                    Err(TypeError::Arithmetic("division by zero"))
                } else {
                    Ok(a / b)
                }
            },
            |a, b| {
                if b == 0.0 {
                    Err(TypeError::Arithmetic("division by zero"))
                } else {
                    Ok(a / b)
                }
            },
        )
    }
}

/// Equality matching [`Value::grouping_cmp`]: total, NULL == NULL, numeric
/// cross-type equality. This is the equality used for group keys and unique
/// keys, not SQL predicate equality (which treats NULL as unknown).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.grouping_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats must hash identically when numerically equal,
            // because grouping_cmp treats Int(2) == Float(2.0).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_type_mismatch_errors() {
        assert!(Value::Int(1).sql_cmp(&Value::Str("a".into())).is_err());
        assert!(Value::Date(Date::ymd(1996, 1, 1))
            .sql_cmp(&Value::Int(1))
            .is_err());
    }

    #[test]
    fn grouping_cmp_total_order() {
        assert_eq!(Value::Null.grouping_cmp(&Value::Null), Ordering::Equal);
        assert_eq!(Value::Null.grouping_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).grouping_cmp(&Value::Int(9)),
            Ordering::Greater
        );
    }

    #[test]
    fn grouping_eq_and_hash_agree_across_numeric_types() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Int(7).sub(&Value::Int(2)).unwrap(), Value::Int(5));
        assert_eq!(Value::Int(4).mul(&Value::Int(3)).unwrap(), Value::Int(12));
        assert_eq!(Value::Int(9).div(&Value::Int(2)).unwrap(), Value::Int(4));
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert!(Value::Str("x".into()).add(&Value::Int(1)).is_err());
    }

    #[test]
    fn display_rendering() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("San Jose".into()).to_string(), "San Jose");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
    }
}
