//! Failpoint registry for deterministic fault injection.
//!
//! The paper's strongest robustness claim (§7) is that 2VNL maintenance
//! needs **no log** to survive a crash: tuple `tupleVN`/`operation` fields
//! alone carry enough state to reconstruct a consistent pre-transaction
//! database. Exercising that claim requires crashing *between* latched
//! steps of the write path — which is what this module enables.
//!
//! A **failpoint** is a named site in the code, marked with the
//! [`fail_point!`] macro. By default every failpoint is `Off` and the macro
//! compiles to **nothing** unless the expanding crate enables its
//! `failpoints` cargo feature — tier-1 builds carry zero overhead, not even
//! a branch. With the feature on, a test configures a [`FaultAction`] for a
//! point by name and the next evaluation injects an error, a delay, or a
//! panic at exactly that site.
//!
//! The registry is process-global (failpoints are a test-only facility and
//! tests that use them serialize on their own mutex); hit counters let a
//! crash-matrix driver prove that every registered point actually fired.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// The central catalog of every failpoint name in the workspace.
///
/// Three places must agree, and two enforcers prove they do:
///
/// * each defining crate's `FAILPOINTS` const (what the crash matrix
///   sweeps) — the `failpoints_meta` meta-test asserts their union is
///   exactly this list;
/// * every `fail_point!` call site — `cargo run -p wh-analyze` scans the
///   source tree and rejects any site whose name is missing here (or any
///   entry here with no call site).
///
/// Keep the list sorted; the meta-test checks that too, so merge conflicts
/// stay textual.
pub const REGISTRY: &[&str] = &[
    "cc.lock.grant",
    "cc.lock.release",
    "storage.ckpt.begin",
    "storage.ckpt.meta",
    "storage.disk.read",
    "storage.disk.write",
    "storage.heap.delete",
    "storage.heap.free_space",
    "storage.heap.insert",
    "storage.heap.latch",
    "storage.heap.modify",
    "storage.heap.read",
    "storage.heap.write",
    "storage.pool.evict",
    "storage.pool.flush",
    "vnl.delta.capture",
    "vnl.delta.evict",
    "vnl.gc.reclaim",
    "vnl.gc.unregister",
    "vnl.repair.apply",
    "vnl.txn.delete.mark",
    "vnl.txn.delete.mark_own_update",
    "vnl.txn.delete.remove_own",
    "vnl.txn.insert.fresh",
    "vnl.txn.insert.register",
    "vnl.txn.insert.resurrect",
    "vnl.txn.rollback.step",
    "vnl.txn.update.in_place",
    "vnl.txn.update.save_pre",
    "vnl.version.begin",
    "vnl.version.publish_abort",
    "vnl.version.publish_commit",
];

/// What an armed failpoint does when evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Disarmed: evaluation is a no-op (the default for every point).
    #[default]
    Off,
    /// Return a [`FaultError`] on every evaluation until disarmed.
    Error,
    /// Return a [`FaultError`] for the next `n` evaluations, then pass.
    ErrorTimes(u64),
    /// Sleep for the duration, then pass (latch-hold / slow-I/O simulation).
    Delay(Duration),
    /// Panic (poisons any latch held across the point; exercises
    /// poison-recovery on the read paths).
    Panic,
}

/// The typed error an armed failpoint injects. Callers convert it into
/// their own error type via a `From` impl so injected faults propagate like
/// any genuine failure instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultError {
    /// Name of the failpoint that fired.
    pub point: &'static str,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint '{}'", self.point)
    }
}

impl std::error::Error for FaultError {}

#[derive(Debug, Default)]
struct PointState {
    action: FaultAction,
    /// Times the point was evaluated (reached in code).
    hits: u64,
    /// Times the point actually injected a fault.
    fired: u64,
}

fn registry() -> &'static Mutex<HashMap<&'static str, PointState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, PointState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<&'static str, PointState>> {
    // A panic-action failpoint poisons this mutex by design; the map is
    // never left mid-mutation, so recovering the guard is sound.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm (or disarm, with [`FaultAction::Off`]) the named failpoint.
pub fn configure(point: &'static str, action: FaultAction) {
    lock().entry(point).or_default().action = action;
}

/// Disarm every failpoint and zero all counters.
pub fn clear_all() {
    lock().clear();
}

/// Disarm every failpoint but keep hit/fired counters (so a crash-matrix
/// run can disarm before recovery yet still report coverage).
pub fn disarm_all() {
    for state in lock().values_mut() {
        state.action = FaultAction::Off;
    }
}

/// How many times the named point has been evaluated.
pub fn hits(point: &str) -> u64 {
    lock().get(point).map_or(0, |s| s.hits)
}

/// How many times the named point has injected a fault.
pub fn fired(point: &str) -> u64 {
    lock().get(point).map_or(0, |s| s.fired)
}

/// Per-point counters at one moment in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointStats {
    /// Failpoint name.
    pub point: &'static str,
    /// Evaluations.
    pub hits: u64,
    /// Injections.
    pub fired: u64,
    /// Whether the point is currently armed.
    pub armed: bool,
}

/// Snapshot of every point the registry has seen (configured or evaluated),
/// sorted by name.
pub fn snapshot() -> Vec<PointStats> {
    let mut out: Vec<PointStats> = lock()
        .iter()
        .map(|(&point, s)| PointStats {
            point,
            hits: s.hits,
            fired: s.fired,
            armed: s.action != FaultAction::Off,
        })
        .collect();
    out.sort_by_key(|s| s.point);
    out
}

/// Evaluate the named failpoint: count the hit and perform the configured
/// action. Called via [`fail_point!`], never directly from production code.
pub fn fire(point: &'static str) -> Result<(), FaultError> {
    let mut map = lock();
    let state = map.entry(point).or_default();
    state.hits += 1;
    match state.action {
        FaultAction::Off | FaultAction::ErrorTimes(0) => Ok(()),
        FaultAction::Error => {
            state.fired += 1;
            Err(FaultError { point })
        }
        FaultAction::ErrorTimes(n) => {
            state.action = FaultAction::ErrorTimes(n - 1);
            state.fired += 1;
            Err(FaultError { point })
        }
        FaultAction::Delay(d) => {
            state.fired += 1;
            drop(map);
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Panic => {
            state.fired += 1;
            drop(map);
            panic!("failpoint '{point}' fired with Panic action"); // lint: allow(no-panic) — this panic IS the configured Panic fault action
        }
    }
}

/// Mark a failpoint.
///
/// Compiles to nothing unless the **expanding** crate enables its
/// `failpoints` cargo feature (each crate forwards it to
/// `wh-types/failpoints`), so disabled builds pay zero cost — the claim the
/// tier-1 CI job proves by building without the feature.
///
/// Two forms:
///
/// * `fail_point!("name")` — inside a function returning `Result<_, E>`
///   where `E: From<FaultError>`: an injected fault propagates via `?`.
/// * `fail_point!("name", expr)` — inside any function: an injected fault
///   makes the function `return expr` (for non-`Result` paths such as lock
///   acquisition outcomes).
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        $crate::fault::fire($name)?;
    }};
    ($name:expr, $on_fault:expr) => {{
        #[cfg(feature = "failpoints")]
        if $crate::fault::fire($name).is_err() {
            // `$on_fault` may be `()` for early-return-from-unit paths.
            #[allow(clippy::unused_unit)]
            return $on_fault;
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests in this module serialize.
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn off_points_pass_and_count() {
        let _g = serialized();
        clear_all();
        assert!(fire("t.off").is_ok());
        assert!(fire("t.off").is_ok());
        assert_eq!(hits("t.off"), 2);
        assert_eq!(fired("t.off"), 0);
    }

    #[test]
    fn error_action_injects_until_disarmed() {
        let _g = serialized();
        clear_all();
        configure("t.err", FaultAction::Error);
        assert_eq!(fire("t.err"), Err(FaultError { point: "t.err" }));
        assert_eq!(fire("t.err"), Err(FaultError { point: "t.err" }));
        configure("t.err", FaultAction::Off);
        assert!(fire("t.err").is_ok());
        assert_eq!(hits("t.err"), 3);
        assert_eq!(fired("t.err"), 2);
    }

    #[test]
    fn error_times_counts_down() {
        let _g = serialized();
        clear_all();
        configure("t.twice", FaultAction::ErrorTimes(2));
        assert!(fire("t.twice").is_err());
        assert!(fire("t.twice").is_err());
        assert!(fire("t.twice").is_ok());
        assert_eq!(fired("t.twice"), 2);
    }

    #[test]
    fn disarm_all_keeps_counters() {
        let _g = serialized();
        clear_all();
        configure("t.keep", FaultAction::Error);
        let _ = fire("t.keep");
        disarm_all();
        assert!(fire("t.keep").is_ok());
        assert_eq!(hits("t.keep"), 2);
        assert_eq!(fired("t.keep"), 1);
        let snap = snapshot();
        let s = snap.iter().find(|s| s.point == "t.keep").unwrap();
        assert!(!s.armed);
    }

    #[test]
    fn delay_action_sleeps_then_passes() {
        let _g = serialized();
        clear_all();
        configure("t.delay", FaultAction::Delay(Duration::from_millis(15)));
        let start = std::time::Instant::now();
        assert!(fire("t.delay").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn panic_action_panics_and_registry_survives() {
        let _g = serialized();
        clear_all();
        configure("t.panic", FaultAction::Panic);
        let r = std::panic::catch_unwind(|| fire("t.panic"));
        assert!(r.is_err());
        // The poisoned registry still works.
        configure("t.panic", FaultAction::Off);
        assert!(fire("t.panic").is_ok());
        assert_eq!(fired("t.panic"), 1);
    }
}
