//! A small deterministic PRNG (SplitMix64) used by workload generators,
//! simulations, and randomized tests.
//!
//! The workspace builds with no network access, so it cannot depend on the
//! `rand` crate; SplitMix64 (Steele, Lea & Flood, OOPSLA '14) is tiny, has
//! excellent statistical quality for non-cryptographic use, and — crucially
//! for experiments — is exactly reproducible from a seed on every platform.

/// SplitMix64: a 64-bit PRNG with a single `u64` of state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be nonzero. Uses
    /// rejection sampling to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a nonzero bound");
        // Zone = largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)` (half-open). `lo < hi` required.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64 requires lo < hi");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.next_below(span) as i64)
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive). `lo <= hi` required.
    pub fn range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive_u64 requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of entropy).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, hi)`.
    pub fn float_below(&mut self, hi: f64) -> f64 {
        self.next_f64() * hi
    }

    /// Bernoulli trial: `true` with probability `num / denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 seeded with 0, per the published
        // reference implementation.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn bounds_respected() {
        let mut r = SplitMix64::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let u = r.range_inclusive_u64(2, 4);
            assert!((2..=4).contains(&u));
        }
    }

    #[test]
    fn small_bounds_cover_all_values() {
        let mut r = SplitMix64::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SplitMix64::seed_from_u64(42);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[r.index(10)] += 1;
        }
        for &b in &buckets {
            // Each bucket within 10% of the expected 10k.
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }
}
