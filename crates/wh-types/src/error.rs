//! Error type for value/schema-level failures.

use std::fmt;

/// Errors raised by the data-model layer: type mismatches, schema violations,
/// and codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// An operation was applied to values of incompatible types.
    Mismatch {
        /// What the caller was doing (e.g. `"add"`, `"compare"`).
        op: &'static str,
        /// Rendered type of the left operand.
        left: String,
        /// Rendered type of the right operand.
        right: String,
    },
    /// A value does not fit the declared column type.
    ColumnType {
        /// Column name.
        column: String,
        /// Declared type, rendered.
        expected: String,
        /// Offending value, rendered.
        got: String,
    },
    /// A string exceeds the declared `Char(n)` width.
    StringTooLong {
        /// Column name.
        column: String,
        /// Declared width.
        width: usize,
        /// Actual byte length of the value.
        len: usize,
    },
    /// Row arity does not match schema arity.
    Arity {
        /// Columns in the schema.
        expected: usize,
        /// Values in the row.
        got: usize,
    },
    /// A named column does not exist in the schema.
    NoSuchColumn(String),
    /// Two columns with the same name were declared.
    DuplicateColumn(String),
    /// The byte buffer could not be decoded as a row of the schema.
    Codec(String),
    /// Division by zero or a similar arithmetic failure.
    Arithmetic(&'static str),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch { op, left, right } => {
                write!(f, "type mismatch in {op}: {left} vs {right}")
            }
            TypeError::ColumnType {
                column,
                expected,
                got,
            } => write!(f, "column {column} expects {expected}, got {got}"),
            TypeError::StringTooLong { column, width, len } => {
                write!(
                    f,
                    "value of length {len} exceeds CHAR({width}) column {column}"
                )
            }
            TypeError::Arity { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            TypeError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            TypeError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            TypeError::Codec(msg) => write!(f, "row codec error: {msg}"),
            TypeError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// Result alias for data-model operations.
pub type TypeResult<T> = Result<T, TypeError>;
