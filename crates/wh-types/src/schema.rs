//! Column and relation schemas with declared on-disk widths.
//!
//! A [`Schema`] records, for each column, its [`DataType`] and whether it is
//! **updatable** — the distinction at the heart of the paper's §3.1: only
//! updatable attributes get pre-update copies when a relation is extended for
//! 2VNL, which is why summary tables (whose group-by attributes never change)
//! pay so little storage overhead.

use crate::error::{TypeError, TypeResult};
use crate::value::Value;
use std::fmt;

/// Storable column types with fixed on-disk widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 1-byte unsigned integer (used for the `operation` flag column).
    UInt8,
    /// 4-byte signed integer.
    Int32,
    /// 8-byte signed integer.
    Int64,
    /// 8-byte IEEE-754 float.
    Float64,
    /// Fixed-width character string of `n` bytes, space-padded on disk.
    Char(usize),
    /// 4-byte calendar date.
    Date,
}

impl DataType {
    /// Bytes this type occupies in a stored tuple (Figure 3's column widths).
    pub fn byte_width(&self) -> usize {
        match self {
            DataType::UInt8 => 1,
            DataType::Int32 => 4,
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Char(n) => *n,
            DataType::Date => 4,
        }
    }

    /// Whether `value` is storable in a column of this type (`Null` always is;
    /// nullability is tracked by a side bitmap, not the type).
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (_, Value::Null) => true,
            (DataType::UInt8, Value::Int(i)) => (0..=255).contains(i),
            (DataType::Int32, Value::Int(i)) => *i >= i32::MIN as i64 && *i <= i32::MAX as i64,
            (DataType::Int64, Value::Int(_)) => true,
            (DataType::Float64, Value::Float(_)) => true,
            (DataType::Float64, Value::Int(_)) => true,
            (DataType::Char(n), Value::Str(s)) => s.len() <= *n,
            (DataType::Date, Value::Date(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::UInt8 => write!(f, "TINYINT"),
            DataType::Int32 => write!(f, "INT"),
            DataType::Int64 => write!(f, "BIGINT"),
            DataType::Float64 => write!(f, "DOUBLE"),
            DataType::Char(n) => write!(f, "CHAR({n})"),
            DataType::Date => write!(f, "DATE"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether maintenance transactions may UPDATE this column (§3.1's
    /// *updatable attribute* set `A'`). Group-by attributes of summary tables
    /// are not updatable; aggregate result attributes are.
    pub updatable: bool,
}

impl Column {
    /// A non-updatable column (the common case for warehouse dimensions).
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            updatable: false,
        }
    }

    /// An updatable column (aggregate results in summary tables).
    pub fn updatable(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
            updatable: true,
        }
    }
}

/// A relation schema: ordered columns plus an optional unique key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    /// Indexes (into `columns`) of the unique-key attributes, empty when the
    /// relation has no unique key. For summary tables this is the set of
    /// group-by attributes (§3.3, Example 3.3).
    key: Vec<usize>,
}

impl Schema {
    /// Build a schema without a unique key. Fails on duplicate column names.
    pub fn new(columns: Vec<Column>) -> TypeResult<Self> {
        Self::with_key(columns, Vec::new())
    }

    /// Build a schema with a unique key given by column indexes.
    pub fn with_key(columns: Vec<Column>, key: Vec<usize>) -> TypeResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(TypeError::DuplicateColumn(c.name.clone()));
            }
        }
        for &k in &key {
            if k >= columns.len() {
                return Err(TypeError::NoSuchColumn(format!("key index {k}")));
            }
        }
        Ok(Schema { columns, key })
    }

    /// Build a schema with a unique key given by column names.
    pub fn with_key_names(columns: Vec<Column>, key_names: &[&str]) -> TypeResult<Self> {
        let mut key = Vec::with_capacity(key_names.len());
        for name in key_names {
            let idx = columns
                .iter()
                .position(|c| c.name == *name)
                .ok_or_else(|| TypeError::NoSuchColumn((*name).into()))?;
            key.push(idx);
        }
        Self::with_key(columns, key)
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indexes of the unique-key columns (empty = no unique key).
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Whether this relation declares a unique key.
    pub fn has_key(&self) -> bool {
        !self.key.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> TypeResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| TypeError::NoSuchColumn(name.into()))
    }

    /// Column metadata by name.
    pub fn column(&self, name: &str) -> TypeResult<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Indexes of updatable columns, in declaration order (§3.1's `A'`).
    pub fn updatable_indexes(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.updatable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Fixed per-tuple payload width in bytes: the sum of the column widths.
    ///
    /// This is the quantity the paper sums in Figure 3 (42 bytes for the base
    /// `DailySales` schema). The stored tuple adds a null bitmap on top; see
    /// [`crate::row::RowCodec`].
    pub fn payload_width(&self) -> usize {
        self.columns.iter().map(|c| c.ty.byte_width()).sum()
    }

    /// Validate a row against this schema (arity, types, CHAR widths).
    pub fn validate(&self, row: &[Value]) -> TypeResult<()> {
        if row.len() != self.columns.len() {
            return Err(TypeError::Arity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, val) in self.columns.iter().zip(row) {
            if !col.ty.admits(val) {
                if let (DataType::Char(n), Value::Str(s)) = (col.ty, val) {
                    return Err(TypeError::StringTooLong {
                        column: col.name.clone(),
                        width: n,
                        len: s.len(),
                    });
                }
                return Err(TypeError::ColumnType {
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: format!("{} ({})", val, val.type_name()),
                });
            }
        }
        Ok(())
    }

    /// Extract the key values of a row (empty when no key is declared).
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.key.iter().map(|&i| row[i].clone()).collect()
    }
}

/// The paper's running-example schema (Example 2.1 / Figure 3):
/// `DailySales(city, state, product_line, date, total_sales)` with the
/// group-by attributes as unique key and only `total_sales` updatable.
pub fn daily_sales_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("city", DataType::Char(20)),
            Column::new("state", DataType::Char(2)),
            Column::new("product_line", DataType::Char(12)),
            Column::new("date", DataType::Date),
            Column::updatable("total_sales", DataType::Int32),
        ],
        &["city", "state", "product_line", "date"],
    )
    .expect("DailySales schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    #[test]
    fn widths_match_figure_3_base_schema() {
        // Figure 3: city 20, state 2, product_line 12, date 4, total_sales 4
        // => 42 bytes per tuple before the 2VNL extension.
        let s = daily_sales_schema();
        assert_eq!(s.payload_width(), 42);
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("a", DataType::Int32),
        ])
        .unwrap_err();
        assert_eq!(err, TypeError::DuplicateColumn("a".into()));
    }

    #[test]
    fn key_by_names() {
        let s = daily_sales_schema();
        assert_eq!(s.key(), &[0, 1, 2, 3]);
        assert!(s.has_key());
        let row = vec![
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_000),
        ];
        assert_eq!(
            s.key_of(&row),
            vec![
                Value::from("San Jose"),
                Value::from("CA"),
                Value::from("golf equip"),
                Value::from(Date::ymd(1996, 10, 14)),
            ]
        );
    }

    #[test]
    fn key_with_unknown_name_fails() {
        let cols = vec![Column::new("a", DataType::Int32)];
        assert!(Schema::with_key_names(cols, &["b"]).is_err());
    }

    #[test]
    fn updatable_indexes() {
        let s = daily_sales_schema();
        assert_eq!(s.updatable_indexes(), vec![4]);
    }

    #[test]
    fn validate_accepts_good_row() {
        let s = daily_sales_schema();
        s.validate(&[
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_000),
        ])
        .unwrap();
    }

    #[test]
    fn validate_rejects_arity_and_types() {
        let s = daily_sales_schema();
        assert!(matches!(
            s.validate(&[Value::Int(1)]),
            Err(TypeError::Arity { .. })
        ));
        let bad_type = s.validate(&[
            Value::from(1),
            Value::from("CA"),
            Value::from("golf"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(1),
        ]);
        assert!(matches!(bad_type, Err(TypeError::ColumnType { .. })));
    }

    #[test]
    fn validate_rejects_long_strings() {
        let s = daily_sales_schema();
        let err = s
            .validate(&[
                Value::from("A city name far longer than twenty bytes"),
                Value::from("CA"),
                Value::from("golf"),
                Value::from(Date::ymd(1996, 10, 14)),
                Value::from(1),
            ])
            .unwrap_err();
        assert!(matches!(err, TypeError::StringTooLong { width: 20, .. }));
    }

    #[test]
    fn null_admitted_everywhere() {
        let s = daily_sales_schema();
        s.validate(&[
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ])
        .unwrap();
    }

    #[test]
    fn uint8_range() {
        assert!(DataType::UInt8.admits(&Value::Int(0)));
        assert!(DataType::UInt8.admits(&Value::Int(255)));
        assert!(!DataType::UInt8.admits(&Value::Int(256)));
        assert!(!DataType::UInt8.admits(&Value::Int(-1)));
    }

    #[test]
    fn int32_range() {
        assert!(DataType::Int32.admits(&Value::Int(i32::MAX as i64)));
        assert!(!DataType::Int32.admits(&Value::Int(i32::MAX as i64 + 1)));
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Char(20).to_string(), "CHAR(20)");
        assert_eq!(DataType::Int32.to_string(), "INT");
    }
}
