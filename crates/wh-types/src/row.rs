//! Rows and the fixed-width row codec.
//!
//! Tuples are stored as a null bitmap followed by fixed-width column slots,
//! so a tuple of schema `S` always occupies `ceil(arity/8) + payload_width(S)`
//! bytes. Fixed slots are what make the paper's two required DBMS properties
//! (§4) easy to guarantee in the storage layer: updates happen **in place**
//! (the new image is exactly as wide as the old), and a short page latch
//! suffices to prevent readers from seeing a torn tuple.

use crate::date::Date;
use crate::error::{TypeError, TypeResult};
use crate::schema::{DataType, Schema};
use crate::value::Value;

/// A materialized tuple: one [`Value`] per schema column.
pub type Row = Vec<Value>;

/// Encoder/decoder between [`Row`]s and fixed-width byte images for a given
/// schema.
#[derive(Debug, Clone)]
pub struct RowCodec {
    schema: Schema,
    /// Byte offset of each column slot within the payload area.
    offsets: Vec<usize>,
    bitmap_len: usize,
    payload_len: usize,
}

impl RowCodec {
    /// Build a codec for `schema`.
    pub fn new(schema: Schema) -> Self {
        let mut offsets = Vec::with_capacity(schema.arity());
        let mut off = 0;
        for c in schema.columns() {
            offsets.push(off);
            off += c.ty.byte_width();
        }
        let bitmap_len = schema.arity().div_ceil(8);
        RowCodec {
            schema,
            offsets,
            bitmap_len,
            payload_len: off,
        }
    }

    /// The schema this codec serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total stored size of one tuple: null bitmap + fixed payload.
    pub fn encoded_len(&self) -> usize {
        self.bitmap_len + self.payload_len
    }

    /// Encode `row` (validated against the schema) into its byte image.
    pub fn encode(&self, row: &[Value]) -> TypeResult<Vec<u8>> {
        self.schema.validate(row)?;
        let mut buf = vec![0u8; self.encoded_len()];
        for (i, (col, val)) in self.schema.columns().iter().zip(row).enumerate() {
            if val.is_null() {
                buf[i / 8] |= 1 << (i % 8);
                continue;
            }
            let slot = &mut buf[self.bitmap_len + self.offsets[i]..];
            match (col.ty, val) {
                (DataType::UInt8, Value::Int(v)) => slot[0] = *v as u8,
                (DataType::Int32, Value::Int(v)) => {
                    slot[..4].copy_from_slice(&(*v as i32).to_le_bytes());
                }
                (DataType::Int64, Value::Int(v)) => slot[..8].copy_from_slice(&v.to_le_bytes()),
                (DataType::Float64, Value::Float(v)) => slot[..8].copy_from_slice(&v.to_le_bytes()),
                (DataType::Float64, Value::Int(v)) => {
                    slot[..8].copy_from_slice(&(*v as f64).to_le_bytes());
                }
                (DataType::Char(n), Value::Str(s)) => {
                    slot[..s.len()].copy_from_slice(s.as_bytes());
                    for b in &mut slot[s.len()..n] {
                        *b = b' ';
                    }
                }
                (DataType::Date, Value::Date(d)) => {
                    slot[..4].copy_from_slice(&d.to_packed().to_le_bytes());
                }
                _ => unreachable!("validate() admitted an unstorable value"), // lint: allow(no-panic) — unreachable by construction (see message)
            }
        }
        Ok(buf)
    }

    /// Decode a byte image produced by [`RowCodec::encode`].
    pub fn decode(&self, buf: &[u8]) -> TypeResult<Row> {
        if buf.len() != self.encoded_len() {
            return Err(TypeError::Codec(format!(
                "expected {} bytes, got {}",
                self.encoded_len(),
                buf.len()
            )));
        }
        let mut row = Vec::with_capacity(self.schema.arity());
        for i in 0..self.schema.arity() {
            row.push(self.decode_slot(buf, i)?);
        }
        Ok(row)
    }

    /// Decode only column `i` from a byte image of this codec's width.
    ///
    /// This is the projection-pushdown primitive: scans that need a handful
    /// of columns (or just the version-number slots of an extended 2VNL
    /// tuple) can skip materializing the full row.
    pub fn decode_col(&self, buf: &[u8], i: usize) -> TypeResult<Value> {
        if buf.len() != self.encoded_len() {
            return Err(TypeError::Codec(format!(
                "expected {} bytes, got {}",
                self.encoded_len(),
                buf.len()
            )));
        }
        if i >= self.schema.arity() {
            return Err(TypeError::Codec(format!(
                "column {i} out of range for arity {}",
                self.schema.arity()
            )));
        }
        self.decode_slot(buf, i)
    }

    /// Byte offset of column `i`'s fixed slot within a tuple image (bitmap
    /// included), with its width. Exposes the layout to byte-level readers.
    pub fn col_byte_range(&self, i: usize) -> (usize, usize) {
        let ty = self.schema.columns()[i].ty;
        (self.bitmap_len + self.offsets[i], ty.byte_width())
    }

    fn decode_slot(&self, buf: &[u8], i: usize) -> TypeResult<Value> {
        if buf[i / 8] & (1 << (i % 8)) != 0 {
            return Ok(Value::Null);
        }
        let slot = &buf[self.bitmap_len + self.offsets[i]..];
        Ok(match self.schema.columns()[i].ty {
            DataType::UInt8 => Value::Int(slot[0] as i64),
            DataType::Int32 => Value::Int(i32::from_le_bytes(slot[..4].try_into().unwrap()) as i64), // lint: allow(no-panic) — infallible: fixed-width slice
            DataType::Int64 => Value::Int(i64::from_le_bytes(slot[..8].try_into().unwrap())), // lint: allow(no-panic) — infallible: fixed-width slice
            DataType::Float64 => Value::Float(f64::from_le_bytes(slot[..8].try_into().unwrap())), // lint: allow(no-panic) — infallible: fixed-width slice
            DataType::Char(n) => {
                let raw = &slot[..n];
                let trimmed = match raw.iter().rposition(|&b| b != b' ') {
                    Some(last) => &raw[..=last],
                    None => &raw[..0],
                };
                Value::Str(
                    std::str::from_utf8(trimmed)
                        .map_err(|e| TypeError::Codec(e.to_string()))?
                        .into(),
                )
            }
            DataType::Date => {
                let packed = u32::from_le_bytes(slot[..4].try_into().unwrap()); // lint: allow(no-panic) — infallible: fixed-width slice
                Value::Date(
                    Date::from_packed(packed)
                        .ok_or_else(|| TypeError::Codec(format!("bad date {packed}")))?,
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{daily_sales_schema, Column};

    fn sample_row() -> Row {
        vec![
            Value::from("San Jose"),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, 14)),
            Value::from(10_000),
        ]
    }

    #[test]
    fn round_trip() {
        let codec = RowCodec::new(daily_sales_schema());
        let row = sample_row();
        let buf = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), row);
    }

    #[test]
    fn encoded_len_is_bitmap_plus_payload() {
        let codec = RowCodec::new(daily_sales_schema());
        // 5 columns -> 1 bitmap byte; payload 42 bytes (Figure 3).
        assert_eq!(codec.encoded_len(), 43);
    }

    #[test]
    fn nulls_round_trip() {
        let codec = RowCodec::new(daily_sales_schema());
        let row = vec![
            Value::Null,
            Value::from("CA"),
            Value::Null,
            Value::from(Date::ymd(1996, 1, 1)),
            Value::Null,
        ];
        let buf = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), row);
    }

    #[test]
    fn char_padding_trimmed() {
        let codec = RowCodec::new(daily_sales_schema());
        let row = sample_row();
        let buf = codec.encode(&row).unwrap();
        let decoded = codec.decode(&buf).unwrap();
        assert_eq!(decoded[0], Value::from("San Jose")); // not "San Jose     ..."
    }

    #[test]
    fn empty_string_round_trips() {
        let schema = Schema::new(vec![Column::new("s", DataType::Char(4))]).unwrap();
        let codec = RowCodec::new(schema);
        let buf = codec.encode(&[Value::from("")]).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), vec![Value::from("")]);
    }

    #[test]
    fn wrong_length_buffer_rejected() {
        let codec = RowCodec::new(daily_sales_schema());
        assert!(matches!(codec.decode(&[0u8; 7]), Err(TypeError::Codec(_))));
    }

    #[test]
    fn encode_validates() {
        let codec = RowCodec::new(daily_sales_schema());
        assert!(codec.encode(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn all_types_round_trip() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::UInt8),
            Column::new("b", DataType::Int32),
            Column::new("c", DataType::Int64),
            Column::updatable("d", DataType::Float64),
            Column::new("e", DataType::Char(8)),
            Column::new("f", DataType::Date),
        ])
        .unwrap();
        let codec = RowCodec::new(schema);
        let row = vec![
            Value::Int(200),
            Value::Int(-123_456),
            Value::Int(1 << 40),
            Value::Float(2.5),
            Value::from("abc"),
            Value::from(Date::ymd(2001, 2, 3)),
        ];
        let buf = codec.encode(&row).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), row);
    }

    #[test]
    fn decode_col_agrees_with_full_decode() {
        let codec = RowCodec::new(daily_sales_schema());
        let row = sample_row();
        let buf = codec.encode(&row).unwrap();
        let full = codec.decode(&buf).unwrap();
        for (i, expected) in full.iter().enumerate() {
            assert_eq!(&codec.decode_col(&buf, i).unwrap(), expected);
        }
        assert!(codec.decode_col(&buf, row.len()).is_err());
        assert!(codec.decode_col(&buf[..10], 0).is_err());
    }

    #[test]
    fn col_byte_range_locates_fixed_slots() {
        let codec = RowCodec::new(daily_sales_schema());
        let row = sample_row();
        let buf = codec.encode(&row).unwrap();
        // total_sales (Int32) sits at a fixed offset in every image.
        let (off, width) = codec.col_byte_range(4);
        assert_eq!(width, 4);
        assert_eq!(
            i32::from_le_bytes(buf[off..off + width].try_into().unwrap()),
            10_000
        );
    }

    #[test]
    fn int_stored_in_float_column_decodes_as_float() {
        let schema = Schema::new(vec![Column::new("x", DataType::Float64)]).unwrap();
        let codec = RowCodec::new(schema);
        let buf = codec.encode(&[Value::Int(5)]).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), vec![Value::Float(5.0)]);
    }
}
