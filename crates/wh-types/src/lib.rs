//! Core relational data model for the `warehouse-2vnl` system.
//!
//! This crate defines the typed values, column/schema metadata, rows, and the
//! fixed-width row codec that the rest of the system builds on. Fixed-width
//! encoding is not an implementation accident: the paper's Figure 3 reasons
//! about per-tuple byte widths ("42 bytes per tuple... after modification 51
//! bytes, an increase of approximately 20%"), and reproducing those numbers
//! requires a storage model with declared column widths.

pub mod date;
pub mod error;
pub mod fault;
pub mod rng;
pub mod row;
pub mod schema;
pub mod value;

pub use date::Date;
pub use error::{TypeError, TypeResult};
pub use rng::SplitMix64;
pub use row::{Row, RowCodec};
pub use schema::{Column, DataType, Schema};
pub use value::Value;
