//! Incremental view maintenance for warehouse summary tables.
//!
//! The paper's setting (§1, §2): the warehouse stores **materialized views**
//! — most importantly *summary tables*, i.e. select-from-where-groupby
//! aggregate views \[HRU96\] — and a periodic **maintenance transaction**
//! propagates batched source changes into them incrementally \[GL95\]. This
//! crate supplies that machinery:
//!
//! * [`SummaryViewDef`] — a `SELECT G..., SUM(m), COUNT(*) GROUP BY G...`
//!   view over a source relation. The count column is the standard support
//!   count that tells the maintainer when a group becomes empty and must be
//!   logically deleted.
//! * [`SourceDelta`] / [`summarize`] — net-effect computation over a batch
//!   of source insertions/deletions (\[SP89\]): one aggregated delta per
//!   group, no matter how many source rows touched it.
//! * [`ViewMaintainer`] — translates group deltas into logical
//!   insert/update/delete operations on a 2VNL-maintained summary table,
//!   inside one maintenance transaction.

pub mod delta;
pub mod maintainer;

pub use delta::{summarize, GroupDelta, SourceDelta};
pub use maintainer::{SummaryViewDef, ViewMaintainer};
