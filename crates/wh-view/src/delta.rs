//! Net-effect computation over batched source changes (\[SP89\]).

use std::collections::HashMap;
use wh_index::IndexKey;
use wh_types::{Row, Value};

/// One change to the source relation. Updates are modeled as
/// delete-then-insert, as in the delta-propagation literature.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceDelta {
    /// A source row was inserted.
    Insert(Row),
    /// A source row was deleted.
    Delete(Row),
}

/// The aggregated net effect of a batch on one group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDelta {
    /// Group-by key values.
    pub key: Vec<Value>,
    /// Net change to the SUM measure.
    pub sum_delta: i64,
    /// Net change to the support count.
    pub count_delta: i64,
}

/// Collapse a batch of source deltas into one [`GroupDelta`] per group:
/// `group_cols` index the group-by attributes of the source rows,
/// `measure_col` the summed measure. Groups whose batch-net effect is zero
/// (both sum and count) are dropped entirely — the \[SP89\] net-effect rule
/// that keeps maintenance transactions from touching tuples needlessly.
pub fn summarize(
    batch: &[SourceDelta],
    group_cols: &[usize],
    measure_col: usize,
) -> Vec<GroupDelta> {
    let mut acc: HashMap<IndexKey, (i64, i64)> = HashMap::new();
    let mut order: Vec<IndexKey> = Vec::new();
    for delta in batch {
        let (row, sign) = match delta {
            SourceDelta::Insert(r) => (r, 1i64),
            SourceDelta::Delete(r) => (r, -1i64),
        };
        let key = IndexKey::project(row, group_cols);
        let measure = row[measure_col].as_int().unwrap_or(0);
        let entry = acc.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (0, 0)
        });
        entry.0 += sign * measure;
        entry.1 += sign;
    }
    order
        .into_iter()
        .filter_map(|key| {
            let (sum_delta, count_delta) = acc[&key];
            if sum_delta == 0 && count_delta == 0 {
                return None;
            }
            Some(GroupDelta {
                key: key.0,
                sum_delta,
                count_delta,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sale(city: &str, amount: i64) -> Row {
        vec![Value::from(city), Value::from(amount)]
    }

    #[test]
    fn aggregates_per_group() {
        let batch = vec![
            SourceDelta::Insert(sale("SJ", 100)),
            SourceDelta::Insert(sale("SJ", 50)),
            SourceDelta::Insert(sale("B", 10)),
        ];
        let out = summarize(&batch, &[0], 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].key, vec![Value::from("SJ")]);
        assert_eq!(out[0].sum_delta, 150);
        assert_eq!(out[0].count_delta, 2);
        assert_eq!(out[1].sum_delta, 10);
    }

    #[test]
    fn deletions_subtract() {
        let batch = vec![
            SourceDelta::Insert(sale("SJ", 100)),
            SourceDelta::Delete(sale("SJ", 30)),
        ];
        let out = summarize(&batch, &[0], 1);
        assert_eq!(out[0].sum_delta, 70);
        assert_eq!(out[0].count_delta, 0);
    }

    #[test]
    fn exact_cancellation_drops_the_group() {
        let batch = vec![
            SourceDelta::Insert(sale("SJ", 100)),
            SourceDelta::Delete(sale("SJ", 100)),
            SourceDelta::Insert(sale("B", 5)),
        ];
        let out = summarize(&batch, &[0], 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, vec![Value::from("B")]);
    }

    #[test]
    fn empty_batch() {
        assert!(summarize(&[], &[0], 1).is_empty());
    }

    #[test]
    fn preserves_first_seen_order() {
        let batch = vec![
            SourceDelta::Insert(sale("Z", 1)),
            SourceDelta::Insert(sale("A", 1)),
            SourceDelta::Insert(sale("Z", 1)),
        ];
        let out = summarize(&batch, &[0], 1);
        assert_eq!(out[0].key, vec![Value::from("Z")]);
        assert_eq!(out[1].key, vec![Value::from("A")]);
    }
}
