//! Applying group deltas to a 2VNL-maintained summary table.

use crate::delta::{summarize, GroupDelta, SourceDelta};
use wh_types::{Column, DataType, Row, Schema, TypeResult, Value};
use wh_vnl::{MaintenanceTxn, VnlResult, VnlTable};

/// Definition of a summary view:
/// `SELECT G₁..Gₖ, SUM(measure), COUNT(*) FROM source GROUP BY G₁..Gₖ`.
#[derive(Debug, Clone)]
pub struct SummaryViewDef {
    /// Source relation schema (individual fact rows).
    pub source_schema: Schema,
    /// Indexes (into the source schema) of the group-by attributes.
    pub group_cols: Vec<usize>,
    /// Index of the summed measure.
    pub measure_col: usize,
    /// Name for the SUM output column.
    pub sum_name: String,
    /// Name for the support-count column.
    pub count_name: String,
}

impl SummaryViewDef {
    /// Build a view definition; group columns are named after their source
    /// columns.
    pub fn new(
        source_schema: Schema,
        group_names: &[&str],
        measure_name: &str,
        sum_name: &str,
    ) -> TypeResult<Self> {
        let mut group_cols = Vec::with_capacity(group_names.len());
        for g in group_names {
            group_cols.push(source_schema.column_index(g)?);
        }
        let measure_col = source_schema.column_index(measure_name)?;
        Ok(SummaryViewDef {
            source_schema,
            group_cols,
            measure_col,
            sum_name: sum_name.to_string(),
            count_name: "support_count".to_string(),
        })
    }

    /// The summary table's base schema: group-by columns (key,
    /// non-updatable), then the SUM and COUNT columns (updatable) — the
    /// §3.1 sweet spot for 2VNL storage overhead.
    pub fn summary_schema(&self) -> Schema {
        let mut columns: Vec<Column> = self
            .group_cols
            .iter()
            .map(|&g| {
                Column::new(
                    self.source_schema.columns()[g].name.clone(),
                    self.source_schema.columns()[g].ty,
                )
            })
            .collect();
        columns.push(Column::updatable(self.sum_name.clone(), DataType::Int64));
        columns.push(Column::updatable(self.count_name.clone(), DataType::Int64));
        let key: Vec<usize> = (0..self.group_cols.len()).collect();
        Schema::with_key(columns, key).expect("summary schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
    }

    /// Create an empty 2VNL (or nVNL) table for this view.
    pub fn create_table(&self, name: &str, n: usize) -> VnlResult<VnlTable> {
        VnlTable::create_named(name, self.summary_schema(), n)
    }

    /// Compute the full summary rows for an initial load of `source_rows`.
    pub fn initial_rows(&self, source_rows: &[Row]) -> Vec<Row> {
        let deltas: Vec<SourceDelta> = source_rows
            .iter()
            .cloned()
            .map(SourceDelta::Insert)
            .collect();
        summarize(&deltas, &self.group_cols, self.measure_col)
            .into_iter()
            .map(|d| self.summary_row(&d.key, d.sum_delta, d.count_delta))
            .collect()
    }

    fn summary_row(&self, key: &[Value], sum: i64, count: i64) -> Row {
        let mut row: Row = key.to_vec();
        row.push(Value::from(sum));
        row.push(Value::from(count));
        row
    }
}

/// Propagates source-change batches into a summary table through 2VNL
/// maintenance transactions.
pub struct ViewMaintainer {
    def: SummaryViewDef,
}

/// Counts of logical operations one propagation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PropagationReport {
    /// Groups newly inserted.
    pub inserts: u64,
    /// Groups updated in place.
    pub updates: u64,
    /// Groups that emptied and were logically deleted.
    pub deletes: u64,
}

impl ViewMaintainer {
    /// Build a maintainer for `def`.
    pub fn new(def: SummaryViewDef) -> Self {
        ViewMaintainer { def }
    }

    /// The view definition.
    pub fn def(&self) -> &SummaryViewDef {
        &self.def
    }

    /// Apply a batch of source deltas inside the given maintenance
    /// transaction: per group, insert / update / delete the summary tuple
    /// (classic incremental aggregate-view maintenance \[GL95\]).
    pub fn propagate(
        &self,
        txn: &MaintenanceTxn<'_>,
        batch: &[SourceDelta],
    ) -> VnlResult<PropagationReport> {
        let deltas = summarize(batch, &self.def.group_cols, self.def.measure_col);
        self.propagate_deltas(txn, &deltas)
    }

    /// Apply pre-summarized group deltas.
    pub fn propagate_deltas(
        &self,
        txn: &MaintenanceTxn<'_>,
        deltas: &[GroupDelta],
    ) -> VnlResult<PropagationReport> {
        let batch_timer = wh_obs::Timer::start();
        let arity = self.def.group_cols.len() + 2;
        let mut report = PropagationReport::default();
        for d in deltas {
            // Probe the current version (the txn sees its own work).
            let mut probe: Row = d.key.clone();
            probe.resize(arity, Value::Null);
            match txn.read_current(&probe)? {
                None => {
                    if d.count_delta > 0 {
                        txn.insert(self.def.summary_row(&d.key, d.sum_delta, d.count_delta))?;
                        report.inserts += 1;
                    }
                    // A pure-negative delta on a missing group is a stale
                    // source deletion; incremental maintenance drops it.
                }
                Some(current) => {
                    let sum_idx = self.def.group_cols.len();
                    let count_idx = sum_idx + 1;
                    let new_sum = current[sum_idx].as_int().unwrap_or(0) + d.sum_delta;
                    let new_count = current[count_idx].as_int().unwrap_or(0) + d.count_delta;
                    if new_count <= 0 {
                        txn.delete_row(&probe)?;
                        report.deletes += 1;
                    } else {
                        txn.update_row(&self.def.summary_row(&d.key, new_sum, new_count))?;
                        report.updates += 1;
                    }
                }
            }
        }
        wh_obs::histogram!("view.maintainer.batch_ns").record(batch_timer.elapsed_ns());
        wh_obs::counter!("view.maintainer.deltas_applied").add(deltas.len() as u64);
        wh_obs::counter!("view.maintainer.inserts").add(report.inserts);
        wh_obs::counter!("view.maintainer.updates").add(report.updates);
        wh_obs::counter!("view.maintainer.deletes").add(report.deletes);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wh_types::Date;

    /// Source: individual sales (city, state, product_line, date, amount).
    fn source_schema() -> Schema {
        Schema::new(vec![
            Column::new("city", DataType::Char(20)),
            Column::new("state", DataType::Char(2)),
            Column::new("product_line", DataType::Char(12)),
            Column::new("date", DataType::Date),
            Column::new("amount", DataType::Int32),
        ])
        .unwrap()
    }

    fn def() -> SummaryViewDef {
        SummaryViewDef::new(
            source_schema(),
            &["city", "state", "product_line", "date"],
            "amount",
            "total_sales",
        )
        .unwrap()
    }

    fn sale(city: &str, day: u8, amount: i64) -> Row {
        vec![
            Value::from(city),
            Value::from("CA"),
            Value::from("golf equip"),
            Value::from(Date::ymd(1996, 10, day)),
            Value::from(amount),
        ]
    }

    #[test]
    fn summary_schema_matches_daily_sales_shape() {
        let s = def().summary_schema();
        let names: Vec<&str> = s.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "city",
                "state",
                "product_line",
                "date",
                "total_sales",
                "support_count"
            ]
        );
        assert_eq!(s.key(), &[0, 1, 2, 3]);
        assert_eq!(s.updatable_indexes(), vec![4, 5]);
    }

    #[test]
    fn initial_rows_aggregate() {
        let rows =
            def().initial_rows(&[sale("SJ", 14, 100), sale("SJ", 14, 50), sale("B", 14, 10)]);
        assert_eq!(rows.len(), 2);
        let sj = rows.iter().find(|r| r[0] == Value::from("SJ")).unwrap();
        assert_eq!(sj[4], Value::from(150));
        assert_eq!(sj[5], Value::from(2));
    }

    #[test]
    fn propagate_inserts_updates_deletes() {
        let d = def();
        let table = d.create_table("DailySales", 2).unwrap();
        table
            .load_initial(&d.initial_rows(&[sale("SJ", 14, 100), sale("B", 14, 10)]))
            .unwrap();
        let m = ViewMaintainer::new(d);

        let txn = table.begin_maintenance().unwrap();
        let report = m
            .propagate(
                &txn,
                &[
                    SourceDelta::Insert(sale("SJ", 14, 25)),  // update group
                    SourceDelta::Insert(sale("SJ", 15, 400)), // new group
                    SourceDelta::Delete(sale("B", 14, 10)),   // empties group
                ],
            )
            .unwrap();
        assert_eq!(
            report,
            PropagationReport {
                inserts: 1,
                updates: 1,
                deletes: 1
            }
        );
        txn.commit().unwrap();

        let s = table.begin_session();
        let rows = s.scan().unwrap();
        assert_eq!(rows.len(), 2);
        let sj14 = rows
            .iter()
            .find(|r| r[0] == Value::from("SJ") && r[3] == Value::from(Date::ymd(1996, 10, 14)))
            .unwrap();
        assert_eq!(sj14[4], Value::from(125));
        assert_eq!(sj14[5], Value::from(2));
        s.finish();
    }

    #[test]
    fn two_batches_in_one_txn_compose() {
        let d = def();
        let table = d.create_table("DailySales", 2).unwrap();
        table
            .load_initial(&d.initial_rows(&[sale("SJ", 14, 100)]))
            .unwrap();
        let m = ViewMaintainer::new(d);
        let txn = table.begin_maintenance().unwrap();
        m.propagate(&txn, &[SourceDelta::Insert(sale("SJ", 14, 10))])
            .unwrap();
        m.propagate(&txn, &[SourceDelta::Insert(sale("SJ", 14, 5))])
            .unwrap();
        txn.commit().unwrap();
        let s = table.begin_session();
        assert_eq!(s.scan().unwrap()[0][4], Value::from(115));
        s.finish();
    }

    #[test]
    fn group_reborn_after_emptying_resurrects() {
        let d = def();
        let table = d.create_table("DailySales", 2).unwrap();
        table
            .load_initial(&d.initial_rows(&[sale("SJ", 14, 100)]))
            .unwrap();
        let m = ViewMaintainer::new(d);
        // Batch 1: empty the group.
        let txn = table.begin_maintenance().unwrap();
        m.propagate(&txn, &[SourceDelta::Delete(sale("SJ", 14, 100))])
            .unwrap();
        txn.commit().unwrap();
        // Batch 2: the group comes back — a Table 2 row 1 resurrection.
        let txn = table.begin_maintenance().unwrap();
        let report = m
            .propagate(&txn, &[SourceDelta::Insert(sale("SJ", 14, 77))])
            .unwrap();
        assert_eq!(report.inserts, 1);
        txn.commit().unwrap();
        let s = table.begin_session();
        assert_eq!(s.scan().unwrap()[0][4], Value::from(77));
        s.finish();
    }

    #[test]
    fn stale_deletion_of_missing_group_is_ignored() {
        let d = def();
        let table = d.create_table("DailySales", 2).unwrap();
        let m = ViewMaintainer::new(d);
        let txn = table.begin_maintenance().unwrap();
        let report = m
            .propagate(&txn, &[SourceDelta::Delete(sale("Ghost", 14, 5))])
            .unwrap();
        assert_eq!(report, PropagationReport::default());
        txn.commit().unwrap();
    }

    #[test]
    fn incremental_equals_recompute_from_scratch() {
        // Property-flavored check: applying two batches incrementally gives
        // the same summary as recomputing over all source rows.
        let d = def();
        let batch1: Vec<Row> = (0..20).map(|i| sale("SJ", 14, i * 3 + 1)).collect();
        let batch2: Vec<Row> = (0..10).map(|i| sale("B", 15, i + 100)).collect();
        let table = d.create_table("DailySales", 2).unwrap();
        table.load_initial(&d.initial_rows(&batch1)).unwrap();
        let m = ViewMaintainer::new(d.clone());
        let txn = table.begin_maintenance().unwrap();
        let deltas: Vec<SourceDelta> = batch2.iter().cloned().map(SourceDelta::Insert).collect();
        m.propagate(&txn, &deltas).unwrap();
        txn.commit().unwrap();

        let mut all = batch1;
        all.extend(batch2);
        let mut expected = d.initial_rows(&all);
        expected.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        let s = table.begin_session();
        let mut got = s.scan().unwrap();
        got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(got, expected);
        s.finish();
    }
}
