//! Randomized test: incrementally maintaining a summary view over any
//! sequence of source batches (each its own maintenance transaction) yields
//! exactly the view a from-scratch recomputation would produce — \[GL95\]'s
//! correctness condition, on top of the 2VNL machinery.
//!
//! Op sequences are generated with the deterministic [`SplitMix64`]
//! generator, so every run exercises the same cases.

use wh_types::{Column, DataType, Row, Schema, SplitMix64, Value};
use wh_view::{SourceDelta, SummaryViewDef, ViewMaintainer};

fn source_schema() -> Schema {
    Schema::new(vec![
        Column::new("city", DataType::Char(8)),
        Column::new("amount", DataType::Int64),
    ])
    .unwrap()
}

fn def() -> SummaryViewDef {
    SummaryViewDef::new(source_schema(), &["city"], "amount", "total").unwrap()
}

const CITIES: [&str; 4] = ["A", "B", "C", "D"];

/// (city, amount, is_delete). Deletes are made valid by tracking live rows.
type Op = (usize, i64, bool);

fn random_ops(rng: &mut SplitMix64, max_len: u64, delete_per_mille: u64) -> Vec<Op> {
    let len = rng.range_inclusive_u64(1, max_len) as usize;
    (0..len)
        .map(|_| {
            (
                rng.index(4),
                rng.next_u64() as i64,
                rng.chance(delete_per_mille, 1000),
            )
        })
        .collect()
}

fn apply_ops(ops: &[Op]) -> (Vec<Vec<SourceDelta>>, Vec<Row>) {
    // Split ops into batches of <= 7 and track surviving source rows so
    // deletions always retract an existing row.
    let mut live: Vec<Row> = Vec::new();
    let mut batches: Vec<Vec<SourceDelta>> = vec![Vec::new()];
    for &(c, amount, is_delete) in ops {
        if batches.last().unwrap().len() >= 7 {
            batches.push(Vec::new());
        }
        if is_delete && !live.is_empty() {
            let victim = live.remove((amount.unsigned_abs() as usize) % live.len());
            batches
                .last_mut()
                .unwrap()
                .push(SourceDelta::Delete(victim));
        } else {
            let row: Row = vec![Value::from(CITIES[c]), Value::from(amount.abs() % 500)];
            live.push(row.clone());
            batches.last_mut().unwrap().push(SourceDelta::Insert(row));
        }
    }
    (batches, live)
}

fn normalized(rows: Vec<Row>) -> Vec<String> {
    let mut out: Vec<String> = rows.into_iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

#[test]
fn incremental_equals_recompute() {
    let mut rng = SplitMix64::seed_from_u64(0x01C7_0001);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 59, 300);
        let (batches, live) = apply_ops(&ops);
        let d = def();
        // Incremental: one maintenance transaction per batch.
        let table = d.create_table("V", 2).unwrap();
        let maintainer = ViewMaintainer::new(d.clone());
        for batch in &batches {
            let txn = table.begin_maintenance().unwrap();
            maintainer.propagate(&txn, batch).unwrap();
            txn.commit().unwrap();
        }
        let session = table.begin_session();
        let incremental = session.scan().unwrap();
        session.finish();
        // Recompute from the surviving source rows.
        let recomputed = d.initial_rows(&live);
        assert_eq!(normalized(incremental), normalized(recomputed));
    }
}

#[test]
fn abort_then_retry_equals_straight_through() {
    let mut rng = SplitMix64::seed_from_u64(0x01C7_0002);
    for _ in 0..64 {
        let ops = random_ops(&mut rng, 39, 200);
        let (batches, _) = apply_ops(&ops);
        let d = def();
        let maintainer = ViewMaintainer::new(d.clone());
        // Path 1: apply all batches normally.
        let straight = d.create_table("V", 2).unwrap();
        for batch in &batches {
            let txn = straight.begin_maintenance().unwrap();
            maintainer.propagate(&txn, batch).unwrap();
            txn.commit().unwrap();
        }
        // Path 2: before each commit, run the batch once and ABORT, then
        // run it again for real — §7 rollback must make retries exact.
        let retried = d.create_table("V", 2).unwrap();
        for batch in &batches {
            let txn = retried.begin_maintenance().unwrap();
            maintainer.propagate(&txn, batch).unwrap();
            txn.abort().unwrap();
            let txn = retried.begin_maintenance().unwrap();
            maintainer.propagate(&txn, batch).unwrap();
            txn.commit().unwrap();
        }
        let a = straight.begin_session().scan().unwrap();
        let b = retried.begin_session().scan().unwrap();
        assert_eq!(normalized(a), normalized(b));
    }
}
