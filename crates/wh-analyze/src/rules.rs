//! The lint rules: repo-specific invariants enforced as token patterns.
//!
//! Each rule has a stable kebab-case name, usable in suppression pragmas:
//!
//! * `// lint: allow(rule-name) — why` suppresses that rule on the pragma's
//!   line and the line after it (so the pragma can sit above the flagged
//!   statement);
//! * `// lint: allow-file(rule-name) — why` suppresses the rule for the
//!   whole file (reserved for files whose *purpose* conflicts with a rule,
//!   e.g. the model checker's engine, which panics by design).
//!
//! The rules:
//!
//! | name | invariant |
//! |------|-----------|
//! | `no-panic` | no `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test library code |
//! | `ordering-comment` | every atomic `Ordering::…` use carries an adjacent `// ordering:` justification |
//! | `safety-comment` | every `unsafe` block carries an adjacent `// safety:` justification |
//! | `failpoint-registry` | every `fail_point!("name")` is in `wh_types::fault::REGISTRY`, and every registry entry has a call site |
//! | `failpoint-trace` | every `fail_point!` site is covered by a trace span opened earlier in the same function, or carries a `// trace:` marker naming the ambient span |
//! | `lock-order` | the secondary-index registry lock is never acquired after a page latch in the same function |
//! | `version-encapsulation` | the version kernel's atomic fields are never poked directly outside `wh-kernel` |

use crate::lexer::{Kind, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// All rule names, for pragma validation and docs.
pub const RULES: &[&str] = &[
    "no-panic",
    "ordering-comment",
    "safety-comment",
    "failpoint-registry",
    "failpoint-trace",
    "lock-order",
    "version-encapsulation",
    "latch-order",
    "epoch-discipline",
    "atomic-protocol",
];

/// One finding, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as given to the analyzer (relative to the scanned root).
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Qualified path of the enclosing function
    /// (`wh_vnl::table::VnlTable::scan_visible`), when the line falls
    /// inside one. Filled in by a post-pass over the function tables.
    pub function: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        if let Some(func) = &self.function {
            write!(f, " (in {func})")?;
        }
        Ok(())
    }
}

/// One source file queued for analysis.
pub struct SourceFile {
    /// Root-relative path (used in diagnostics and scope decisions).
    pub path: PathBuf,
    /// Full file contents.
    pub text: String,
}

/// Per-file context shared by the rules.
pub(crate) struct FileCtx<'a> {
    pub(crate) path: &'a Path,
    pub(crate) toks: Vec<Tok>,
    pub(crate) lines: Vec<String>,
    /// Token-index ranges inside `#[cfg(test)]` items.
    pub(crate) test_ranges: Vec<(usize, usize)>,
    /// (rule, line) pairs suppressed by `lint: allow(...)` pragmas.
    allow: BTreeSet<(String, u32)>,
    /// Rules suppressed file-wide by `lint: allow-file(...)`.
    allow_file: BTreeSet<String>,
    /// Whether this file is a binary target (`src/bin/…` or `main.rs`).
    pub(crate) is_bin: bool,
}

impl FileCtx<'_> {
    pub(crate) fn in_test(&self, tok_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| tok_idx >= lo && tok_idx < hi)
    }

    fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.allow_file.contains(rule) || self.allow.contains(&(rule.to_string(), line))
    }

    pub(crate) fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        line: u32,
        message: String,
    ) {
        if !self.suppressed(rule, line) {
            out.push(Diagnostic {
                file: self.path.to_path_buf(),
                line,
                rule,
                message,
                function: None,
            });
        }
    }
}

/// Everything the interprocedural rules see: per-file contexts, the
/// parsed function tables (same index), and the workspace call graph.
pub(crate) struct Workspace<'a> {
    pub(crate) ctxs: &'a [FileCtx<'a>],
    pub(crate) tables: &'a [crate::parser::FnTable],
    pub(crate) graph: &'a crate::callgraph::Graph,
}

impl Workspace<'_> {
    /// Resolve a global fn id to its file context and parsed info.
    pub(crate) fn fn_info(&self, gid: usize) -> (&FileCtx<'_>, &crate::parser::FnInfo) {
        let g = self.graph.fns[gid];
        (&self.ctxs[g.file], &self.tables[g.file].fns[g.local])
    }
}

/// Analyze a set of files as one unit (the cross-file failpoint check
/// needs the whole set). Paths should be root-relative; scope decisions
/// (bin targets, the `wh-kernel` exemption) look at path components.
pub fn analyze(files: &[SourceFile]) -> Vec<Diagnostic> {
    analyze_report(files).diagnostics
}

/// Workspace-level analysis artifacts beyond the diagnostics: the atomic
/// protocol table (`--protocols`) and self-run statistics (E26).
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub protocols: Vec<crate::protocol::ProtocolEntry>,
    /// Parsed functions across the workspace.
    pub functions: usize,
    /// Resolved call-graph edges (call site → candidate callee pairs).
    pub edges: usize,
}

/// [`analyze`], plus the protocol table and stats.
pub fn analyze_report(files: &[SourceFile]) -> Report {
    let mut out = Vec::new();
    // name → call-site lines, for the registry cross-check.
    let mut failpoint_sites: BTreeMap<String, Vec<(PathBuf, u32)>> = BTreeMap::new();
    // Where each registry entry's string literal lives in fault.rs, so the
    // "registered but never marked" diagnostic can anchor somewhere real.
    let mut registry_entry_lines: BTreeMap<String, u32> = BTreeMap::new();

    let ctxs: Vec<FileCtx<'_>> = files.iter().map(build_ctx).collect();
    let tables: Vec<crate::parser::FnTable> = ctxs
        .iter()
        .map(|c| crate::parser::parse(c.path, &c.toks, &c.test_ranges))
        .collect();
    let tok_slices: Vec<&[Tok]> = ctxs.iter().map(|c| c.toks.as_slice()).collect();
    let graph = crate::callgraph::build(&tables, &tok_slices);

    for (ctx, table) in ctxs.iter().zip(&tables) {
        no_panic(ctx, &mut out);
        ordering_comment(ctx, &mut out);
        safety_comment(ctx, &mut out);
        lock_order(ctx, table, &mut out);
        failpoint_trace(ctx, table, &mut out);
        version_encapsulation(ctx, &mut out);
        collect_failpoints(
            ctx,
            &mut failpoint_sites,
            &mut registry_entry_lines,
            &mut out,
        );
    }

    let ws = Workspace {
        ctxs: &ctxs,
        tables: &tables,
        graph: &graph,
    };
    crate::interproc::latch_order(&ws, &mut out);
    crate::interproc::epoch_discipline(&ws, &mut out);
    let protocols = crate::protocol::check(&ws, &mut out);

    // Reverse direction: a registered name nothing marks is dead weight in
    // the crash matrix (the sweep would "cover" a point that cannot fire).
    for &name in wh_types::fault::REGISTRY {
        if !failpoint_sites.contains_key(name) {
            let (file, line) = registry_entry_lines.get(name).map_or_else(
                || (PathBuf::from("crates/wh-types/src/fault.rs"), 1),
                |&l| (PathBuf::from("crates/wh-types/src/fault.rs"), l),
            );
            out.push(Diagnostic {
                file,
                line,
                rule: "failpoint-registry",
                message: format!("registered failpoint '{name}' has no fail_point! call site"),
                function: None,
            });
        }
    }

    // Attribute every finding to its enclosing function.
    let by_path: BTreeMap<&Path, usize> =
        ctxs.iter().enumerate().map(|(i, c)| (c.path, i)).collect();
    for d in &mut out {
        if d.function.is_none() {
            if let Some(&fi) = by_path.get(d.file.as_path()) {
                d.function = tables[fi].enclosing(d.line).map(|f| f.qual.clone());
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let edges = graph.calls.iter().flatten().map(|c| c.callees.len()).sum();
    Report {
        diagnostics: out,
        protocols,
        functions: graph.fns.len(),
        edges,
    }
}

fn build_ctx(file: &SourceFile) -> FileCtx<'_> {
    let toks = crate::lexer::lex(&file.text);
    let lines: Vec<String> = file.text.lines().map(str::to_string).collect();
    let mut allow = BTreeSet::new();
    let mut allow_file = BTreeSet::new();
    for t in &toks {
        if t.kind != Kind::LineComment && t.kind != Kind::BlockComment {
            continue;
        }
        for (rule, file_wide) in parse_pragmas(&t.text) {
            if file_wide {
                allow_file.insert(rule);
            } else {
                allow.insert((rule.clone(), t.line));
                allow.insert((rule, t.line + 1));
            }
        }
    }
    let is_bin = file.path.components().any(|c| c.as_os_str() == "bin")
        || file.path.file_name().is_some_and(|f| f == "main.rs");
    FileCtx {
        path: &file.path,
        test_ranges: test_ranges(&toks),
        toks,
        lines,
        allow,
        allow_file,
        is_bin,
    }
}

/// Extract `lint: allow(rule)` / `lint: allow-file(rule)` from one comment.
fn parse_pragmas(comment: &str) -> Vec<(String, bool)> {
    let mut found = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:") {
        rest = &rest[at + "lint:".len()..];
        let trimmed = rest.trim_start();
        let file_wide = trimmed.starts_with("allow-file(");
        let prefix = if file_wide { "allow-file(" } else { "allow(" };
        if let Some(stripped) = trimmed.strip_prefix(prefix) {
            if let Some(end) = stripped.find(')') {
                found.push((stripped[..end].trim().to_string(), file_wide));
            }
        }
    }
    found
}

/// Token-index ranges covered by `#[cfg(test)]` items: from the attribute
/// to the close of the following brace-delimited body.
pub(crate) fn test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let code = |t: &Tok| t.kind != Kind::LineComment && t.kind != Kind::BlockComment;
    let mut i = 0;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_attr = toks[i].is_punct('#')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('['))
            && matches!(toks.get(i + 2), Some(t) if t.is_ident("cfg"))
            && matches!(toks.get(i + 3), Some(t) if t.is_punct('('))
            && matches!(toks.get(i + 4), Some(t) if t.is_ident("test"))
            && matches!(toks.get(i + 5), Some(t) if t.is_punct(')'))
            && matches!(toks.get(i + 6), Some(t) if t.is_punct(']'));
        if !is_attr {
            i += 1;
            continue;
        }
        // Find the item's body: the first `{` at depth 0 after the
        // attribute, skipping any `(...)`/`[...]` groups on the way (other
        // attributes, generics are fine — `<` isn't tracked but never
        // contains `{`).
        let start = i;
        let mut j = i + 7;
        let mut depth = 0i32;
        let mut end = None;
        while j < toks.len() {
            let t = &toks[j];
            if code(t) {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        end = Some(close_of_brace(toks, j));
                        break;
                    }
                    ";" if depth == 0 => {
                        // `#[cfg(test)] use …;` — covers through the `;`.
                        end = Some(j + 1);
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end = end.unwrap_or(toks.len());
        ranges.push((start, end));
        i = end;
    }
    ranges
}

/// Index one past the `}` matching the `{` at `open`.
fn close_of_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    toks.len()
}

fn prev_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[..i]
        .iter()
        .rev()
        .find(|t| t.kind != Kind::LineComment && t.kind != Kind::BlockComment)
}

fn next_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[i + 1..]
        .iter()
        .find(|t| t.kind != Kind::LineComment && t.kind != Kind::BlockComment)
}

/// `no-panic`: library code must propagate errors, not abort. Tier-1 CI
/// runs fault injection with panic actions; any *incidental* panic path
/// poisons latches that the read side then has to special-case. The repo's
/// house style is `unwrap_or_else(PoisonError::into_inner)` for lock
/// poisoning and typed errors for everything else. Bin targets (report
/// generators) and `#[cfg(test)]` code may panic freely.
fn no_panic(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.is_bin {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != Kind::Ident || ctx.in_test(i) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let method_call = prev_code(&ctx.toks, i).is_some_and(|p| p.is_punct('.'))
                    && next_code(&ctx.toks, i).is_some_and(|n| n.is_punct('('));
                if method_call {
                    ctx.emit(
                        out,
                        "no-panic",
                        t.line,
                        format!(
                            ".{}() in library code — propagate a typed error, or recover \
                             lock poisoning with unwrap_or_else(PoisonError::into_inner)",
                            t.text
                        ),
                    );
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let is_macro = next_code(&ctx.toks, i).is_some_and(|n| n.is_punct('!'));
                // `#[allow(unreachable_…)]`-style attr idents have no `!`.
                if is_macro {
                    ctx.emit(
                        out,
                        "no-panic",
                        t.line,
                        format!("{}! in library code — return an error instead", t.text),
                    );
                }
            }
            _ => {}
        }
    }
}

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// `ordering-comment`: every atomic `Ordering::X` use must carry an
/// adjacent `// ordering:` comment saying why X is sufficient. The memory
/// model is the one part of the 2VNL hot path the type system cannot
/// check; the wh-kernel model suite proves the kernels, and these comments
/// keep every production site honest about which proof (or reasoning)
/// covers it. `std::cmp::Ordering` never collides: its variants are
/// Less/Equal/Greater.
fn ordering_comment(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.is_bin {
        return;
    }
    let mut flagged_lines = BTreeSet::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("Ordering") || ctx.in_test(i) {
            continue;
        }
        let path_sep = matches!(ctx.toks.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(ctx.toks.get(i + 2), Some(t) if t.is_punct(':'));
        let variant = ctx.toks.get(i + 3);
        let Some(variant) = variant else { continue };
        if !path_sep || !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
            continue;
        }
        let line = t.line;
        if flagged_lines.contains(&line) || has_marker_comment(ctx, line, "ordering:") {
            continue;
        }
        flagged_lines.insert(line);
        ctx.emit(
            out,
            "ordering-comment",
            line,
            format!(
                "Ordering::{} without an adjacent `// ordering:` justification",
                variant.text
            ),
        );
    }
}

/// `safety-comment`: every `unsafe` block must carry an adjacent
/// `// safety:` comment stating the invariant that makes it sound. The
/// batch decode kernels use `get_unchecked` against bounds the classifier
/// already proved; that proof lives outside the block, so the comment is
/// the only thing binding them together. `unsafe fn`/`unsafe impl`/
/// `unsafe trait` headers are declarations, not uses — only the block
/// (`unsafe {`) is a site where an obligation is discharged.
fn safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.is_bin {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("unsafe") || ctx.in_test(i) {
            continue;
        }
        // An unsafe *block*: `unsafe {`. Headers (`unsafe fn`, `unsafe
        // impl`, `unsafe trait`) are followed by an identifier instead.
        if !next_code(&ctx.toks, i).is_some_and(|n| n.is_punct('{')) {
            continue;
        }
        if has_marker_comment(ctx, t.line, "safety:") {
            continue;
        }
        ctx.emit(
            out,
            "safety-comment",
            t.line,
            "unsafe block without an adjacent `// safety:` justification".to_string(),
        );
    }
}

/// Does `line` carry `marker` on the same line, or in the comment block
/// directly above the statement? See [`marker_text`].
fn has_marker_comment(ctx: &FileCtx<'_>, line: u32, marker: &str) -> bool {
    marker_text(ctx, line, marker).is_some()
}

/// The text of the `marker` comment covering `line` (from the marker to
/// the end of that comment line), if any: on the same line, or in the
/// comment block directly above the statement (walking up through
/// comment/attribute lines and multiline-expression continuations until
/// the previous statement's terminator). Shared by the
/// `ordering-comment`/`safety-comment` rules ("adjacent justification")
/// and the `atomic-protocol` rule (which parses the tag's content).
pub(crate) fn marker_text(ctx: &FileCtx<'_>, line: u32, marker: &str) -> Option<String> {
    let idx = (line as usize).saturating_sub(1);
    let tail = |s: &str| s.find(marker).map(|at| s[at..].trim_end().to_string());
    if let Some(found) = ctx
        .lines
        .get(idx)
        .and_then(|s| comment_part(s).and_then(&tail))
    {
        return Some(found);
    }
    let mut up = idx;
    for _ in 0..16 {
        if up == 0 {
            return None;
        }
        up -= 1;
        let raw = ctx.lines.get(up)?;
        let s = raw.trim();
        if s.starts_with("//") || s.starts_with("/*") || s.starts_with('*') {
            if let Some(found) = tail(s) {
                return Some(found);
            }
            continue;
        }
        if s.is_empty() || s.starts_with("#[") {
            continue;
        }
        // A code line: if it terminates a statement/item, the walk is out
        // of this statement's range; otherwise it's a continuation line of
        // the same expression (method chains split across lines).
        if let Some(found) = comment_part(raw).and_then(&tail) {
            return Some(found);
        }
        if s.ends_with(';') || s.ends_with('{') || s.ends_with('}') {
            return None;
        }
    }
    None
}

/// The `// …` tail of a line, if any (good enough here: the rules' own
/// marker never appears inside string literals on the same line as an
/// atomic access).
fn comment_part(line: &str) -> Option<&str> {
    line.find("//").map(|i| &line[i..])
}

/// `failpoint-registry` (forward direction): every call site's name must
/// be registered. The meta-test pins the per-crate `FAILPOINTS` consts to
/// the registry; this rule pins the *call sites*, closing the loop — a
/// typo'd name would otherwise compile fine and silently never fire.
fn collect_failpoints(
    ctx: &FileCtx<'_>,
    sites: &mut BTreeMap<String, Vec<(PathBuf, u32)>>,
    registry_lines: &mut BTreeMap<String, u32>,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.path.ends_with("crates/wh-types/src/fault.rs") || ctx.path.ends_with("fault.rs") {
        for t in &ctx.toks {
            if t.kind == Kind::Str && wh_types::fault::REGISTRY.contains(&t.text.as_str()) {
                registry_lines.entry(t.text.clone()).or_insert(t.line);
            }
        }
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("fail_point") {
            continue;
        }
        let is_call = matches!(ctx.toks.get(i + 1), Some(t) if t.is_punct('!'))
            && matches!(ctx.toks.get(i + 2), Some(t) if t.is_punct('('));
        let Some(name_tok) = ctx.toks.get(i + 3) else {
            continue;
        };
        if !is_call || name_tok.kind != Kind::Str {
            continue;
        }
        let name = name_tok.text.clone();
        if !wh_types::fault::REGISTRY.contains(&name.as_str()) {
            ctx.emit(
                out,
                "failpoint-registry",
                name_tok.line,
                format!("fail_point!(\"{name}\") is not in wh_types::fault::REGISTRY"),
            );
        }
        sites
            .entry(name)
            .or_default()
            .push((ctx.path.to_path_buf(), name_tok.line));
    }
}

pub(crate) const LATCH_CALLS: &[&str] = &[
    "read_latch",
    "write_latch",
    "try_read_latch",
    "try_write_latch",
    "lock_list",
];

/// Is the token at `i` a latch-acquiring call (`read_latch(…)` etc.)?
/// Walker-based callers never see `fn read_latch(` definitions (function
/// signatures are outside every body walk), but the guard is kept for
/// defense in depth.
pub(crate) fn latch_call_at(ctx: &FileCtx<'_>, i: usize, names: &[&str]) -> bool {
    let t = &ctx.toks[i];
    t.kind == Kind::Ident
        && names.contains(&t.text.as_str())
        && next_code(&ctx.toks, i).is_some_and(|n| n.is_punct('('))
        && !prev_code(&ctx.toks, i).is_some_and(|p| p.is_ident("fn"))
}

/// Is the token at `i` an index-registry acquisition (`indexes.read(` /
/// `indexes.write(` / `indexes_snapshot(`)?
pub(crate) fn registry_hit_at(ctx: &FileCtx<'_>, i: usize) -> bool {
    let toks = &ctx.toks;
    let t = &toks[i];
    (t.is_ident("indexes")
        && matches!(toks.get(i + 1), Some(t) if t.is_punct('.'))
        && matches!(toks.get(i + 2), Some(t) if t.is_ident("read") || t.is_ident("write"))
        && matches!(toks.get(i + 3), Some(t) if t.is_punct('(')))
        || (t.is_ident("indexes_snapshot")
            && next_code(toks, i).is_some_and(|n| n.is_punct('('))
            && !prev_code(toks, i).is_some_and(|p| p.is_ident("fn")))
}

/// `lock-order`: the secondary-index registry lock may not be acquired
/// under a page latch. Index backfill holds the registry lock across a
/// full storage scan (page latches inside), so the inverted order
/// deadlocks — see `VnlTable::indexes_snapshot`. The rule is lexical and
/// function-granular: once a function acquires a latch, any later
/// `.indexes.read()/.write()` or `indexes_snapshot()` in the same function
/// is flagged, even if the guard was dropped (take the snapshot first —
/// it is never wrong to). The interprocedural generalization (declared
/// hierarchy, call-graph paths) is the `latch-order` rule in
/// [`crate::interproc`]; this one stays as the cheap intra-function
/// anchor the fixtures pin.
fn lock_order(ctx: &FileCtx<'_>, table: &crate::parser::FnTable, out: &mut Vec<Diagnostic>) {
    for f in &table.fns {
        let mut first_latch: Option<u32> = None;
        for (i, t) in crate::walker::body_tokens(&ctx.toks, table, f) {
            if ctx.in_test(i) {
                continue;
            }
            if latch_call_at(ctx, i, LATCH_CALLS) {
                first_latch.get_or_insert(t.line);
                continue;
            }
            if registry_hit_at(ctx, i) {
                if let Some(latch_line) = first_latch {
                    ctx.emit(
                        out,
                        "lock-order",
                        t.line,
                        format!(
                            "index-registry lock acquired after a page latch (latched at \
                             line {latch_line}); take an indexes_snapshot() before latching"
                        ),
                    );
                }
            }
        }
    }
}

/// Calls that open a trace span (the RAII macros plus the explicit
/// cross-call constructor). `trace_event!` is deliberately absent: an
/// instant event carries no extent, so it cannot *cover* a failpoint —
/// a site whose causal parent is an event would show an orphaned blip
/// in the flight recorder instead of an enclosing span.
const SPAN_CALLS: &[&str] = &["trace_span", "trace_span_under", "trace_root", "open_ctx"];

/// `failpoint-trace`: every `fail_point!` site must be causally visible
/// in the flight recorder. Satisfied when a span-family call
/// (`trace_span!`, `trace_span_under!`, `trace_root!`, or
/// `trace::open_ctx`) appears lexically earlier in the same function, or
/// when the site carries an adjacent `// trace:` marker naming the
/// ambient span that covers it (point-op leaves whose span lives in the
/// caller). Like `lock-order`, the scan is lexical and function-granular:
/// a span opened in a closed sibling block still counts as "earlier in
/// the same fn" (the walker's per-function grain), and nested fns don't
/// inherit the parent's spans.
fn failpoint_trace(ctx: &FileCtx<'_>, table: &crate::parser::FnTable, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.toks;
    for f in &table.fns {
        let mut has_span = false;
        for (i, t) in crate::walker::body_tokens(toks, table, f) {
            if ctx.in_test(i) {
                continue;
            }
            if t.kind == Kind::Ident
                && SPAN_CALLS.contains(&t.text.as_str())
                && !prev_code(toks, i).is_some_and(|p| p.is_ident("fn"))
            {
                has_span = true;
                continue;
            }
            if t.is_ident("fail_point")
                && matches!(toks.get(i + 1), Some(n) if n.is_punct('!'))
                && matches!(toks.get(i + 2), Some(n) if n.is_punct('('))
            {
                let covered = has_span || has_marker_comment(ctx, t.line, "trace:");
                if !covered {
                    ctx.emit(
                        out,
                        "failpoint-trace",
                        t.line,
                        "fail_point! site has no enclosing trace span opened earlier in this \
                         function and no `// trace:` marker naming its ambient span"
                            .to_string(),
                    );
                }
            }
        }
    }
}

const KERNEL_FIELDS: &[&str] = &["current_vn_relaxed", "recovery_floor", "n_eff"];

/// `version-encapsulation`: the version kernel's atomic fields
/// (`current_vn_relaxed`, `recovery_floor`, `n_eff`) are wh-kernel
/// internals — their whole contract is the ordering discipline the model
/// suite verifies, so every outside touch must go through the kernel's
/// methods. A bare field access (`.current_vn_relaxed` with no call
/// parens) outside `crates/wh-kernel` is flagged; method calls of the
/// same name (accessor wrappers) are fine.
fn version_encapsulation(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.path.starts_with("crates/wh-kernel") {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != Kind::Ident || !KERNEL_FIELDS.contains(&t.text.as_str()) || ctx.in_test(i) {
            continue;
        }
        let field_poke = prev_code(&ctx.toks, i).is_some_and(|p| p.is_punct('.'))
            && !next_code(&ctx.toks, i).is_some_and(|n| n.is_punct('('));
        if field_poke {
            ctx.emit(
                out,
                "version-encapsulation",
                t.line,
                format!(
                    ".{} poked directly outside wh-kernel — use the VersionCore/\
                     EffectiveWindow methods (the verified surface)",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(path: &str, text: &str) -> Vec<Diagnostic> {
        analyze(&[SourceFile {
            path: PathBuf::from(path),
            text: text.to_string(),
        }])
        .into_iter()
        // The registry reverse-check needs the whole tree; single-file
        // unit tests only look at forward diagnostics.
        .filter(|d| d.file != Path::new("crates/wh-types/src/fault.rs"))
        .collect()
    }

    #[test]
    fn unwrap_in_lib_flagged_but_not_in_tests_or_bins() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let d = run_one("crates/a/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].rule), (1, "no-panic"));
        assert!(run_one("crates/a/src/bin/report.rs", src).is_empty());
        assert!(run_one("crates/a/src/main.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_flagged_identifier_uses_are_not() {
        let d = run_one(
            "crates/a/src/lib.rs",
            "fn f() { panic!(\"boom\"); }\nfn g(p: fn()) { let _ = p; } // panic as word\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("panic!"));
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "// lint: allow(no-panic) — startup invariant\nfn f() { x.unwrap(); }\n";
        assert!(run_one("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_file_pragma_covers_everything() {
        let src = "// lint: allow-file(no-panic) — checker aborts by design\n\
                   fn f() { a.unwrap(); }\nfn g() { b.unwrap(); }\n";
        assert!(run_one("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn ordering_needs_adjacent_comment() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
        let d = run_one("crates/a/src/lib.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "ordering-comment");

        let same_line =
            "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed) } // ordering: stat-counter Relaxed — hint only\n";
        assert!(run_one("crates/a/src/lib.rs", same_line).is_empty());

        let above = "fn f(a: &AtomicU64) {\n    // ordering: stat-counter Relaxed — monotone counter, no data guarded\n    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(run_one("crates/a/src/lib.rs", above).is_empty());

        let chained = "fn f(s: &S) {\n    // ordering: pub-sub Acquire — pairs with the Release store in publish\n    let v = s\n        .inner\n        .load(Ordering::Acquire);\n    let _ = v;\n}\n\
             fn publish(s: &S, v: u64) {\n    // ordering: pub-sub Release — publishes v to readers\n    s.inner.store(v, Ordering::Release);\n}\n";
        assert!(run_one("crates/a/src/lib.rs", chained).is_empty());
    }

    #[test]
    fn unsafe_block_needs_adjacent_safety_comment() {
        let bad = "fn f(v: &[u8]) -> u8 { unsafe { *v.get_unchecked(0) } }\n";
        let d = run_one("crates/a/src/lib.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "safety-comment");

        let same_line =
            "fn f(v: &[u8]) -> u8 { unsafe { *v.get_unchecked(0) } } // safety: len checked\n";
        assert!(run_one("crates/a/src/lib.rs", same_line).is_empty());

        let above = "fn f(v: &[u8]) -> u8 {\n    // safety: caller guarantees v is non-empty\n    unsafe { *v.get_unchecked(0) }\n}\n";
        assert!(run_one("crates/a/src/lib.rs", above).is_empty());
    }

    #[test]
    fn unsafe_headers_and_test_blocks_are_not_flagged() {
        // `unsafe fn` / `unsafe impl` declare obligations, they don't
        // discharge them — no comment required on the header itself.
        let headers = "unsafe fn f() {}\nunsafe impl Send for S {}\n";
        assert!(run_one("crates/a/src/lib.rs", headers).is_empty());

        let in_test =
            "#[cfg(test)]\nmod tests { fn g(v: &[u8]) -> u8 { unsafe { *v.get_unchecked(0) } } }\n";
        assert!(run_one("crates/a/src/lib.rs", in_test).is_empty());
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let src = "fn f(a: i32, b: i32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
        assert!(run_one("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unknown_failpoint_name_is_flagged() {
        let d = run_one(
            "crates/a/src/lib.rs",
            "fn f() -> Result<(), E> {\n    let _ts = wh_obs::trace_span!(\"a.f\");\n    \
             fail_point!(\"no.such.point\");\n    Ok(())\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "failpoint-registry");
        assert!(d[0].message.contains("no.such.point"));
    }

    #[test]
    fn failpoint_without_span_or_marker_is_flagged() {
        let bare = "fn f() -> Result<(), E> { fail_point!(\"vnl.version.begin\"); Ok(()) }\n";
        let d = run_one("crates/a/src/lib.rs", bare);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].rule, d[0].line), ("failpoint-trace", 1));

        // A span-family call earlier in the same fn covers the site, even
        // from a sibling block that has since closed.
        let spanned = "fn f() -> Result<(), E> {\n    \
             { let _ts = wh_obs::trace_span_under!(\"a.f\", ctx); }\n    \
             fail_point!(\"vnl.version.begin\");\n    Ok(())\n}\n";
        assert!(run_one("crates/a/src/lib.rs", spanned).is_empty());

        // An adjacent `// trace:` marker names the ambient span instead.
        let marked = "fn f() -> Result<(), E> {\n    \
             // trace: covered by the caller's vnl.txn span.\n    \
             fail_point!(\"vnl.version.begin\");\n    Ok(())\n}\n";
        assert!(run_one("crates/a/src/lib.rs", marked).is_empty());

        // trace_event! is an instant, not an extent — it does not count.
        let event_only = "fn f() -> Result<(), E> {\n    \
             wh_obs::trace_event!(\"a.f\");\n    \
             fail_point!(\"vnl.version.begin\");\n    Ok(())\n}\n";
        let d = run_one("crates/a/src/lib.rs", event_only);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "failpoint-trace");

        // A span in an *earlier* fn does not leak into the next one.
        let split = "fn a() { let _ts = wh_obs::trace_span!(\"a\"); }\n\
             fn b() -> Result<(), E> { fail_point!(\"vnl.version.begin\"); Ok(()) }\n";
        let d = run_one("crates/a/src/lib.rs", split);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].rule, d[0].line), ("failpoint-trace", 2));
    }

    #[test]
    fn latch_then_registry_is_flagged_registry_then_latch_is_not() {
        let bad = "fn f(&self) {\n    let g = write_latch(&page);\n    let snap = self.indexes_snapshot();\n}\n";
        let d = run_one("crates/a/src/lib.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].rule, d[0].line), ("lock-order", 3));

        let good = "fn f(&self) {\n    let snap = self.indexes_snapshot();\n    let g = write_latch(&page);\n}\n";
        assert!(run_one("crates/a/src/lib.rs", good).is_empty());

        // Separate functions don't contaminate each other.
        let split =
            "fn a(&self) { let g = write_latch(&p); }\nfn b(&self) { self.indexes.read(); }\n";
        assert!(run_one("crates/a/src/lib.rs", split).is_empty());
    }

    #[test]
    fn kernel_field_pokes_flagged_outside_kernel_only() {
        let poke = "fn f(c: &VersionCore) { let _ = c.current_vn_relaxed; }\n";
        let d = run_one("crates/wh-vnl/src/version.rs", poke);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "version-encapsulation");
        assert!(run_one("crates/wh-kernel/src/version.rs", poke).is_empty());

        let call = "fn f(c: &VersionCore) { let _ = c.current_vn_relaxed(); }\n";
        assert!(run_one("crates/wh-vnl/src/version.rs", call).is_empty());
    }

    #[test]
    fn diagnostics_render_with_file_and_line() {
        let d = run_one("crates/a/src/lib.rs", "fn f() { x.unwrap(); }\n");
        let rendered = d[0].to_string();
        assert!(
            rendered.starts_with("crates/a/src/lib.rs:1: [no-panic]"),
            "{rendered}"
        );
    }
}
