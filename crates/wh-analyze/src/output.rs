//! Diagnostic renderers for `--format json|github`.
//!
//! Both are hand-rolled (the workspace is dependency-free by policy):
//! JSON strings escape the control set plus `"`/`\`; GitHub workflow
//! commands percent-escape `%`, CR, and LF per the workflow-command
//! grammar so multi-line messages survive annotation rendering.

use crate::rules::Diagnostic;

/// `::error file=F,line=N,title=RULE::MSG` — one GitHub annotation per
/// diagnostic.
pub fn render_github(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        let mut msg = d.message.clone();
        if let Some(f) = &d.function {
            msg.push_str(&format!(" (in {f})"));
        }
        out.push_str(&format!(
            "::error file={},line={},title={}::{}\n",
            gh_escape(&d.file.display().to_string()),
            d.line,
            gh_escape(d.rule),
            gh_escape(&msg)
        ));
    }
    out
}

fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// A JSON array of `{file, line, rule, function, message}` objects, one
/// per diagnostic, stable order, trailing newline.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!(
            "\"file\": {}, \"line\": {}, \"rule\": {}, \"function\": {}, \"message\": {}",
            json_string(&d.file.display().to_string()),
            d.line,
            json_string(d.rule),
            d.function
                .as_deref()
                .map_or_else(|| "null".to_string(), json_string),
            json_string(&d.message)
        ));
        out.push('}');
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(msg: &str) -> Diagnostic {
        Diagnostic {
            file: PathBuf::from("crates/a/src/lib.rs"),
            line: 7,
            rule: "no-panic",
            function: Some("a::f".to_string()),
            message: msg.to_string(),
        }
    }

    #[test]
    fn github_escapes_workflow_metacharacters() {
        let out = render_github(&[diag("50% done\nnext line")]);
        assert_eq!(
            out,
            "::error file=crates/a/src/lib.rs,line=7,title=no-panic::50%25 done%0Anext line (in a::f)\n"
        );
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let out = render_json(&[diag("quote \" and \\ backslash")]);
        assert!(out.contains("\"rule\": \"no-panic\""));
        assert!(out.contains("\\\" and \\\\ backslash"));
        assert!(out.contains("\"function\": \"a::f\""));
        let mut d = diag("x");
        d.function = None;
        assert!(render_json(&[d]).contains("\"function\": null"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
