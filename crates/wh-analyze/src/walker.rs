//! Shared function-body walker.
//!
//! Before the item parser existed, `lock_order` and `failpoint_trace`
//! each carried their own brace-tracking `pending_fn` scanner to answer
//! "which function does this token belong to?". Both now walk the bodies
//! the parser produced instead; the interprocedural rules
//! ([`crate::interproc`], [`crate::protocol`]) use the same walk.
//!
//! The walk preserves the legacy scanners' semantics exactly:
//!
//! * closures and inner blocks belong to the enclosing function;
//! * nested `fn` items do **not** — their tokens (signature included,
//!   so `helper(` in `fn helper(…)` never looks like a call) are skipped
//!   in the parent's walk and visited in their own;
//! * comments are skipped.

use crate::lexer::{Kind, Tok};
use crate::parser::{FnInfo, FnTable};

/// Token-index ranges of `f`'s own body: the body interior minus each
/// nested `fn` item (from its `fn` keyword through its closing brace).
pub fn own_ranges(table: &FnTable, f: &FnInfo) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut pos = f.body.start;
    for &n in &f.nested {
        let nested = &table.fns[n];
        let hole_start = nested.sig_start;
        // `body.end` is the index *of* the closing brace; skip past it.
        let hole_end = nested.body.end + 1;
        if hole_start > pos {
            ranges.push(pos..hole_start.min(f.body.end));
        }
        pos = pos.max(hole_end);
    }
    if pos < f.body.end {
        ranges.push(pos..f.body.end);
    }
    ranges
}

/// Iterate `f`'s own body tokens (nested fns and comments excluded),
/// yielding `(token_index, token)` in source order.
pub fn body_tokens<'a>(
    toks: &'a [Tok],
    table: &'a FnTable,
    f: &'a FnInfo,
) -> impl Iterator<Item = (usize, &'a Tok)> + 'a {
    own_ranges(table, f).into_iter().flat_map(move |r| {
        toks[r.clone()]
            .iter()
            .enumerate()
            .map(move |(off, t)| (r.start + off, t))
            .filter(|(_, t)| t.kind != Kind::LineComment && t.kind != Kind::BlockComment)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn nested_fn_tokens_are_excluded_from_parent_walk() {
        let src = "fn outer() {\n    before();\n    fn helper(x: u8) -> u8 { inner(x) }\n    after();\n}\n";
        let toks = crate::lexer::lex(src);
        let table = crate::parser::parse(&PathBuf::from("crates/a/src/lib.rs"), &toks, &[]);
        assert_eq!(table.fns.len(), 2);
        let outer = &table.fns[0];
        let idents: Vec<&str> = body_tokens(&toks, &table, outer)
            .filter(|(_, t)| t.kind == crate::lexer::Kind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["before", "after"]);
        let helper = &table.fns[1];
        let idents: Vec<&str> = body_tokens(&toks, &table, helper)
            .filter(|(_, t)| t.kind == crate::lexer::Kind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["inner", "x"]);
    }

    #[test]
    fn closures_stay_in_the_enclosing_body() {
        let src = "fn f() {\n    run(|x| handle(x));\n}\n";
        let toks = crate::lexer::lex(src);
        let table = crate::parser::parse(&PathBuf::from("crates/a/src/lib.rs"), &toks, &[]);
        let idents: Vec<&str> = body_tokens(&toks, &table, &table.fns[0])
            .filter(|(_, t)| t.kind == crate::lexer::Kind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["run", "x", "handle", "x"]);
    }
}
