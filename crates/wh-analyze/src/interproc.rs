//! Interprocedural rules over the workspace call graph.
//!
//! * `latch-order` — a declared latch hierarchy checked along call-graph
//!   paths, with a witness path per inversion;
//! * `epoch-discipline` — raw page/RID access sinks must be dominated by
//!   an `EpochPin` or latch on every call-graph path from a public entry
//!   point.
//!
//! Both rules over-approximate (lexical "earlier in the function", name +
//! arity call resolution) and route false positives through
//! `lint: allow(...)` pragmas with written justifications, same as the
//! per-file rules.

use crate::callgraph::Call;
use crate::lexer::Kind;
use crate::rules::{latch_call_at, registry_hit_at, Diagnostic, Workspace, LATCH_CALLS};
use crate::walker;
use std::collections::BTreeMap;

/// The declared latch hierarchy, low level acquired first. An inversion
/// is acquiring a *lower* level while a higher one has already been
/// acquired in the same function (directly, or transitively through a
/// callee).
///
/// | level | name | acquisition pattern |
/// |-------|------|---------------------|
/// | 0 | index-registry | `indexes.read(` / `indexes.write(` / `indexes_snapshot(` |
/// | 1 | lease-registry | `slots.lock(` in a `lease` source file |
/// | 2 | pool-frames-latch | latch call whose argument names `frames` |
/// | 3 | frame-state-latch | latch call whose argument names `state` |
/// | 4 | page-latch | any other latch call |
///
/// `lock_list` (the heap free-list) is deliberately outside the
/// hierarchy: the free-list guard is always dropped within a statement
/// (see `HeapFile::append`) and its legacy interplay with page latches is
/// covered by the intra-function `lock-order` rule.
const LEVEL_NAMES: &[&str] = &[
    "index-registry",
    "lease-registry",
    "pool-frames-latch",
    "frame-state-latch",
    "page-latch",
];

/// Latch calls that participate in the hierarchy (the kernel latches plus
/// the heap's timed wrappers; `lock_list` excluded, see [`LEVEL_NAMES`]).
const HIER_LATCHES: &[&str] = &[
    "read_latch",
    "write_latch",
    "try_read_latch",
    "try_write_latch",
    "read_latch_timed",
    "write_latch_timed",
];

/// Direct latch acquisitions in one function: (token index, line, level).
fn direct_acquisitions(ws: &Workspace<'_>, gid: usize) -> Vec<(usize, u32, u8)> {
    let (ctx, f) = ws.fn_info(gid);
    let g = ws.graph.fns[gid];
    let table = &ws.tables[g.file];
    let toks = &ctx.toks;
    let in_lease_file = ctx
        .path
        .file_name()
        .is_some_and(|n| n.to_string_lossy().contains("lease"));
    let mut out = Vec::new();
    for (i, t) in walker::body_tokens(toks, table, f) {
        if ctx.in_test(i) {
            continue;
        }
        if registry_hit_at(ctx, i) {
            out.push((i, t.line, 0));
            continue;
        }
        if in_lease_file
            && t.is_ident("slots")
            && matches!(toks.get(i + 1), Some(n) if n.is_punct('.'))
            && matches!(toks.get(i + 2), Some(n) if n.is_ident("lock"))
            && matches!(toks.get(i + 3), Some(n) if n.is_punct('('))
        {
            out.push((i, t.line, 1));
            continue;
        }
        if latch_call_at(ctx, i, HIER_LATCHES) {
            out.push((i, t.line, latch_level(ctx, i)));
        }
    }
    out
}

/// Classify a latch call by its argument tokens: the buffer pool's
/// frames-map latch and per-frame state latch sit below the page-content
/// latch in the hierarchy.
fn latch_level(ctx: &crate::rules::FileCtx<'_>, call_idx: usize) -> u8 {
    let toks = &ctx.toks;
    // Find the opening paren, then scan the argument group.
    let mut j = call_idx + 1;
    while j < toks.len() && !toks[j].is_punct('(') {
        j += 1;
    }
    let mut depth = 0i32;
    let mut level = 4u8;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == Kind::Ident {
            if t.text == "frames" {
                return 2;
            }
            if t.text == "state" {
                level = 3;
            }
        }
        j += 1;
    }
    level
}

/// Per-function minimum level reachable (own directs or via any callee),
/// as a fixpoint over the call graph.
fn transitive_min(ws: &Workspace<'_>, directs: &[Vec<(usize, u32, u8)>]) -> Vec<Option<u8>> {
    let n = ws.graph.fns.len();
    let mut trans: Vec<Option<u8>> = directs
        .iter()
        .map(|d| d.iter().map(|&(_, _, l)| l).min())
        .collect();
    loop {
        let mut changed = false;
        for gid in 0..n {
            for call in &ws.graph.calls[gid] {
                for &c in &call.callees {
                    if let Some(t) = trans[c] {
                        if trans[gid].is_none_or(|cur| t < cur) {
                            trans[gid] = Some(t);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return trans;
        }
    }
}

/// Shortest call chain from one of `starts` to a function that *directly*
/// acquires `level`, following only edges that preserve reachability of
/// `level`. Returns the chain of global ids plus the terminal acquisition
/// line.
fn witness_chain(
    ws: &Workspace<'_>,
    directs: &[Vec<(usize, u32, u8)>],
    trans: &[Option<u8>],
    starts: &[usize],
    level: u8,
) -> (Vec<usize>, u32) {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for &s in starts {
        if trans[s] == Some(level) && !parent.contains_key(&s) {
            parent.insert(s, usize::MAX);
            queue.push(s);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let gid = queue[qi];
        qi += 1;
        if let Some(&(_, line, _)) = directs[gid].iter().find(|&&(_, _, l)| l == level) {
            // Reconstruct.
            let mut chain = vec![gid];
            let mut cur = gid;
            while let Some(&p) = parent.get(&cur) {
                if p == usize::MAX {
                    break;
                }
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return (chain, line);
        }
        for call in &ws.graph.calls[gid] {
            for &c in &call.callees {
                if trans[c] == Some(level) && !parent.contains_key(&c) {
                    parent.insert(c, gid);
                    queue.push(c);
                }
            }
        }
    }
    (starts.first().map(|&s| vec![s]).unwrap_or_default(), 0)
}

/// `latch-order`: check the declared hierarchy along call-graph paths.
/// The lexical grain matches `lock-order`: once a function has acquired a
/// level (even if the guard since dropped), any later acquisition of a
/// strictly lower level — directly or anywhere inside a callee — is an
/// inversion. The direct-direct page-latch→index-registry case is left to
/// the legacy `lock-order` rule (identical finding, stable fixture).
pub(crate) fn latch_order(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    let n = ws.graph.fns.len();
    let directs: Vec<Vec<(usize, u32, u8)>> =
        (0..n).map(|gid| direct_acquisitions(ws, gid)).collect();
    let trans = transitive_min(ws, &directs);

    for gid in 0..n {
        let (ctx, f) = ws.fn_info(gid);
        if f.is_test {
            continue;
        }
        // Merge direct acquisitions and call sites in token order; calls
        // that *are* direct acquisitions (e.g. `indexes_snapshot()`)
        // count once, as direct.
        let direct_toks: Vec<usize> = directs[gid].iter().map(|&(i, _, _)| i).collect();
        enum Ev<'c> {
            Direct(u32, u8),
            Call(&'c Call),
        }
        let mut events: Vec<(usize, Ev<'_>)> = directs[gid]
            .iter()
            .map(|&(i, line, l)| (i, Ev::Direct(line, l)))
            .collect();
        for call in &ws.graph.calls[gid] {
            if !call.callees.is_empty() && !direct_toks.contains(&call.tok) {
                events.push((call.tok, Ev::Call(call)));
            }
        }
        events.sort_by_key(|&(i, _)| i);

        let mut held: Option<(u8, u32)> = None;
        for (_, ev) in events {
            match ev {
                Ev::Direct(line, level) => {
                    if let Some((h, hline)) = held {
                        if level < h && !(h == 4 && level == 0) {
                            ctx.emit(
                                out,
                                "latch-order",
                                line,
                                format!(
                                    "latch-order inversion: {} acquired while {} is held \
                                     (acquired at line {hline}); declared order is {}",
                                    LEVEL_NAMES[level as usize],
                                    LEVEL_NAMES[h as usize],
                                    LEVEL_NAMES.join(" < "),
                                ),
                            );
                        }
                    }
                    if held.is_none_or(|(h, _)| level > h) {
                        held = Some((level, line));
                    }
                }
                Ev::Call(call) => {
                    let Some((h, hline)) = held else { continue };
                    let m = call.callees.iter().filter_map(|&c| trans[c]).min();
                    let Some(m) = m else { continue };
                    if m >= h {
                        continue;
                    }
                    let (chain, term_line) = witness_chain(ws, &directs, &trans, &call.callees, m);
                    let mut path = vec![f.qual.clone()];
                    let mut term_file = String::new();
                    for &c in &chain {
                        let (cctx, cf) = ws.fn_info(c);
                        path.push(cf.qual.clone());
                        term_file = cctx.path.display().to_string();
                    }
                    ctx.emit(
                        out,
                        "latch-order",
                        call.line,
                        format!(
                            "latch-order inversion: call to {} acquires {} while {} is \
                             held (acquired at line {hline}); witness: {} ({} at {}:{})",
                            call.name,
                            LEVEL_NAMES[m as usize],
                            LEVEL_NAMES[h as usize],
                            path.join(" → "),
                            LEVEL_NAMES[m as usize],
                            term_file,
                            term_line,
                        ),
                    );
                }
            }
        }
    }
}

/// Functions whose bodies read raw page memory or resolve RIDs against
/// reclaimable storage: calling one requires an `EpochPin` or page latch
/// already held in the caller (the sink's own internal latching protects
/// its access, not the caller's RID, which may be reclaimed and reused
/// between probe and fetch — the PR-4 fence-bug shape). `*` matches any
/// impl type.
const SINKS: &[(&str, &str)] = &[
    ("HeapFile", "read"),
    ("HeapFile", "scan"),
    ("HeapFile", "scan_pages"),
    ("HeapFile", "scan_parallel"),
    ("HeapFile", "scan_batches"),
    ("HeapFile", "scan_batches_parallel"),
    ("HeapFile", "scan_all"),
    ("Table", "scan"),
    ("Table", "scan_parallel"),
    ("Table", "scan_all"),
    ("RecordBatch", "gather"),
    ("VnlTable", "find_physical"),
    ("ByteScanner", "classify"),
    ("BatchScanner", "classify_batch"),
    ("*", "decode_visible"),
    ("*", "decode_planned"),
];

fn is_sink(f: &crate::parser::FnInfo) -> bool {
    SINKS
        .iter()
        .any(|&(ty, name)| name == f.name && (ty == "*" || f.impl_type.as_deref() == Some(ty)))
}

/// Calls that establish protection for everything lexically after them in
/// the same function: a zero-argument epoch pin, or any latch
/// acquisition.
fn is_protector(call: &Call) -> bool {
    (call.arity == 0 && matches!(call.name.as_str(), "pin" | "try_pin"))
        || HIER_LATCHES.contains(&call.name.as_str())
        || LATCH_CALLS.contains(&call.name.as_str())
}

/// `epoch-discipline`: every call-graph path from a public entry point to
/// a sink must pass a protector before reaching the sink call. Sinks'
/// own bodies are exempt (they compose: `Table::scan` delegating to
/// `HeapFile::scan` moves the obligation to `Table::scan`'s callers);
/// `#[cfg(test)]` code and bin targets (single-threaded report
/// harnesses) are out of scope, mirroring `no-panic`.
pub(crate) fn epoch_discipline(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    let n = ws.graph.fns.len();
    let scanned = |gid: usize| -> bool {
        let (ctx, f) = ws.fn_info(gid);
        !f.is_test && !ctx.is_bin && !is_sink(f)
    };
    // Per scanned fn: call sites not preceded by a protector.
    let uncovered: Vec<Vec<&Call>> = (0..n)
        .map(|gid| {
            if !scanned(gid) {
                return Vec::new();
            }
            let first_protector = ws.graph.calls[gid]
                .iter()
                .find(|c| is_protector(c))
                .map(|c| c.tok);
            ws.graph.calls[gid]
                .iter()
                .filter(|c| first_protector.is_none_or(|p| c.tok < p))
                .collect()
        })
        .collect();

    // Exposure BFS from public entries through uncovered call edges.
    let mut parent: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    let mut exposed: Vec<bool> = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for (gid, e) in exposed.iter_mut().enumerate() {
        let (ctx, f) = ws.fn_info(gid);
        if f.is_pub && !f.is_test && !ctx.is_bin {
            *e = true;
            queue.push(gid);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let gid = queue[qi];
        qi += 1;
        if !scanned(gid) {
            continue; // sinks/bins don't forward exposure
        }
        for call in &uncovered[gid] {
            for &c in &call.callees {
                if !exposed[c] {
                    exposed[c] = true;
                    parent.insert(c, (gid, call.line));
                    queue.push(c);
                }
            }
        }
    }

    for gid in 0..n {
        if !exposed[gid] || !scanned(gid) {
            continue;
        }
        let (ctx, f) = ws.fn_info(gid);
        for call in &uncovered[gid] {
            let sink = call
                .callees
                .iter()
                .copied()
                .find(|&c| is_sink(ws.fn_info(c).1));
            let Some(sink) = sink else { continue };
            let sink_qual = ws.fn_info(sink).1.qual.clone();
            // Reconstruct the exposure path: entry → … → this fn.
            let mut path = vec![f.qual.clone()];
            let mut cur = gid;
            while let Some(&(p, _)) = parent.get(&cur) {
                path.push(ws.fn_info(p).1.qual.clone());
                cur = p;
            }
            path.reverse();
            ctx.emit(
                out,
                "epoch-discipline",
                call.line,
                format!(
                    "call to raw-access sink `{sink_qual}` with no EpochPin or latch \
                     acquired earlier in this function; unprotected path from public \
                     entry: {} → {sink_qual} — pin (`let _pin = epochs().pin()`) or \
                     latch before probing RIDs/page memory",
                    path.join(" → "),
                ),
            );
        }
    }
}
