//! `atomic-protocol`: structured `// ordering:` tags and workspace-wide
//! protocol pairing.
//!
//! The `ordering-comment` rule requires every atomic access to carry a
//! justification; this rule gives the justification a grammar and checks
//! the claims:
//!
//! ```text
//! // ordering: <proto> <Order>[/<Order>][ fence] — why
//! ```
//!
//! * `<proto>` is a kebab-case protocol name (`gc-ceiling`, `epoch`,
//!   `stat-counter`, …). All accesses that synchronize with each other
//!   share one name; unrelated uses of the same field take different
//!   names.
//! * `<Order>` is the access's actual `Ordering::` variant
//!   (`Acquire/Relaxed` for the two-order CAS/`fetch_update` forms);
//!   a mismatch against the code is flagged.
//! * `fence` marks `atomic::fence` sites (no field of their own; they
//!   close a protocol side for fields published with Relaxed stores,
//!   e.g. the trace ring's seqlock payload).
//!
//! Checks, per `(protocol, field)` across the whole workspace:
//!
//! * an Acquire-side read requires a Release-side write somewhere (or a
//!   release fence in the protocol), and vice versa — "pairs with the
//!   Release publish" must have an actual partner;
//! * a fully-`Relaxed` access on a *paired* field is flagged: if it is
//!   genuinely unsynchronized it belongs to a different protocol name.
//!
//! Sites where no atomic method can be found (match arms over `Ordering`
//! in wh-model's simulator, pass-through parameters) are not accesses and
//! stay free-text. Bin targets and `#[cfg(test)]` code are out of scope,
//! mirroring `ordering-comment`.

use crate::lexer::{Kind, Tok};
use crate::rules::{marker_text, Diagnostic, Workspace};
use std::collections::BTreeMap;

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

const READ_METHODS: &[&str] = &["load"];
const WRITE_METHODS: &[&str] = &["store"];
const RMW_METHODS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];
const FENCE_METHODS: &[&str] = &["fence", "compiler_fence"];

/// One atomic access site (possibly several `Ordering::` tokens, e.g. a
/// CAS with success and failure orders).
struct Access {
    file: usize,
    line: u32,
    method: String,
    /// Receiver field (`self.global.load(…)` → `global`); `None` for
    /// fences and expression receivers.
    field: Option<String>,
    /// `Ordering::` variants at the site, source order.
    orders: Vec<String>,
}

/// Parsed structured tag.
struct Tag {
    proto: String,
    orders: Vec<String>,
    fence: bool,
}

/// Summary of one `(protocol, field)` for the `--protocols` table.
#[derive(Debug, Clone)]
pub struct FieldSummary {
    pub field: String,
    pub reads: usize,
    pub writes: usize,
    /// Field has an Acquire-side read.
    pub acq: bool,
    /// Field has a Release-side write.
    pub rel: bool,
    /// Both directions close (directly or via protocol fences), or the
    /// field never uses acquire/release at all (pure-Relaxed protocols
    /// are trivially closed).
    pub closed: bool,
}

/// One named protocol for the `--protocols` table.
#[derive(Debug, Clone)]
pub struct ProtocolEntry {
    pub name: String,
    pub fields: Vec<FieldSummary>,
    pub fences: usize,
    pub sites: usize,
    pub files: Vec<String>,
}

impl ProtocolEntry {
    pub fn closed(&self) -> bool {
        self.fields.iter().all(|f| f.closed)
    }
}

/// Render the protocol table, one protocol per line.
pub fn render_table(protocols: &[ProtocolEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "atomic protocols: {} named, {} closed\n",
        protocols.len(),
        protocols.iter().filter(|p| p.closed()).count()
    ));
    for p in protocols {
        let fields: Vec<String> = p
            .fields
            .iter()
            .map(|f| {
                let dir = match (f.acq, f.rel) {
                    (true, true) => "acq/rel",
                    (true, false) => "acq",
                    (false, true) => "rel",
                    (false, false) => "relaxed",
                };
                format!(
                    "{}({}r/{}w {} {})",
                    f.field,
                    f.reads,
                    f.writes,
                    dir,
                    if f.closed { "closed" } else { "OPEN" }
                )
            })
            .collect();
        let fence = if p.fences > 0 {
            format!(", {} fence(s)", p.fences)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {:<16} {} sites in {} file(s){}: {}\n",
            p.name,
            p.sites,
            p.files.len(),
            fence,
            fields.join(", ")
        ));
    }
    out
}

/// Run the rule; returns the protocol table for `--protocols`/stats.
pub(crate) fn check(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) -> Vec<ProtocolEntry> {
    // --- collect accesses and their tags ---------------------------------
    let mut accesses: Vec<(Access, Option<Tag>)> = Vec::new();
    for (fi, ctx) in ws.ctxs.iter().enumerate() {
        if ctx.is_bin {
            continue;
        }
        // site key: method token index → orders.
        let mut sites: BTreeMap<usize, (u32, Vec<String>)> = BTreeMap::new();
        for (i, t) in ctx.toks.iter().enumerate() {
            if !t.is_ident("Ordering") || ctx.in_test(i) {
                continue;
            }
            let path_sep = matches!(ctx.toks.get(i + 1), Some(t) if t.is_punct(':'))
                && matches!(ctx.toks.get(i + 2), Some(t) if t.is_punct(':'));
            let Some(variant) = ctx.toks.get(i + 3) else {
                continue;
            };
            if !path_sep || !ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
                continue;
            }
            let Some(m) = enclosing_atomic_method(&ctx.toks, i) else {
                continue;
            };
            let entry = sites.entry(m).or_insert_with(|| (t.line, Vec::new()));
            entry.0 = entry.0.min(t.line);
            entry.1.push(variant.text.clone());
        }
        for (m, (line, orders)) in sites {
            let method = ctx.toks[m].text.clone();
            let field = receiver_field(&ctx.toks, m);
            let tag = marker_text(ctx, line, "ordering:").map(|text| {
                parse_tag(&text).map_err(|why| {
                    ctx.emit(
                        out,
                        "atomic-protocol",
                        line,
                        format!(
                            "ordering comment is not a structured protocol tag ({why}); \
                             use `// ordering: <proto> <Order>[/<Order>][ fence] — why`"
                        ),
                    );
                })
            });
            let tag = match tag {
                Some(Ok(tag)) => Some(tag),
                // No comment at all is `ordering-comment`'s finding, not
                // ours; a malformed tag was already reported above.
                _ => None,
            };
            if let Some(tag) = &tag {
                let mut declared = tag.orders.clone();
                let mut actual = orders.clone();
                declared.sort();
                actual.sort();
                if declared != actual {
                    ctx.emit(
                        out,
                        "atomic-protocol",
                        line,
                        format!(
                            "tag declares {} but the access uses {}",
                            tag.orders.join("/"),
                            orders.join("/")
                        ),
                    );
                }
                let is_fence = FENCE_METHODS.contains(&method.as_str());
                if tag.fence != is_fence {
                    ctx.emit(
                        out,
                        "atomic-protocol",
                        line,
                        if is_fence {
                            "fence site must carry the `fence` keyword in its tag".to_string()
                        } else {
                            "`fence` keyword on a non-fence access".to_string()
                        },
                    );
                }
            }
            accesses.push((
                Access {
                    file: fi,
                    line,
                    method,
                    field,
                    orders,
                },
                tag,
            ));
        }
    }

    // --- pairing per (protocol, field) -----------------------------------
    let acq = |orders: &[String]| {
        orders
            .iter()
            .any(|o| matches!(o.as_str(), "Acquire" | "AcqRel" | "SeqCst"))
    };
    let rel = |orders: &[String]| {
        orders
            .iter()
            .any(|o| matches!(o.as_str(), "Release" | "AcqRel" | "SeqCst"))
    };

    struct FieldAccum {
        reads: usize,
        writes: usize,
        acq_read: bool,
        rel_write: bool,
        first_acq: Option<(usize, u32)>,
        first_rel: Option<(usize, u32)>,
        relaxed_sites: Vec<(usize, u32)>,
    }
    struct ProtoAccum {
        fields: BTreeMap<String, FieldAccum>,
        fences: usize,
        acq_fence: bool,
        rel_fence: bool,
        sites: usize,
        files: std::collections::BTreeSet<String>,
    }
    let mut protos: BTreeMap<String, ProtoAccum> = BTreeMap::new();
    for (a, tag) in &accesses {
        let Some(tag) = tag else { continue };
        let p = protos
            .entry(tag.proto.clone())
            .or_insert_with(|| ProtoAccum {
                fields: BTreeMap::new(),
                fences: 0,
                acq_fence: false,
                rel_fence: false,
                sites: 0,
                files: std::collections::BTreeSet::new(),
            });
        p.sites += 1;
        p.files.insert(ws.ctxs[a.file].path.display().to_string());
        if FENCE_METHODS.contains(&a.method.as_str()) {
            p.fences += 1;
            p.acq_fence |= acq(&a.orders);
            p.rel_fence |= rel(&a.orders);
            continue;
        }
        let Some(field) = &a.field else { continue };
        let is_read =
            READ_METHODS.contains(&a.method.as_str()) || RMW_METHODS.contains(&a.method.as_str());
        let is_write =
            WRITE_METHODS.contains(&a.method.as_str()) || RMW_METHODS.contains(&a.method.as_str());
        let f = p.fields.entry(field.clone()).or_insert_with(|| FieldAccum {
            reads: 0,
            writes: 0,
            acq_read: false,
            rel_write: false,
            first_acq: None,
            first_rel: None,
            relaxed_sites: Vec::new(),
        });
        f.reads += usize::from(is_read);
        f.writes += usize::from(is_write);
        if is_read && acq(&a.orders) {
            f.acq_read = true;
            f.first_acq.get_or_insert((a.file, a.line));
        }
        if is_write && rel(&a.orders) {
            f.rel_write = true;
            f.first_rel.get_or_insert((a.file, a.line));
        }
        if a.orders.iter().all(|o| o == "Relaxed") {
            f.relaxed_sites.push((a.file, a.line));
        }
    }

    let mut table = Vec::new();
    for (name, p) in &protos {
        let mut fields = Vec::new();
        for (fname, f) in &p.fields {
            let acq_closed = !f.acq_read || f.rel_write || p.rel_fence;
            let rel_closed = !f.rel_write || f.acq_read || p.acq_fence;
            if !acq_closed {
                let (fi, line) = f.first_acq.unwrap_or((0, 0));
                ws.ctxs[fi].emit(
                    out,
                    "atomic-protocol",
                    line,
                    format!(
                        "protocol '{name}': Acquire-side read of field '{fname}' has no \
                         Release-or-stronger store (or release fence) anywhere in the \
                         workspace"
                    ),
                );
            }
            if !rel_closed {
                let (fi, line) = f.first_rel.unwrap_or((0, 0));
                ws.ctxs[fi].emit(
                    out,
                    "atomic-protocol",
                    line,
                    format!(
                        "protocol '{name}': Release-side store of field '{fname}' has no \
                         Acquire-or-stronger load (or acquire fence) anywhere in the \
                         workspace"
                    ),
                );
            }
            if f.acq_read && f.rel_write {
                for &(fi, line) in &f.relaxed_sites {
                    ws.ctxs[fi].emit(
                        out,
                        "atomic-protocol",
                        line,
                        format!(
                            "Relaxed access on paired protocol '{name}' field '{fname}' — \
                             if this access is genuinely unsynchronized, give it its own \
                             protocol name"
                        ),
                    );
                }
            }
            fields.push(FieldSummary {
                field: fname.clone(),
                reads: f.reads,
                writes: f.writes,
                acq: f.acq_read,
                rel: f.rel_write,
                closed: acq_closed && rel_closed,
            });
        }
        table.push(ProtocolEntry {
            name: name.clone(),
            fields,
            fences: p.fences,
            sites: p.sites,
            files: p.files.iter().cloned().collect(),
        });
    }
    table
}

/// The atomic method whose argument list contains the `Ordering` token at
/// `i`, walking back over balanced groups: for
/// `a.store(b.load(Ordering::Acquire), Ordering::Release)` the second
/// token maps to `store`, the first to `load`. Returns the method's token
/// index, or `None` when the token is not inside an atomic call (match
/// arms, `use` lists, parameter pass-through).
fn enclosing_atomic_method(toks: &[Tok], i: usize) -> Option<usize> {
    let code = |t: &Tok| t.kind != Kind::LineComment && t.kind != Kind::BlockComment;
    let mut depth = 0i32;
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 400 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        if !code(t) {
            continue;
        }
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            if depth > 0 {
                depth -= 1;
                continue;
            }
            // The unclosed `(` enclosing our token: the call's method is
            // the identifier just before it.
            let m = toks[..j]
                .iter()
                .rposition(&code)
                .filter(|&k| toks[k].kind == Kind::Ident)?;
            let name = toks[m].text.as_str();
            if READ_METHODS.contains(&name)
                || WRITE_METHODS.contains(&name)
                || RMW_METHODS.contains(&name)
                || FENCE_METHODS.contains(&name)
            {
                return Some(m);
            }
            // A non-atomic enclosing call (or a plain group); keep
            // walking outward from just before the `(`.
            j = m + 1;
            continue;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return None;
        }
    }
    None
}

/// The receiver field of the method at `m`: the identifier before the
/// `.`, skipping one `[…]` index group (`self.slots[i].load` → `slots`).
fn receiver_field(toks: &[Tok], m: usize) -> Option<String> {
    let code_before = |j: usize| {
        toks[..j]
            .iter()
            .rposition(|t| t.kind != Kind::LineComment && t.kind != Kind::BlockComment)
    };
    let dot = code_before(m)?;
    if !toks[dot].is_punct('.') {
        return None;
    }
    let mut j = code_before(dot)?;
    if toks[j].is_punct(']') {
        let mut depth = 0i32;
        loop {
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = code_before(j)?;
        }
        j = code_before(j)?;
    }
    (toks[j].kind == Kind::Ident).then(|| toks[j].text.clone())
}

/// Parse `ordering: <proto> <Order>[/<Order>][ fence] — why`.
fn parse_tag(text: &str) -> Result<Tag, &'static str> {
    let rest = text.strip_prefix("ordering:").unwrap_or(text).trim_start();
    let mut words = rest.split_whitespace();
    let proto = words.next().ok_or("missing protocol name")?;
    let valid_proto = proto
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && proto.starts_with(|c: char| c.is_ascii_lowercase());
    if !valid_proto {
        return Err("protocol name must be kebab-case");
    }
    let orders_word = words.next().ok_or("missing Ordering variant")?;
    let orders: Vec<String> = orders_word.split('/').map(str::to_string).collect();
    if !orders
        .iter()
        .all(|o| ATOMIC_ORDERINGS.contains(&o.as_str()))
    {
        return Err("unknown Ordering variant");
    }
    let mut fence = false;
    let mut next = words.next();
    if next == Some("fence") {
        fence = true;
        next = words.next();
    }
    match next {
        Some(w) if w.starts_with('—') || w.starts_with('-') => Ok(Tag {
            proto: proto.to_string(),
            orders,
            fence,
        }),
        _ => Err("missing `— why` rationale"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_grammar() {
        let t = parse_tag("ordering: gc-ceiling Acquire — pairs with the checkpoint publish")
            .expect("valid");
        assert_eq!(t.proto, "gc-ceiling");
        assert_eq!(t.orders, vec!["Acquire"]);
        assert!(!t.fence);

        let t = parse_tag("ordering: cas-slot AcqRel/Relaxed — slot claim").expect("valid");
        assert_eq!(t.orders, vec!["AcqRel", "Relaxed"]);

        let t =
            parse_tag("ordering: trace-ring Release fence — publishes the payload").expect("valid");
        assert!(t.fence);

        assert!(parse_tag("ordering: Relaxed — legacy free text").is_err());
        assert!(parse_tag("ordering: CamelCase Acquire — bad name").is_err());
        assert!(parse_tag("ordering: p Acquire").is_err(), "missing why");
        assert!(parse_tag("ordering: p Sequential — typo order").is_err());
    }

    #[test]
    fn enclosing_method_handles_nesting() {
        let toks = crate::lexer::lex(
            "fn f(a: &A, b: &A) { a.store(b.load(Ordering::Acquire), Ordering::Release); }",
        );
        let sites: Vec<(usize, String)> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("Ordering"))
            .filter_map(|(i, _)| {
                enclosing_atomic_method(&toks, i).map(|m| (i, toks[m].text.clone()))
            })
            .collect();
        let methods: Vec<&str> = sites.iter().map(|(_, m)| m.as_str()).collect();
        assert_eq!(methods, vec!["load", "store"]);
    }

    #[test]
    fn match_arms_have_no_enclosing_method() {
        let toks =
            crate::lexer::lex("fn f(o: Ordering) -> bool { matches!(o, Ordering::Acquire) }");
        let i = toks
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.is_ident("Ordering"))
            .map(|(i, _)| i)
            .expect("token");
        assert_eq!(enclosing_atomic_method(&toks, i), None);
    }

    #[test]
    fn receiver_fields() {
        let toks = crate::lexer::lex("fn f(&self) { self.slots[i].load(Ordering::SeqCst); }");
        let m = toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident("load"))
            .map(|(i, _)| i)
            .expect("load");
        assert_eq!(receiver_field(&toks, m).as_deref(), Some("slots"));

        let toks = crate::lexer::lex("fn f(&self) { self.global.store(1, Ordering::SeqCst); }");
        let m = toks
            .iter()
            .enumerate()
            .find(|(_, t)| t.is_ident("store"))
            .map(|(i, _)| i)
            .expect("store");
        assert_eq!(receiver_field(&toks, m).as_deref(), Some("global"));
    }
}
