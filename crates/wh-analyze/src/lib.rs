//! `wh-analyze`: repo-specific static analysis for the 2VNL workspace.
//!
//! Generic lints (clippy, the `[workspace.lints]` table) cannot see the
//! repo's own invariants — the latch order that keeps index backfill from
//! deadlocking, the failpoint registry the crash matrix sweeps, the
//! memory-ordering discipline the wh-kernel model suite verifies. This
//! crate enforces those as source-level rules over a hand-rolled lexer
//! (no `syn`: the workspace is dependency-free by policy).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p wh-analyze            # analyze the enclosing workspace
//! cargo run -p wh-analyze -- <root>  # analyze another tree (fixtures)
//! ```
//!
//! Exit status is non-zero iff any rule fires; diagnostics are
//! `file:line: [rule] message`, one per line, deterministic order. See
//! [`rules`] for the rule list and the `lint: allow(...)` pragma syntax.

pub mod callgraph;
pub mod interproc;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod protocol;
pub mod rules;
pub mod walker;

pub use protocol::ProtocolEntry;
pub use rules::{analyze, analyze_report, Diagnostic, Report, SourceFile, RULES};

use std::path::{Path, PathBuf};

/// Collect and analyze every library source file under `root`: `src/` of
/// the root package and of each `crates/*` member. `tests/`, `benches/`,
/// and `examples/` are out of scope by construction (the rules govern
/// library code; in-file `#[cfg(test)]` modules are excluded per rule).
///
/// I/O errors surface as diagnostics rather than panics — the analyzer is
/// itself subject to the `no-panic` rule.
pub fn analyze_tree(root: &Path) -> Vec<Diagnostic> {
    analyze_tree_report(root).diagnostics
}

/// Like [`analyze_tree`], but returns the full [`Report`] (protocol table
/// and call-graph statistics included) for `--protocols` and the stats
/// summary line.
pub fn analyze_tree_report(root: &Path) -> Report {
    let mut files = Vec::new();
    let mut errors = Vec::new();
    let mut src_roots = vec![root.join("src")];
    match std::fs::read_dir(root.join("crates")) {
        Ok(entries) => {
            let mut members: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path().join("src")))
                .collect();
            members.sort();
            src_roots.extend(members);
        }
        Err(e) => errors.push(Diagnostic {
            file: root.join("crates"),
            line: 0,
            rule: "io-error",
            function: None,
            message: format!("cannot read crates/ directory: {e}"),
        }),
    }
    for src_root in src_roots {
        collect_rs_files(root, &src_root, &mut files, &mut errors);
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    let mut report = analyze_report(&files);
    report.diagnostics.extend(errors);
    report
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    files: &mut Vec<SourceFile>,
    errors: &mut Vec<Diagnostic>,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        // A member without src/ (or the root package without one) is fine.
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(root, &path, files, errors);
        } else if path.extension().is_some_and(|e| e == "rs") {
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                    files.push(SourceFile { path: rel, text });
                }
                Err(e) => errors.push(Diagnostic {
                    file: path,
                    line: 0,
                    rule: "io-error",
                    function: None,
                    message: format!("cannot read file: {e}"),
                }),
            }
        }
    }
}
