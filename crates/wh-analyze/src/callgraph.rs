//! Workspace call graph: call-site extraction and same-workspace edge
//! resolution over the parsed function tables.
//!
//! Resolution is name-based with three precision filters, in keeping with
//! the crate's token-level fidelity (no type inference):
//!
//! * **arity** — a call with N arguments only resolves to functions with
//!   N parameters (`self` excluded); a path call also matches N−1
//!   parameters for the UFCS `Type::method(self, …)` spelling;
//! * **path segments** — `wh_kernel::latch::read_latch(...)` only
//!   resolves to functions whose qualified path ends with those
//!   segments (`Self::` maps to the calling function's impl type);
//! * **self-calls** — `self.helper()` prefers candidates on the calling
//!   function's own impl type when any exist, which disambiguates the
//!   workspace's several private `locked()` helpers.
//!
//! Unresolvable names (std, closures, macros-expanded calls) simply get
//! no edges. Turbofish calls (`collect::<…>()`) are not recognized —
//! none of the workspace's own functions are called that way. The rules
//! that consume the graph over-approximate by design and route false
//! positives through `lint: allow(...)` pragmas, like every other rule
//! here.

use crate::lexer::{Kind, Tok};
use crate::parser::FnTable;
use crate::walker;
use std::collections::BTreeMap;

/// One call site inside a function's own body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Callee simple name.
    pub name: String,
    /// Argument count at the call site.
    pub arity: usize,
    /// `receiver.name(...)` rather than `name(...)` / `path::name(...)`.
    pub is_method: bool,
    /// For method calls: the leading `ident.`* receiver chain
    /// (`self.storage.read(…)` → `["self", "storage"]`); empty when the
    /// receiver is an expression.
    pub recv: Vec<String>,
    /// For path calls: the `::`-separated segments before the name.
    pub segs: Vec<String>,
    /// Resolved same-workspace callees (global fn ids), id order.
    pub callees: Vec<usize>,
}

/// A function's global identity: file index + index in that file's table.
#[derive(Debug, Clone, Copy)]
pub struct GFn {
    pub file: usize,
    pub local: usize,
}

/// The workspace call graph. Global fn ids index both `fns` and `calls`
/// and run in (file, table) order, so everything derived is deterministic.
#[derive(Debug, Default)]
pub struct Graph {
    pub fns: Vec<GFn>,
    pub calls: Vec<Vec<Call>>,
    /// file index → global ids of that file's functions, table order.
    pub by_file: Vec<Vec<usize>>,
}

impl Graph {
    pub fn global_id(&self, file: usize, local: usize) -> usize {
        self.by_file[file][local]
    }
}

/// Method names that shadow std container / lock / atomic / iterator
/// methods. A `.len()` or `.push(x)` on an arbitrary receiver is almost
/// always `Vec::len`, not some workspace type's `len` — resolving it by
/// name alone floods the graph with false edges (every `.len()` in the
/// workspace would "call" `LeaseCore::len`, which takes the lease
/// registry). Calls with these names resolve only through the self-call
/// path (`self.len()` on the same impl type); other receivers get no
/// edge. Distinctive workspace names (`scan_batches`, `find_physical`,
/// `mark_referenced`, …) are unaffected.
const STD_SHADOW_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "find",
    "collect",
    "extend",
    "drain",
    "take",
    "entry",
    "keys",
    "values",
    "first",
    "last",
    "split",
    "join",
    "read",
    "write",
    "lock",
    "try_lock",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "set",
    "add",
    "inc",
    "count",
    "reset",
    "abort",
    "wait",
    "send",
    "recv",
    "flush",
    "min",
    "max",
    "point",
    "project",
    "id",
    "name",
    "init",
    "new",
    "clone",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "start",
    "stop",
    "run",
    "tick",
    "apply",
    "begin",
    "commit",
    "get_or_insert",
    "push_back",
    "pop_front",
    "resize",
    "truncate",
];

/// Names that precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "move", "in", "as",
    "use", "pub", "ref", "mut", "where", "impl", "dyn", "break", "continue", "unsafe", "async",
    "await", "box",
];

/// Build the graph for a set of files. `tables[i]` must be the parse of
/// `toks[i]`. Test functions are excluded as candidates for calls from
/// non-test code.
pub fn build(tables: &[FnTable], toks: &[&[Tok]]) -> Graph {
    let mut g = Graph::default();
    let mut name_index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, table) in tables.iter().enumerate() {
        let mut ids = Vec::with_capacity(table.fns.len());
        for (li, f) in table.fns.iter().enumerate() {
            let gid = g.fns.len();
            g.fns.push(GFn {
                file: fi,
                local: li,
            });
            name_index.entry(f.name.as_str()).or_default().push(gid);
            ids.push(gid);
        }
        g.by_file.push(ids);
    }

    g.calls = g
        .fns
        .iter()
        .map(|&GFn { file, local }| extract_calls(toks[file], &tables[file], local))
        .collect();

    // Resolve edges.
    for gid in 0..g.fns.len() {
        let GFn { file, local } = g.fns[gid];
        let caller = &tables[file].fns[local];
        let caller_test = caller.is_test;
        let caller_impl = caller.impl_type.clone();
        for call in &mut g.calls[gid] {
            let Some(cands) = name_index.get(call.name.as_str()) else {
                continue;
            };
            let mut resolved: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let GFn {
                        file: cf,
                        local: cl,
                    } = g.fns[c];
                    let f = &tables[cf].fns[cl];
                    if f.is_test && !caller_test {
                        return false;
                    }
                    let arity_ok = f.arity == call.arity
                        || (!call.segs.is_empty() && f.arity + 1 == call.arity);
                    if !arity_ok {
                        return false;
                    }
                    if !call.segs.is_empty() {
                        let segs: Vec<&str> = call
                            .segs
                            .iter()
                            .map(|s| {
                                if s == "Self" {
                                    caller_impl.as_deref().unwrap_or("Self")
                                } else {
                                    s.as_str()
                                }
                            })
                            .filter(|s| !matches!(*s, "crate" | "self" | "super"))
                            .collect();
                        let parts: Vec<&str> = f.qual.split("::").collect();
                        let prefix = &parts[..parts.len().saturating_sub(1)];
                        if segs.len() > prefix.len()
                            || prefix[prefix.len() - segs.len()..] != segs[..]
                        {
                            return false;
                        }
                    }
                    true
                })
                .collect();
            // `self.helper()`: prefer the calling type's own method.
            let mut same_impl = false;
            if call.is_method && call.recv == ["self"] {
                if let Some(ty) = &caller_impl {
                    let same: Vec<usize> = resolved
                        .iter()
                        .copied()
                        .filter(|&c| {
                            let GFn {
                                file: cf,
                                local: cl,
                            } = g.fns[c];
                            tables[cf].fns[cl].impl_type.as_deref() == Some(ty)
                        })
                        .collect();
                    if !same.is_empty() {
                        resolved = same;
                        same_impl = true;
                    }
                }
            }
            // Std-shadowing names resolve only via the self-call path.
            if call.is_method && !same_impl && STD_SHADOW_METHODS.contains(&call.name.as_str()) {
                resolved.clear();
            }
            call.callees = resolved;
        }
    }
    g
}

/// All call sites in the function's own body (nested fns excluded).
fn extract_calls(toks: &[Tok], table: &FnTable, local: usize) -> Vec<Call> {
    let f = &table.fns[local];
    let mut out = Vec::new();
    let body: Vec<(usize, &Tok)> = walker::body_tokens(toks, table, f).collect();
    for w in 0..body.len() {
        let (i, t) = body[w];
        if t.kind != Kind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // A call: the very next code token is `(` (macros have `!` there).
        if !matches!(body.get(w + 1), Some((_, n)) if n.is_punct('(')) {
            continue;
        }
        let prev = w.checked_sub(1).map(|p| body[p].1);
        let is_method = prev.is_some_and(|p| p.is_punct('.'));
        let mut segs = Vec::new();
        let mut recv = Vec::new();
        if is_method {
            // Walk the `ident .`* receiver chain backwards.
            let mut j = w; // at callee; body[j-1] is `.`
            while j >= 2 && body[j - 1].1.is_punct('.') && body[j - 2].1.kind == Kind::Ident {
                recv.push(body[j - 2].1.text.clone());
                j -= 2;
            }
            if j >= 1 && body[j - 1].1.is_punct('.') {
                // Chain begins at an expression (`foo().bar(…)`) — the
                // receiver is unknown; drop the partial chain.
                recv.clear();
            }
            recv.reverse();
        } else {
            // Path segments: `ident :: (ident | '<…>') :: … :: name`.
            let mut j = w;
            while j >= 3
                && body[j - 1].1.is_punct(':')
                && body[j - 2].1.is_punct(':')
                && body[j - 3].1.kind == Kind::Ident
            {
                segs.push(body[j - 3].1.text.clone());
                j -= 3;
            }
            segs.reverse();
            // A plain-name call directly preceded by `:` with no ident
            // (e.g. after a turbofish) is not resolvable; leave segs as-is.
        }
        let arity = call_arity(&body, w + 1);
        out.push(Call {
            tok: i,
            line: t.line,
            name: t.text.clone(),
            arity,
            is_method,
            recv,
            segs,
            callees: Vec::new(),
        });
    }
    out
}

/// Argument count of the group opening at `body[open]` (a `(`), with
/// closure parameter lists (`|a, b|`) skipped so their commas don't
/// count.
fn call_arity(body: &[(usize, &Tok)], open: usize) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut saw_arg = false;
    let mut w = open;
    let mut prev_text: Option<&str> = None;
    while w < body.len() {
        let t = body[w].1;
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == Kind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == Kind::Punct => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if t.kind == Kind::Punct && depth == 1 => {
                if saw_arg {
                    commas += 1;
                    saw_arg = false;
                }
                prev_text = Some(",");
                w += 1;
                continue;
            }
            "|" if t.kind == Kind::Punct
                && depth == 1
                && matches!(prev_text, Some("(" | "," | "move")) =>
            {
                // Closure parameter list: skip to its closing `|`.
                saw_arg = true;
                w += 1;
                while w < body.len() && !body[w].1.is_punct('|') {
                    w += 1;
                }
                prev_text = Some("|");
                w += 1;
                continue;
            }
            _ if depth >= 1 => saw_arg = true,
            _ => {}
        }
        prev_text = Some(t.text.as_str());
        w += 1;
    }
    commas + usize::from(saw_arg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph_of(files: &[(&str, &str)]) -> (Graph, Vec<FnTable>, Vec<Vec<Tok>>) {
        let toks: Vec<Vec<Tok>> = files.iter().map(|(_, s)| crate::lexer::lex(s)).collect();
        let tables: Vec<FnTable> = files
            .iter()
            .zip(&toks)
            .map(|((p, _), t)| {
                let ranges = crate::rules::test_ranges(t);
                crate::parser::parse(&PathBuf::from(p), t, &ranges)
            })
            .collect();
        let slices: Vec<&[Tok]> = toks.iter().map(Vec::as_slice).collect();
        let g = build(&tables, &slices);
        (g, tables, toks)
    }

    fn callee_quals(g: &Graph, tables: &[FnTable], gid: usize) -> Vec<Vec<String>> {
        g.calls[gid]
            .iter()
            .map(|c| {
                c.callees
                    .iter()
                    .map(|&id| {
                        let GFn { file, local } = g.fns[id];
                        tables[file].fns[local].qual.clone()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn free_calls_resolve_by_name_and_arity() {
        let (g, tables, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn one(x: u8) -> u8 { x }\nfn one_more(x: u8, y: u8) -> u8 { x + y }\n\
             fn caller() { one(1); one(1, 2); }\n",
        )]);
        let caller = g.by_file[0][2];
        let quals = callee_quals(&g, &tables, caller);
        assert_eq!(quals[0], vec!["a::one".to_string()]);
        assert!(quals[1].is_empty(), "arity 2 does not match fn one/1");
    }

    #[test]
    fn path_segments_filter_candidates() {
        let (g, tables, _) = graph_of(&[
            (
                "crates/wh-kernel/src/latch.rs",
                "pub fn read_latch(l: &L) -> G { l.g() }\n",
            ),
            (
                "crates/a/src/lib.rs",
                "pub fn read_latch(l: &L) -> G { l.g() }\n\
                 fn caller(l: &L) { wh_kernel::latch::read_latch(l); }\n",
            ),
        ]);
        let caller = g.by_file[1][1];
        let quals = callee_quals(&g, &tables, caller);
        assert_eq!(quals[0], vec!["wh_kernel::latch::read_latch".to_string()]);
    }

    #[test]
    fn self_calls_prefer_the_own_impl_type() {
        let (g, tables, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn locked(&self) {} fn go(&self) { self.locked(); } }\n\
             impl B { fn locked(&self) {} }\n",
        )]);
        let go = g.by_file[0][1];
        let quals = callee_quals(&g, &tables, go);
        assert_eq!(quals[0], vec!["a::A::locked".to_string()]);
    }

    #[test]
    fn methods_record_receiver_chains_and_closure_args_count_once() {
        let (g, _, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn f(&self) { self.storage.scan(|rid, ext| visit(rid, ext)); }\n",
        )]);
        let f = g.by_file[0][0];
        let scan = g.calls[f].iter().find(|c| c.name == "scan").expect("scan");
        assert_eq!(scan.recv, vec!["self".to_string(), "storage".to_string()]);
        assert_eq!(scan.arity, 1, "one closure argument");
        assert!(scan.is_method);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (g, _, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn f() { if cond(x) { write!(w, \"{}\", 1); } match y { _ => {} } }\n",
        )]);
        let f = g.by_file[0][0];
        let names: Vec<&str> = g.calls[f].iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["cond"], "{names:?}");
    }

    #[test]
    fn test_fns_are_not_candidates_for_live_code() {
        let (g, tables, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn caller() { helper(1); }\n\
             #[cfg(test)]\nmod tests { fn helper(x: u8) -> u8 { x } }\n",
        )]);
        let caller = g.by_file[0][0];
        let quals = callee_quals(&g, &tables, caller);
        assert!(quals[0].is_empty());
    }
}
