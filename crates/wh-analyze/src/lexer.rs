//! A minimal Rust lexer — just enough fidelity for line-anchored lint
//! rules.
//!
//! The workspace bans external dependencies, so there is no `syn` here.
//! Instead this hand-rolled scanner splits source into identifiers,
//! punctuation, literals, and comments, with exact line numbers, handling
//! the constructs that break naive regex linting:
//!
//! * nested block comments (`/* /* */ */`);
//! * string/char escapes, raw strings (`r#"…"#`, any `#` depth), and byte
//!   strings, so `"unwrap()"` inside a literal never looks like code;
//! * the `'a` lifetime vs `'a'` char-literal ambiguity.
//!
//! It does **not** resolve macros, paths, or types — the rules in
//! [`crate::rules`] are token-pattern matchers and accept that tradeoff
//! (documented per rule, with `lint: allow(...)` escapes for false
//! positives).

/// What a token is, coarsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `Ordering`, …).
    Ident,
    /// One punctuation character (`.`, `!`, `(`, `{`, …).
    Punct,
    /// String or byte-string literal, raw or not. `text` is the *content*
    /// (delimiters stripped, escapes left as written).
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) or the loop-label form (`'outer`).
    Lifetime,
    /// Numeric literal (including suffixed forms like `0u64`).
    Num,
    /// `// …` comment (doc or not). `text` is everything after `//`.
    LineComment,
    /// `/* … */` comment. `text` is the interior, newlines preserved.
    BlockComment,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Coarse class.
    pub kind: Kind,
    /// Token text (see [`Kind`] for what is included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Tokenize `src`. Unterminated literals/comments end at EOF rather than
/// erroring: a linter must keep going on slightly broken input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(0),
                '\'' => self.char_or_lifetime(),
                'r' if self.raw_string_ahead(1) => {
                    self.pos += 1;
                    let hashes = self.count_hashes();
                    self.string(hashes);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.pos += 1;
                    self.string(0);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.pos += 1;
                    self.char_or_lifetime();
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.pos += 2;
                    let hashes = self.count_hashes();
                    self.string(hashes);
                }
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(Kind::Punct, c.to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: Kind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    /// After an `r` (at `self.pos + from`): does `#*"` follow?
    fn raw_string_ahead(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    /// Consume `#` run before a raw-string quote; returns its length.
    fn count_hashes(&mut self) -> usize {
        let mut n = 0;
        while self.peek(0) == Some('#') {
            n += 1;
            self.pos += 1;
        }
        n
    }

    fn line_comment(&mut self) {
        let start = self.line;
        self.pos += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(Kind::LineComment, text, start);
    }

    fn block_comment(&mut self) {
        let start = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        self.push(Kind::BlockComment, text, start);
    }

    /// A (possibly raw) string body, opening quote at `self.pos`. For raw
    /// strings `hashes` is the `#` count that must follow the closing
    /// quote; raw strings process no escapes.
    fn string(&mut self, hashes: usize) {
        let start = self.line;
        self.pos += 1; // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' {
                if hashes == 0 {
                    self.pos += 1;
                    break;
                }
                let closed = (1..=hashes).all(|i| self.peek(i) == Some('#'));
                if closed {
                    self.pos += 1 + hashes;
                    break;
                }
                text.push(c);
                self.pos += 1;
            } else if c == '\\' && hashes == 0 {
                text.push(c);
                if let Some(esc) = self.peek(1) {
                    if esc == '\n' {
                        self.line += 1;
                    }
                    text.push(esc);
                    self.pos += 2;
                } else {
                    self.pos += 1;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        self.push(Kind::Str, text, start);
    }

    /// Disambiguate `'a'` / `'\n'` (char) from `'a` / `'outer` (lifetime).
    fn char_or_lifetime(&mut self) {
        let start = self.line;
        self.pos += 1; // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                let mut text = String::from("\\");
                self.pos += 1;
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(Kind::Char, text, start);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // Could be `'x'` or a lifetime. Scan the ident run; a
                // trailing quote makes it a char literal.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.pos += 1;
                    self.push(Kind::Char, text, start);
                } else {
                    self.push(Kind::Lifetime, text, start);
                }
            }
            Some(c) => {
                // `'('`-style single-punct char literal.
                let mut text = String::new();
                text.push(c);
                self.pos += 1;
                if self.peek(0) == Some('\'') {
                    self.pos += 1;
                }
                self.push(Kind::Char, text, start);
            }
            None => {}
        }
    }

    fn ident(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(Kind::Ident, text, start);
    }

    fn number(&mut self) {
        let start = self.line;
        let mut text = String::new();
        // Digits, `_` separators, type suffixes, hex/float bodies — one
        // alnum run is enough resolution for the rules.
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric()
                || c == '_'
                || c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(Kind::Num, text, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn a() {\n  b.c();\n}");
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 1), ("a", 1), ("b", 2), ("c", 2)]);
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks.contains(&(Kind::Str, "x.unwrap()".into())));
        assert!(!toks.contains(&(Kind::Ident, "unwrap".into())));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" b"#;"###);
        assert!(toks.contains(&(Kind::Str, r#"a "quoted" b"#.into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ tail */ x");
        assert_eq!(toks.last(), Some(&(Kind::Ident, "x".into())));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'a'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == Kind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_quote_char() {
        let toks = kinds(r"let q = '\''; let n = '\n'; x");
        assert_eq!(toks.last(), Some(&(Kind::Ident, "x".into())));
    }

    #[test]
    fn multiline_string_counts_lines() {
        let toks = lex("let s = \"a\nb\";\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).expect("lexed");
        assert_eq!(next.line, 3);
    }

    #[test]
    fn comment_text_is_captured() {
        let toks = lex("// ordering: Relaxed is a hint\nx");
        assert_eq!(toks[0].kind, Kind::LineComment);
        assert!(toks[0].text.contains("ordering:"));
    }
}
