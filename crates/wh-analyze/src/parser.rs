//! Item-level parsing: from the token stream to a per-file function table.
//!
//! The lexer ([`crate::lexer`]) knows nothing about structure; this module
//! adds just enough — module nesting, `impl`/`trait` blocks, `fn` items
//! with their body token ranges — for the interprocedural rules to name
//! every function (`crate::module::Type::fn`), attach diagnostics to the
//! enclosing function, and build the workspace call graph
//! ([`crate::callgraph`]). It is still a hand-rolled single pass (no
//! `syn`, per the dependency policy): a scope stack driven by `{`/`}`
//! with a small pending-item state machine, the same shape the legacy
//! `lock_order`/`failpoint_trace` scanners used, now shared.
//!
//! Deliberate simplifications, documented because the rules inherit them:
//!
//! * closures are part of the enclosing function (they get no entry);
//! * nested `fn` items get their own entry, and their body tokens are
//!   *excluded* from the parent's walk (see [`crate::walker`]);
//! * `impl Trait for Type` attributes functions to `Type`; a bare
//!   `trait Name { fn … }` default body is attributed to `Name`;
//! * generic parameters and `where` clauses are skipped, not understood.

use crate::lexer::{Kind, Tok};
use std::path::Path;

/// One `fn` item: identity, location, and body extent.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Simple name (`scan_visible`).
    pub name: String,
    /// Fully qualified path (`wh_vnl::table::VnlTable::scan_visible`).
    pub qual: String,
    /// Enclosing `impl`/`trait` type name, if any (`VnlTable`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Last line of the body (the closing `}`); equals `sig_line` for
    /// bodiless declarations.
    pub end_line: u32,
    /// Token-index range of the body *interior* (between the braces),
    /// empty for bodiless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Number of parameters, `self` excluded.
    pub arity: usize,
    /// `pub` with no restriction — a workspace-external entry point.
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` item.
    pub is_test: bool,
    /// Indices (into the same table) of `fn` items nested in this body.
    pub nested: Vec<usize>,
}

/// All functions of one file, in source order.
#[derive(Debug, Default)]
pub struct FnTable {
    pub fns: Vec<FnInfo>,
}

impl FnTable {
    /// The function whose body (or signature line) contains `line`,
    /// preferring the innermost (latest-starting) match. Used to attach
    /// diagnostics to their enclosing function.
    pub fn enclosing(&self, line: u32) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.sig_line <= line && line <= f.end_line)
            .max_by_key(|f| f.sig_line)
    }
}

/// Crate name for a root-relative path: `crates/wh-vnl/src/…` → `wh_vnl`,
/// the root package's `src/…` → `warehouse_2vnl`.
pub fn crate_name(path: &Path) -> String {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("crates") => comps
            .next()
            .map_or_else(|| "unknown".into(), |c| c.replace('-', "_")),
        Some("src") => "warehouse_2vnl".into(),
        _ => "unknown".into(),
    }
}

/// Module path segments implied by the file's location under `src/`:
/// `src/lib.rs` → `[]`, `src/scan.rs` → `["scan"]`,
/// `src/resilience/mod.rs` → `["resilience"]`,
/// `src/resilience/retry.rs` → `["resilience", "retry"]`.
fn file_modules(path: &Path) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut after_src = false;
    for c in path.components() {
        let c = c.as_os_str().to_string_lossy();
        if !after_src {
            after_src = c == "src";
            continue;
        }
        segs.push(c.into_owned());
    }
    if let Some(last) = segs.last_mut() {
        if let Some(stem) = last.strip_suffix(".rs") {
            *last = stem.to_string();
        }
    }
    if let Some("lib" | "main" | "mod") = segs.last().map(String::as_str) {
        segs.pop();
    }
    // Binary targets under src/bin get their file stem as the "module".
    segs
}

/// Keywords that can precede `fn` in an item header.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

enum Scope {
    Mod(String),
    Impl(String),
    /// A `fn` body: index into the output table.
    Fn(usize),
    Other,
}

enum Pending {
    None,
    /// `mod name` seen, `{` not yet.
    Mod(String),
    /// `impl` seen; header tokens collected until `{`.
    Impl(Vec<Tok>),
    /// `trait Name` seen.
    Trait(String),
    /// `fn name` seen; signature tokens collected until `{` or `;`.
    Fn {
        name: String,
        line: u32,
        start: usize,
        is_pub: bool,
        sig: Vec<Tok>,
    },
}

/// Parse one file's tokens into a function table. `test_ranges` are the
/// `#[cfg(test)]` token ranges already computed by the rule context.
pub fn parse(path: &Path, toks: &[Tok], test_ranges: &[(usize, usize)]) -> FnTable {
    let krate = crate_name(path);
    let mut mods = file_modules(path);
    mods.insert(0, krate);
    let in_test = |i: usize| -> bool { test_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi) };

    let mut table = FnTable::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;
    // Current module / impl-type context, updated as scopes push and pop.
    let code = |t: &Tok| t.kind != Kind::LineComment && t.kind != Kind::BlockComment;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !code(t) {
            i += 1;
            continue;
        }
        // `macro_rules!` definitions are opaque: their template tokens
        // (`pub mod $name { … }`, `fn store(…)`) are not items and must
        // not enter the table — wh-model's `model_atomic!` shims would
        // otherwise pollute call resolution workspace-wide.
        if t.is_ident("macro_rules") && matches!(next_code(toks, i), Some(n) if n.is_punct('!')) {
            i = skip_macro_def(toks, i);
            continue;
        }
        match (&mut pending, t.kind, t.text.as_str()) {
            // --- pending-item starters -------------------------------------
            (Pending::None, Kind::Ident, "mod") => {
                if let Some(n) = next_code(toks, i).filter(|n| n.kind == Kind::Ident) {
                    pending = Pending::Mod(n.text.clone());
                    i += 2;
                    continue;
                }
            }
            (Pending::None, Kind::Ident, "trait") => {
                if let Some(n) = next_code(toks, i).filter(|n| n.kind == Kind::Ident) {
                    pending = Pending::Trait(n.text.clone());
                    i += 2;
                    continue;
                }
            }
            (Pending::None, Kind::Ident, "impl") => {
                pending = Pending::Impl(Vec::new());
            }
            (Pending::None | Pending::Impl(_) | Pending::Trait(_), Kind::Ident, "fn") => {
                // `fn` inside an impl/trait header never happens; a `fn`
                // while Impl/Trait is pending would mean `impl Fn(..)`
                // bounds — those are `Fn`/`FnMut` idents, not `fn`. A real
                // `fn` item must be followed by its name.
                if let Some(n) = next_code(toks, i).filter(|n| n.kind == Kind::Ident) {
                    let is_pub = vis_is_pub(toks, i);
                    pending = Pending::Fn {
                        name: n.text.clone(),
                        line: t.line,
                        start: i,
                        is_pub,
                        sig: Vec::new(),
                    };
                    i += 2;
                    continue;
                }
            }
            // --- collect header/signature tokens ---------------------------
            (Pending::Impl(hdr), _, _) if !t.is_punct('{') => {
                hdr.push(t.clone());
            }
            (Pending::Fn { sig, .. }, _, _) if !t.is_punct('{') && !t.is_punct(';') => {
                sig.push(t.clone());
            }
            _ => {}
        }

        if t.is_punct('{') {
            let scope = match std::mem::replace(&mut pending, Pending::None) {
                Pending::Mod(name) => Scope::Mod(name),
                Pending::Impl(hdr) => Scope::Impl(impl_type_name(&hdr)),
                Pending::Trait(name) => Scope::Impl(name),
                Pending::Fn {
                    name,
                    line,
                    start,
                    is_pub,
                    sig,
                } => {
                    let idx = push_fn(
                        &mut table,
                        &mods,
                        &scopes,
                        name,
                        line,
                        start,
                        is_pub,
                        &sig,
                        in_test(i),
                    );
                    table.fns[idx].body = i + 1..i + 1; // end patched on close
                    Scope::Fn(idx)
                }
                Pending::None => Scope::Other,
            };
            scopes.push(scope);
        } else if t.is_punct('}') {
            if let Some(Scope::Fn(idx)) = scopes.pop() {
                table.fns[idx].body.end = i;
                table.fns[idx].end_line = t.line;
                // Link into the nearest enclosing fn, if any.
                if let Some(parent) = scopes.iter().rev().find_map(|s| match s {
                    Scope::Fn(p) => Some(*p),
                    _ => None,
                }) {
                    table.fns[parent].nested.push(idx);
                }
            }
        } else if t.is_punct(';') {
            // Terminates `mod m;`, `impl … for …;` (never), or a bodiless
            // `fn f(…);` trait-method declaration — drop any pending item.
            pending = Pending::None;
        }
        i += 1;
        // Silence "unused" on the module prefix vector reborrow.
        let _ = &mods;
    }
    table
}

/// Skip a `macro_rules! name { … }` definition starting at the
/// `macro_rules` token; returns the index just past its closing
/// delimiter (or `toks.len()` on malformed input).
fn skip_macro_def(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    // Find the rules group opener: the first (, [ or { after the name.
    let (open, close) = loop {
        match toks.get(j) {
            Some(t) if t.is_punct('(') => break ('(', ')'),
            Some(t) if t.is_punct('[') => break ('[', ']'),
            Some(t) if t.is_punct('{') => break ('{', '}'),
            Some(_) => j += 1,
            None => return toks.len(),
        }
    };
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

fn next_code(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[i + 1..]
        .iter()
        .find(|t| t.kind != Kind::LineComment && t.kind != Kind::BlockComment)
}

/// Whether the `fn` at token `i` is `pub` with no `(…)` restriction:
/// scan backwards over qualifier keywords to the optional visibility.
fn vis_is_pub(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == Kind::LineComment || t.kind == Kind::BlockComment {
            continue;
        }
        match t.kind {
            Kind::Ident if FN_QUALIFIERS.contains(&t.text.as_str()) => continue,
            Kind::Str => continue, // `extern "C"`
            Kind::Punct if t.is_punct(')') => {
                // Could be the close of `pub(crate)` — restricted, so not
                // public regardless; stop either way.
                return false;
            }
            Kind::Ident if t.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// The `Self`-type name of an impl header: the first plain identifier at
/// angle-depth 0 after `for` when present (`impl Tr for Type`), otherwise
/// the first such identifier (`impl Type<…>`). Built-in generics and
/// references are skipped; an unnameable target (e.g. `impl … for &[T]`)
/// yields `"_"`.
fn impl_type_name(hdr: &[Tok]) -> String {
    let name_after = |toks: &[Tok]| -> Option<String> {
        let mut angle = 0i32;
        for t in toks {
            match t.kind {
                Kind::Punct if t.is_punct('<') => angle += 1,
                Kind::Punct if t.is_punct('>') => angle = (angle - 1).max(0),
                Kind::Ident
                    if angle == 0 && t.text != "dyn" && t.text != "mut" && t.text != "where" =>
                {
                    return Some(t.text.clone());
                }
                _ => {}
            }
        }
        None
    };
    let mut angle = 0i32;
    for (i, t) in hdr.iter().enumerate() {
        match t.kind {
            Kind::Punct if t.is_punct('<') => angle += 1,
            Kind::Punct if t.is_punct('>') => angle = (angle - 1).max(0),
            Kind::Ident if angle == 0 && t.text == "for" => {
                return name_after(&hdr[i + 1..]).unwrap_or_else(|| "_".into());
            }
            _ => {}
        }
    }
    name_after(hdr).unwrap_or_else(|| "_".into())
}

/// Parameter count of a signature token list (everything between the fn
/// name and the body), `self` excluded. Closure parameter lists inside
/// default-argument expressions do not occur in this codebase.
fn sig_arity(sig: &[Tok]) -> usize {
    // Find the parameter group: first `(` at angle-depth 0.
    let mut angle = 0i32;
    let mut start = None;
    for (i, t) in sig.iter().enumerate() {
        match t.kind {
            Kind::Punct if t.is_punct('<') => angle += 1,
            Kind::Punct if t.is_punct('>') => angle = (angle - 1).max(0),
            Kind::Punct if t.is_punct('(') && angle == 0 => {
                start = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(start) = start else { return 0 };
    let mut depth = 0i32;
    let mut args = 0usize;
    let mut saw_any = false;
    let mut first_arg: Vec<&Tok> = Vec::new();
    for t in &sig[start..] {
        match t.kind {
            Kind::Punct if "([".contains(&t.text) => depth += 1,
            Kind::Punct if ")]".contains(&t.text) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Kind::Punct if t.is_punct(',') && depth == 1 => args += 1,
            Kind::LineComment | Kind::BlockComment => {}
            _ if depth >= 1 => {
                if args == 0 {
                    first_arg.push(t);
                }
                saw_any = true;
            }
            _ => {}
        }
    }
    if !saw_any {
        return 0;
    }
    let mut n = args + 1;
    // `self`, `&self`, `&mut self`, `mut self`, `self: Arc<Self>`.
    if first_arg
        .iter()
        .find(|t| t.kind == Kind::Ident && t.text != "mut")
        .is_some_and(|t| t.text == "self")
    {
        n -= 1;
    }
    n
}

#[allow(clippy::too_many_arguments)]
fn push_fn(
    table: &mut FnTable,
    mods: &[String],
    scopes: &[Scope],
    name: String,
    line: u32,
    sig_start: usize,
    is_pub: bool,
    sig: &[Tok],
    is_test: bool,
) -> usize {
    let mut qual: Vec<&str> = mods.iter().map(String::as_str).collect();
    let mut impl_type = None;
    for s in scopes {
        match s {
            Scope::Mod(m) => qual.push(m),
            Scope::Impl(ty) => {
                impl_type = Some(ty.clone());
            }
            _ => {}
        }
    }
    if let Some(ty) = &impl_type {
        qual.push(ty);
    }
    qual.push(&name);
    let info = FnInfo {
        qual: qual.join("::"),
        impl_type,
        sig_line: line,
        sig_start,
        end_line: line,
        body: 0..0,
        arity: sig_arity(sig),
        is_pub,
        is_test,
        nested: Vec::new(),
        name,
    };
    table.fns.push(info);
    table.fns.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse_src(path: &str, src: &str) -> FnTable {
        let toks = crate::lexer::lex(src);
        let ranges = crate::rules::test_ranges(&toks);
        parse(&PathBuf::from(path), &toks, &ranges)
    }

    #[test]
    fn free_fns_and_methods_get_qualified_names() {
        let t = parse_src(
            "crates/wh-vnl/src/table.rs",
            "pub fn free(a: u32, b: u32) -> u32 { a + b }\n\
             struct VnlTable;\n\
             impl VnlTable {\n    pub(crate) fn scan(&self, vn: u64) -> u64 { vn }\n}\n\
             impl Drop for VnlTable { fn drop(&mut self) {} }\n",
        );
        let quals: Vec<(&str, usize, bool)> = t
            .fns
            .iter()
            .map(|f| (f.qual.as_str(), f.arity, f.is_pub))
            .collect();
        assert_eq!(
            quals,
            vec![
                ("wh_vnl::table::free", 2, true),
                ("wh_vnl::table::VnlTable::scan", 1, false),
                ("wh_vnl::table::VnlTable::drop", 0, false),
            ]
        );
    }

    #[test]
    fn nested_fns_and_modules() {
        let t = parse_src(
            "crates/a/src/lib.rs",
            "mod inner {\n    pub fn outer() {\n        fn helper(x: u8) -> u8 { x }\n        helper(1);\n    }\n}\n",
        );
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].qual, "a::inner::outer");
        assert_eq!(t.fns[1].qual, "a::inner::helper");
        assert_eq!(t.fns[0].nested, vec![1]);
        // The helper's body tokens are inside the outer body range.
        assert!(t.fns[0].body.start < t.fns[1].body.start);
        assert!(t.fns[1].body.end <= t.fns[0].body.end);
    }

    #[test]
    fn bodiless_trait_methods_are_skipped_defaults_are_kept() {
        let t = parse_src(
            "crates/a/src/lib.rs",
            "trait Tr {\n    fn required(&self, x: u8);\n    fn provided(&self) -> u8 { 1 }\n}\n",
        );
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].qual, "a::Tr::provided");
    }

    #[test]
    fn generic_impls_resolve_the_self_type() {
        let t = parse_src(
            "crates/a/src/lib.rs",
            "impl<T: Clone> RetireList<T> {\n    fn locked(&self) {}\n}\n\
             impl<'a> Drop for EpochPin<'a> { fn drop(&mut self) {} }\n",
        );
        assert_eq!(t.fns[0].qual, "a::RetireList::locked");
        assert_eq!(t.fns[1].qual, "a::EpochPin::drop");
    }

    #[test]
    fn fn_pointer_types_and_closures_are_not_items() {
        let t = parse_src(
            "crates/a/src/lib.rs",
            "fn f(cb: fn(u8) -> u8) -> u8 {\n    let g = |x: u8| cb(x);\n    g(1)\n}\n",
        );
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "f");
        assert_eq!(t.fns[0].arity, 1);
    }

    #[test]
    fn test_fns_are_marked() {
        let t = parse_src(
            "crates/a/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn dead() {}\n}\n",
        );
        assert!(!t.fns[0].is_test);
        assert!(t.fns[1].is_test);
    }

    #[test]
    fn enclosing_prefers_innermost() {
        let t = parse_src(
            "crates/a/src/lib.rs",
            "fn outer() {\n    fn inner() {\n        let _x = 1;\n    }\n}\n",
        );
        assert_eq!(t.enclosing(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(t.enclosing(1).map(|f| f.name.as_str()), Some("outer"));
        assert!(t.enclosing(40).is_none());
    }

    #[test]
    fn file_module_paths() {
        for (p, want) in [
            ("crates/wh-vnl/src/lib.rs", "wh_vnl"),
            ("crates/wh-vnl/src/resilience/mod.rs", "wh_vnl::resilience"),
            (
                "crates/wh-vnl/src/resilience/retry.rs",
                "wh_vnl::resilience::retry",
            ),
            ("src/lib.rs", "warehouse_2vnl"),
        ] {
            let t = parse_src(p, "fn probe() {}\n");
            assert_eq!(t.fns[0].qual, format!("{want}::probe"), "{p}");
        }
    }
}
