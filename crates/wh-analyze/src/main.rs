//! CLI entry point: analyze a tree, print diagnostics, exit non-zero on
//! any finding. See the crate docs for the rule list.
//!
//! ```text
//! wh-analyze [root] [--format text|json|github] [--protocols] [--budget-ms N]
//! ```
//!
//! `--format github` emits workflow-command annotations for CI;
//! `--protocols` appends the atomic-protocol table; `--budget-ms` fails
//! the run (even a clean one) if analysis wall-clock exceeds the budget,
//! so CI notices when the analyzer itself regresses.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Github,
}

struct Args {
    root: PathBuf,
    format: Format,
    protocols: bool,
    budget_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        // Default: the workspace containing this crate (manifest dir is
        // `crates/wh-analyze`), so `cargo run -p wh-analyze` needs no args
        // from any working directory.
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        format: Format::Text,
        protocols: false,
        budget_ms: None,
    };
    let mut it = std::env::args().skip(1);
    let mut root_set = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("github") => Format::Github,
                    other => {
                        return Err(format!("--format expects text|json|github, got {other:?}"))
                    }
                };
            }
            "--protocols" => args.protocols = true,
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms expects a number")?;
                args.budget_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--budget-ms expects a number, got {v:?}"))?,
                );
            }
            _ if !a.starts_with('-') && !root_set => {
                args.root = PathBuf::from(a);
                root_set = true;
            }
            _ => return Err(format!("unknown argument {a:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wh-analyze: {e}");
            eprintln!(
                "usage: wh-analyze [root] [--format text|json|github] [--protocols] [--budget-ms N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let start = std::time::Instant::now();
    let report = wh_analyze::analyze_tree_report(&args.root);
    let elapsed_ms = start.elapsed().as_millis() as u64;

    match args.format {
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
        }
        Format::Json => print!("{}", wh_analyze::output::render_json(&report.diagnostics)),
        Format::Github => print!("{}", wh_analyze::output::render_github(&report.diagnostics)),
    }
    if args.protocols {
        print!("{}", wh_analyze::protocol::render_table(&report.protocols));
    }

    let mut code = ExitCode::SUCCESS;
    if report.diagnostics.is_empty() {
        // Stats go to stderr under json/github so stdout stays parseable.
        let stats = format!(
            "wh-analyze: clean ({} rules, {} fns, {} edges, {} protocols, {} ms)",
            wh_analyze::RULES.len(),
            report.functions,
            report.edges,
            report.protocols.len(),
            elapsed_ms
        );
        match args.format {
            Format::Text => println!("{stats}"),
            _ => eprintln!("{stats}"),
        }
    } else {
        eprintln!("wh-analyze: {} violation(s)", report.diagnostics.len());
        code = ExitCode::FAILURE;
    }
    if let Some(budget) = args.budget_ms {
        if elapsed_ms > budget {
            eprintln!("wh-analyze: wall-clock {elapsed_ms} ms exceeds budget {budget} ms");
            code = ExitCode::FAILURE;
        }
    }
    code
}
