//! CLI entry point: analyze a tree, print diagnostics, exit non-zero on
//! any finding. See the crate docs for the rule list.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args_os().nth(1).map_or_else(
        // Default: the workspace containing this crate (manifest dir is
        // `crates/wh-analyze`), so `cargo run -p wh-analyze` needs no args
        // from any working directory.
        || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    let diagnostics = wh_analyze::analyze_tree(&root);
    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!("wh-analyze: clean ({} rules)", wh_analyze::RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("wh-analyze: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}
