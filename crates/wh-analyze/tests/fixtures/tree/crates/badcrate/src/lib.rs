// Fixture: a library crate seeded with panic-path, ordering, and
// failpoint violations plus the suppression/exemption cases that must
// NOT fire. Line numbers are asserted by the integration test.

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap() // line 6: no-panic
}

pub fn panics() {
    panic!("fixture"); // line 10: no-panic
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // lint: allow(no-panic) — fixture: pragma directly above the call
    x.expect("suppressed")
}

pub fn suppressed_inline(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(no-panic) — fixture: same-line pragma
}

pub fn bare_load(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed) // line 23: ordering-comment (no marker word)
}

pub fn justified_load(a: &AtomicU64) -> u64 {
    // ordering: fixture Relaxed — monotone counter, guards no other data
    a.load(Ordering::Relaxed)
}

pub fn fires() -> Result<(), Error> {
    fail_point!("fixture.not.registered"); // line 32: failpoint-registry + failpoint-trace
    fail_point!("vnl.version.begin"); // line 33: failpoint-trace (registered but uncovered)
    Ok(())
}

pub fn covered_by_span() -> Result<(), Error> {
    let _ts = wh_obs::trace_span!("fixture.covered");
    fail_point!("vnl.version.begin"); // fine: span opened earlier in this fn
    Ok(())
}

pub fn covered_by_marker() -> Result<(), Error> {
    // trace: fixture — the caller's ambient txn span covers this leaf.
    fail_point!("vnl.version.begin"); // fine: adjacent trace marker
    Ok(())
}

pub fn cmp_is_fine(a: i32, b: i32) -> std::cmp::Ordering {
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_and_skip_ordering_comments() {
        let v: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| v.unwrap()).is_err());
        let a = AtomicU64::new(0);
        a.store(1, Ordering::SeqCst);
    }
}
