// Fixture: a library crate seeded with panic-path, ordering, and
// failpoint violations plus the suppression/exemption cases that must
// NOT fire. Line numbers are asserted by the integration test.

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap() // line 6: no-panic
}

pub fn panics() {
    panic!("fixture"); // line 10: no-panic
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // lint: allow(no-panic) — fixture: pragma directly above the call
    x.expect("suppressed")
}

pub fn suppressed_inline(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(no-panic) — fixture: same-line pragma
}

pub fn bare_load(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed) // line 23: ordering-comment (no marker word)
}

pub fn justified_load(a: &AtomicU64) -> u64 {
    // ordering: fixture — monotone counter, guards no other data
    a.load(Ordering::Relaxed)
}

pub fn fires() -> Result<(), Error> {
    fail_point!("fixture.not.registered"); // line 32: failpoint-registry
    fail_point!("vnl.version.begin"); // fine: registered name
    Ok(())
}

pub fn cmp_is_fine(a: i32, b: i32) -> std::cmp::Ordering {
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_and_skip_ordering_comments() {
        let v: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| v.unwrap()).is_err());
        let a = AtomicU64::new(0);
        a.store(1, Ordering::SeqCst);
    }
}
