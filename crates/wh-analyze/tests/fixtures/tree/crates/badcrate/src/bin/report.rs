// Fixture: binary target — panic paths and bare orderings are allowed.

fn main() {
    let v: Option<u32> = Some(1);
    println!("{}", v.unwrap());
    let a = AtomicU64::new(0);
    a.store(1, Ordering::SeqCst);
}
