// Fixture: root-package library with one violation per encapsulation rule.
// Line numbers are asserted by ../../fixture.rs — edit with care.

pub fn poke(core: &VersionCore) -> u64 {
    core.recovery_floor // line 5: version-encapsulation
}

pub fn method_ok(core: &VersionCore) -> u64 {
    core.recovery_floor() // fine: accessor call
}

pub fn latch_then_registry(table: &Table) {
    let _guard = write_latch(&table.page);
    let _snap = table.indexes_snapshot(); // line 14: lock-order
}

pub fn registry_then_latch(table: &Table) {
    let _snap = table.indexes_snapshot(); // fine: snapshot-first order
    let _guard = write_latch(&table.page);
}
