// Fixture: the interprocedural `latch-order` rule. The declared hierarchy
// is index-registry < lease-registry < pool-frames-latch <
// frame-state-latch < page-latch; acquiring a lower level while a higher
// one is held — directly or through any callee — is an inversion. Line
// numbers are asserted by ../../../../fixture.rs — edit with care.

pub fn direct_inversion(pool: &Pool) {
    let _s = write_latch(&pool.state);
    let _f = write_latch(&pool.frames); // line 9: latch-order (direct)
}

pub fn inversion_via_call(pool: &Pool) {
    let _s = write_latch(&pool.state);
    refill_frames(pool); // line 14: latch-order (callee acquires pool-frames)
}

fn refill_frames(pool: &Pool) {
    let _f = write_latch(&pool.frames);
}

pub fn declared_order_is_fine(pool: &Pool) {
    let _f = write_latch(&pool.frames);
    let _s = write_latch(&pool.state); // fine: low level acquired first
}

pub fn call_after_release_suppressed(pool: &Pool) {
    {
        let _s = write_latch(&pool.state);
    }
    // lint: allow(latch-order) — fixture: the state latch is scoped to the block above; the rule is lexically scope-blind by design
    refill_frames(pool);
}
