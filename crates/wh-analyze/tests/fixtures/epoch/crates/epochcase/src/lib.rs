// Fixture: the `epoch-discipline` rule, seeded with the PR-4 fence-bug
// shape — a public entry reaches a raw-access sink through a helper with
// no EpochPin or latch on the path, so a RID probed by the sink can be
// reclaimed and reused between probe and fetch. Line numbers are asserted
// by ../../../../fixture.rs — edit with care.

pub struct HeapFile;

impl HeapFile {
    /// Raw-access sink: resolves RIDs against reclaimable storage. Its own
    /// body is exempt — the obligation sits with every caller.
    pub fn scan(&self, visit: Visitor) -> Result<(), Error> {
        let _ = visit;
        Ok(())
    }
}

pub fn audit(heap: &HeapFile) -> Result<(), Error> {
    collect_rows(heap) // exposes collect_rows with no protection
}

fn collect_rows(heap: &HeapFile) -> Result<(), Error> {
    heap.scan(note_row) // line 23: epoch-discipline (unprotected path)
}

pub fn audit_pinned(heap: &HeapFile, epochs: &EpochRegistry) -> Result<(), Error> {
    let _pin = epochs.pin();
    heap.scan(note_row) // fine: epoch pinned earlier in this function
}

pub fn audit_latched(heap: &HeapFile, page: &RwLock<Page>) -> Result<(), Error> {
    let _g = read_latch(page);
    heap.scan(note_row) // fine: latch held earlier in this function
}

pub fn audit_suppressed(heap: &HeapFile) -> Result<(), Error> {
    // lint: allow(epoch-discipline) — fixture: the caller's contract re-validates every RID at fetch time
    heap.scan(note_row)
}
