// Fixture: the `atomic-protocol` rule — tag grammar, tag/code agreement,
// and workspace-wide Acquire⇔Release closure per (protocol, field). Line
// numbers are asserted by ../../../../fixture.rs — edit with care.

pub fn malformed_tag(a: &AtomicU64) -> u64 {
    // ordering: Relaxed — legacy free text with no protocol name
    a.load(Ordering::Relaxed) // line 7: atomic-protocol (malformed tag)
}

pub fn mismatched_order(b: &AtomicU64) -> u64 {
    // ordering: probe Acquire — the tag claims Acquire, the code says not
    b.load(Ordering::Relaxed) // line 12: atomic-protocol (tag/code mismatch)
}

pub fn unpaired_acquire(c: &AtomicU64) -> u64 {
    // ordering: lost-acq Acquire — pairs with a Release publish that is absent
    c.load(Ordering::Acquire) // line 17: atomic-protocol (open protocol side)
}

pub fn paired_reader(d: &AtomicU64) -> u64 {
    // ordering: flag Acquire — pairs with the Release store in paired_writer
    d.load(Ordering::Acquire) // fine: protocol closes
}

pub fn paired_writer(d: &AtomicU64) {
    // ordering: flag Release — publishes to paired_reader
    d.store(1, Ordering::Release); // fine: protocol closes
}

pub fn relaxed_on_paired(d: &AtomicU64) -> u64 {
    // ordering: flag Relaxed — a telemetry probe riding the paired field
    d.load(Ordering::Relaxed) // line 32: atomic-protocol (Relaxed on paired)
}

pub fn relaxed_counter(e: &AtomicU64) {
    // ordering: tick Relaxed — monotone counter, guards no other data
    e.fetch_add(1, Ordering::Relaxed); // fine: pure-Relaxed protocol
}

pub fn untagged_fence() {
    // ordering: seal Release — pairs with the Acquire fence in tagged_fence
    fence(Ordering::Release); // line 42: atomic-protocol (missing `fence`)
}

pub fn tagged_fence() {
    // ordering: seal Acquire fence — pairs with the Release fence above
    fence(Ordering::Acquire); // fine: fence keyword present
}
