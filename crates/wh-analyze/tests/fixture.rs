//! The analyzer against a seeded fixture tree (must flag every planted
//! violation at the right file:line, and nothing else) and against the
//! real workspace (must be clean — the CI `analyze` job's contract).

use std::path::{Path, PathBuf};
use wh_analyze::analyze_tree;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

/// Diagnostics for the fixture tree under `tests/fixtures/<name>`, with
/// the reverse failpoint-registry findings (attributed to the real
/// registry in `crates/wh-types`, and fired for every registered name
/// when the analyzed tree has no failpoint sites) filtered out.
fn tree_findings(name: &str) -> Vec<(String, u32, &'static str)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/{name}"));
    analyze_tree(&root)
        .iter()
        .filter(|d| !d.file.starts_with("crates/wh-types"))
        .map(|d| (d.file.display().to_string(), d.line, d.rule))
        .collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_tree_flags_each_seeded_violation() {
    let diagnostics = analyze_tree(&fixture_root());
    let found: Vec<(String, u32, &str)> = diagnostics
        .iter()
        // The reverse registry check fires for every registered-but-unused
        // name when analyzing a tree this small; asserted separately.
        .filter(|d| !d.file.starts_with("crates/wh-types"))
        .map(|d| (d.file.display().to_string(), d.line, d.rule))
        .collect();
    let expected = vec![
        ("crates/badcrate/src/lib.rs".to_string(), 6, "no-panic"),
        ("crates/badcrate/src/lib.rs".to_string(), 10, "no-panic"),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            23,
            "ordering-comment",
        ),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            32,
            "failpoint-registry",
        ),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            32,
            "failpoint-trace",
        ),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            33,
            "failpoint-trace",
        ),
        ("src/lib.rs".to_string(), 5, "version-encapsulation"),
        ("src/lib.rs".to_string(), 14, "lock-order"),
    ];
    assert_eq!(found, expected, "full diagnostics: {diagnostics:#?}");
}

#[test]
fn fixture_reverse_check_reports_unused_registered_names() {
    let diagnostics = analyze_tree(&fixture_root());
    let unused: Vec<&str> = diagnostics
        .iter()
        .filter(|d| d.file.starts_with("crates/wh-types"))
        .map(|d| d.rule)
        .collect();
    // The fixture marks exactly one registered name (vnl.version.begin);
    // every other registry entry is reported as site-less.
    assert_eq!(unused.len(), wh_types::fault::REGISTRY.len() - 1);
    assert!(unused.iter().all(|r| *r == "failpoint-registry"));
    assert!(!diagnostics
        .iter()
        .any(|d| d.message.contains("'vnl.version.begin'")));
}

#[test]
fn diagnostics_are_file_line_anchored_and_ordered() {
    let diagnostics = analyze_tree(&fixture_root());
    for d in &diagnostics {
        let line = d.to_string();
        let mut parts = line.splitn(3, ':');
        assert!(parts.next().is_some_and(|p| p.ends_with(".rs")), "{line}");
        assert!(
            parts.next().is_some_and(|p| p.parse::<u32>().is_ok()),
            "{line}"
        );
    }
    let mut sorted = diagnostics.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    assert_eq!(diagnostics, sorted, "output must be deterministic");
}

#[test]
fn latch_tree_flags_transitive_inversions_only() {
    let f = "crates/latchcase/src/lib.rs".to_string();
    assert_eq!(
        tree_findings("latch"),
        vec![
            // Direct inversion: frames acquired while state is held.
            (f.clone(), 9, "latch-order"),
            // Transitive inversion: the callee acquires pool-frames.
            (f, 14, "latch-order"),
            // declared_order_is_fine and the pragma-suppressed
            // scope-blind case must NOT fire.
        ]
    );
}

#[test]
fn epoch_tree_flags_the_pr4_fence_bug_shape() {
    assert_eq!(
        tree_findings("epoch"),
        vec![
            // audit → collect_rows → HeapFile::scan with no pin/latch on
            // the path — the PR-4 regression shape. The pinned, latched,
            // and pragma-suppressed entries must NOT fire.
            (
                "crates/epochcase/src/lib.rs".to_string(),
                23,
                "epoch-discipline"
            ),
        ]
    );
}

#[test]
fn protocol_tree_flags_tag_and_pairing_violations() {
    let f = "crates/protocase/src/lib.rs".to_string();
    assert_eq!(
        tree_findings("protocol"),
        vec![
            (f.clone(), 7, "atomic-protocol"),  // malformed tag
            (f.clone(), 12, "atomic-protocol"), // tag/code order mismatch
            (f.clone(), 17, "atomic-protocol"), // Acquire side never closes
            (f.clone(), 32, "atomic-protocol"), // Relaxed on a paired field
            (f, 42, "atomic-protocol"),         // fence missing `fence` tag
        ]
    );
}

#[test]
fn protocol_tree_table_reports_closure() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/protocol");
    let report = wh_analyze::analyze_tree_report(&root);
    let by_name = |n: &str| {
        report
            .protocols
            .iter()
            .find(|p| p.name == n)
            .unwrap_or_else(|| panic!("protocol {n} missing from table"))
    };
    assert!(by_name("flag").closed(), "acq/rel pair closes");
    assert!(by_name("tick").closed(), "pure-Relaxed is trivially closed");
    assert!(by_name("seal").closed(), "fence pair closes");
    assert!(!by_name("lost-acq").closed(), "unpaired Acquire stays open");
}

#[test]
fn real_workspace_is_clean() {
    let diagnostics = analyze_tree(&workspace_root());
    assert!(
        diagnostics.is_empty(),
        "wh-analyze found {} violation(s) in the workspace:\n{}",
        diagnostics.len(),
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
