//! The analyzer against a seeded fixture tree (must flag every planted
//! violation at the right file:line, and nothing else) and against the
//! real workspace (must be clean — the CI `analyze` job's contract).

use std::path::{Path, PathBuf};
use wh_analyze::analyze_tree;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn fixture_tree_flags_each_seeded_violation() {
    let diagnostics = analyze_tree(&fixture_root());
    let found: Vec<(String, u32, &str)> = diagnostics
        .iter()
        // The reverse registry check fires for every registered-but-unused
        // name when analyzing a tree this small; asserted separately.
        .filter(|d| !d.file.starts_with("crates/wh-types"))
        .map(|d| (d.file.display().to_string(), d.line, d.rule))
        .collect();
    let expected = vec![
        ("crates/badcrate/src/lib.rs".to_string(), 6, "no-panic"),
        ("crates/badcrate/src/lib.rs".to_string(), 10, "no-panic"),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            23,
            "ordering-comment",
        ),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            32,
            "failpoint-registry",
        ),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            32,
            "failpoint-trace",
        ),
        (
            "crates/badcrate/src/lib.rs".to_string(),
            33,
            "failpoint-trace",
        ),
        ("src/lib.rs".to_string(), 5, "version-encapsulation"),
        ("src/lib.rs".to_string(), 14, "lock-order"),
    ];
    assert_eq!(found, expected, "full diagnostics: {diagnostics:#?}");
}

#[test]
fn fixture_reverse_check_reports_unused_registered_names() {
    let diagnostics = analyze_tree(&fixture_root());
    let unused: Vec<&str> = diagnostics
        .iter()
        .filter(|d| d.file.starts_with("crates/wh-types"))
        .map(|d| d.rule)
        .collect();
    // The fixture marks exactly one registered name (vnl.version.begin);
    // every other registry entry is reported as site-less.
    assert_eq!(unused.len(), wh_types::fault::REGISTRY.len() - 1);
    assert!(unused.iter().all(|r| *r == "failpoint-registry"));
    assert!(!diagnostics
        .iter()
        .any(|d| d.message.contains("'vnl.version.begin'")));
}

#[test]
fn diagnostics_are_file_line_anchored_and_ordered() {
    let diagnostics = analyze_tree(&fixture_root());
    for d in &diagnostics {
        let line = d.to_string();
        let mut parts = line.splitn(3, ':');
        assert!(parts.next().is_some_and(|p| p.ends_with(".rs")), "{line}");
        assert!(
            parts.next().is_some_and(|p| p.parse::<u32>().is_ok()),
            "{line}"
        );
    }
    let mut sorted = diagnostics.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    assert_eq!(diagnostics, sorted, "output must be deterministic");
}

#[test]
fn real_workspace_is_clean() {
    let diagnostics = analyze_tree(&workspace_root());
    assert!(
        diagnostics.is_empty(),
        "wh-analyze found {} violation(s) in the workspace:\n{}",
        diagnostics.len(),
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
