//! The chaos soak with faults actually firing: update faults drive the
//! abort path, commit faults drive log-free recovery, GC sweeps, and the
//! adaptive/paced configuration must still produce zero incorrect reads.
//!
//! Compiled only with `--features failpoints`; the tier-1 suite runs the
//! fault-free smoke tests in `soak::tests` instead.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::Duration;
use wh_vnl::PacerPolicy;
use wh_workload::{run_soak, SoakConfig};

/// Failpoints (and their fired-counters) are process-global: soaks arming
/// faults must not overlap, or `clear_all` in one zeroes the counters the
/// other is diffing.
static SERIAL: Mutex<()> = Mutex::new(());

fn chaos_config(seed: u64) -> SoakConfig {
    SoakConfig {
        seed,
        keys: 16,
        n_physical: 4,
        initial_n: 2,
        adaptive: true,
        pacer: Some(PacerPolicy::BoundedDelay(Duration::from_millis(2))),
        readers: 3,
        reads_per_reader: 10,
        reader_hold: Duration::from_millis(1),
        commits: 30,
        maintenance_gap: Duration::from_micros(500),
        gc_interval: Some(Duration::from_micros(500)),
        fault_every: Some(7),
        abort_every: Some(5),
        ..SoakConfig::default()
    }
}

#[test]
fn chaos_soak_zero_wrong_answers_across_seeds() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for seed in [11, 42, 1997] {
        wh_types::fault::clear_all();
        let report = run_soak(&chaos_config(seed)).unwrap();
        assert!(
            report.is_correct(),
            "seed {seed}: oracle violated: {report:?}"
        );
        assert!(
            report.injected_faults > 0,
            "seed {seed}: no fault fired — chaos soak degenerated: {report:?}"
        );
        assert!(
            report.aborts > 0,
            "seed {seed}: update faults never exercised the abort path"
        );
        assert!(
            report.recoveries > 0,
            "seed {seed}: commit faults never exercised recovery"
        );
        // Every commit either succeeded or was repaired; none vanished.
        assert_eq!(
            report.commits + report.aborts + report.recoveries,
            30,
            "seed {seed}: {report:?}"
        );
        assert!(report.reads_ok > 0, "seed {seed}: readers starved");
    }
    wh_types::fault::clear_all();
}

/// An expire-storm configuration: bare 2VNL (no pacer, no adaptive
/// controller), readers holding sessions across ~10 maintenance gaps, so
/// expirations are frequent and the repair-vs-restart comparison has
/// something to compare. Faults still fire to churn the delta log through
/// recovery (`clear_deltas`), forcing repair to decline sometimes.
fn storm_config(seed: u64) -> SoakConfig {
    SoakConfig {
        seed,
        keys: 16,
        n_physical: 2,
        initial_n: 2,
        adaptive: false,
        pacer: None,
        readers: 3,
        reads_per_reader: 10,
        reader_hold: Duration::from_millis(2),
        commits: 40,
        maintenance_gap: Duration::from_micros(200),
        gc_interval: Some(Duration::from_micros(500)),
        fault_every: Some(9),
        abort_every: Some(6),
        retry: wh_vnl::RetryPolicy::default()
            .with_max_attempts(32)
            .with_backoff(Duration::from_micros(50), Duration::from_millis(2)),
        ..SoakConfig::default()
    }
}

/// The repair arm under an expire storm: expired readers are patched from
/// the retained maintenance deltas instead of restarting, and the oracle
/// must still see zero wrong answers — a repaired result is held to exactly
/// the same uniform-stamp standard as a rescanned one. Run head-to-head
/// against the restart-only arm on the same seeds.
#[test]
fn chaos_soak_repair_arm_zero_wrong_answers() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut total_repaired = 0;
    for seed in [11, 42, 1997] {
        wh_types::fault::clear_all();
        let restart_only = run_soak(&storm_config(seed)).unwrap();
        wh_types::fault::clear_all();
        let repair = run_soak(&SoakConfig {
            repair: true,
            ..storm_config(seed)
        })
        .unwrap();
        assert!(
            restart_only.is_correct(),
            "seed {seed}: restart arm violated the oracle: {restart_only:?}"
        );
        assert!(
            repair.is_correct(),
            "seed {seed}: repair arm violated the oracle: {repair:?}"
        );
        assert_eq!(
            restart_only.repaired, 0,
            "seed {seed}: restart-only arm must never repair"
        );
        total_repaired += repair.repaired;
    }
    wh_types::fault::clear_all();
    // Across three chaos seeds the repair path must actually engage; zero
    // repairs would mean the arm degenerated into restart-only.
    assert!(
        total_repaired > 0,
        "repair never engaged across any chaos seed"
    );
}

/// Expired readers stay within their retry budgets even while faults and
/// GC churn the table: exhaustion is allowed only as the typed terminal
/// error, and with a 16-attempt budget it should not occur at all here.
#[test]
fn chaos_soak_bounded_retries() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    wh_types::fault::clear_all();
    let report = run_soak(&SoakConfig {
        retry: wh_vnl::RetryPolicy::default()
            .with_max_attempts(16)
            .with_backoff(Duration::from_micros(50), Duration::from_millis(2)),
        ..chaos_config(7)
    })
    .unwrap();
    wh_types::fault::clear_all();
    assert!(report.is_correct(), "{report:?}");
    assert_eq!(report.retry_exhausted, 0, "{report:?}");
    // Attempts are bounded by ops × budget — the policy was respected.
    let ops = report.reads_ok + report.retry_exhausted;
    assert!(report.attempts <= ops * 16, "{report:?}");
}
