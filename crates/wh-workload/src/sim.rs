//! Discrete-event timeline simulation (virtual minutes).
//!
//! Substitution note (recorded in DESIGN.md): the paper's Figures 1–2 span
//! days of wall-clock time. We simulate the same schedules in virtual time,
//! which preserves every quantity of interest — availability fractions,
//! session-expiration counts, and the §5 guarantee `(n−1)(i+m) − m` — while
//! running in microseconds.

use wh_types::SplitMix64;

/// A periodic maintenance schedule: transaction `k` runs over
/// `[start + k·(m+i), start + k·(m+i) + m)`, so consecutive transactions are
/// separated by a gap of exactly `i` (the paper's `i` and `m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicSchedule {
    /// Start of the first maintenance transaction (virtual minutes).
    pub first_start: u64,
    /// Maintenance duration `m`.
    pub duration: u64,
    /// Gap `i` between commit and the next start.
    pub gap: u64,
}

impl PeriodicSchedule {
    /// Figure 2's policy: start 9am, commit 8am next day (23h maintenance,
    /// 1h gap), in minutes.
    pub fn figure_2() -> Self {
        PeriodicSchedule {
            first_start: 9 * 60,
            duration: 23 * 60,
            gap: 60,
        }
    }

    fn period(&self) -> u64 {
        self.duration + self.gap
    }

    /// Start time of maintenance transaction `k` (0-based).
    pub fn start_of(&self, k: u64) -> u64 {
        self.first_start + k * self.period()
    }

    /// Commit time of maintenance transaction `k`.
    pub fn commit_of(&self, k: u64) -> u64 {
        self.start_of(k) + self.duration
    }

    /// Whether a maintenance transaction is running at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        if t < self.first_start {
            return false;
        }
        (t - self.first_start) % self.period() < self.duration
    }

    /// Number of maintenance transactions committed by time `t` (inclusive).
    pub fn committed_by(&self, t: u64) -> u64 {
        if t < self.commit_of(0) {
            return 0;
        }
        (t - self.commit_of(0)) / self.period() + 1
    }

    /// The virtual time at which a session starting at `t` **expires** under
    /// nVNL with `n` versions, or `None` if it never does (n unbounded can't
    /// happen with a periodic schedule, so this always returns a time).
    ///
    /// A session expires at the first maintenance *start* by which `n − 1`
    /// maintenance transactions have committed since the session began
    /// (§2.2's version-lifecycle rule generalized by §5).
    pub fn expiry_time(&self, session_start: u64, n: u64) -> u64 {
        assert!(n >= 2);
        let base = self.committed_by(session_start);
        // The (base + n - 1)-th commit is the one that pushes the session's
        // version out; the session dies when the *next* transaction starts.
        let fatal_commit_index = base + (n - 1) - 1; // 0-based txn index
        let k = fatal_commit_index;
        // Next start after commit_of(k) is start_of(k + 1).
        self.start_of(k + 1).max(session_start)
    }

    /// Longest session length guaranteed never to expire, found empirically
    /// by minimizing `expiry(t) − t` over all start times in one period.
    pub fn empirical_guaranteed(&self, n: u64) -> u64 {
        let lo = self.first_start + self.period(); // steady state
        let hi = lo + self.period();
        (lo..hi)
            .map(|t| self.expiry_time(t, n) - t)
            .min()
            .expect("non-empty period") // lint: allow(no-panic) — invariant documented in the expect message
    }
}

/// Longest never-expiring session length for a `(gap, duration)` schedule
/// under `n` versions, via exhaustive simulation over start times.
pub fn empirical_guaranteed_length(gap: u64, duration: u64, n: u64) -> u64 {
    PeriodicSchedule {
        first_start: 0,
        duration,
        gap,
    }
    .empirical_guaranteed(n)
}

/// Outcome of simulating a population of reader sessions against a
/// maintenance schedule, under the two regimes of Figures 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityReport {
    /// Total simulated horizon (minutes).
    pub horizon: u64,
    /// Minutes during which maintenance ran.
    pub maintenance_minutes: u64,
    /// Sessions attempted.
    pub sessions: u64,
    /// Figure 1 regime: sessions rejected/delayed because the warehouse was
    /// closed for maintenance at their arrival, or cut short by the window.
    pub nightly_blocked: u64,
    /// Figure 1 regime: fraction of the horizon the warehouse was readable.
    pub nightly_availability: f64,
    /// Figure 2 regime (2VNL/nVNL): sessions that expired before finishing
    /// and had to be restarted.
    pub vnl_expired: u64,
    /// Figure 2 regime: warehouse readability (always 1.0 — the point).
    pub vnl_availability: f64,
}

/// Simulate `sessions` reader sessions with random arrivals and durations
/// against `schedule`, comparing the nightly-maintenance regime (Figure 1:
/// the warehouse is unreadable while maintenance runs) with the 2VNL/nVNL
/// regime (Figure 2: reads run through maintenance; sessions can expire).
pub fn availability_comparison(
    schedule: PeriodicSchedule,
    n: u64,
    horizon: u64,
    sessions: u64,
    max_session_len: u64,
    seed: u64,
) -> AvailabilityReport {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut nightly_blocked = 0;
    let mut vnl_expired = 0;
    for _ in 0..sessions {
        let start = rng.next_below(horizon);
        let len = rng.range_inclusive_u64(1, max_session_len);
        let end = start + len;
        // Figure 1 regime: blocked if any overlap with a maintenance window.
        let overlaps_window = (start..=end).any(|t| schedule.active_at(t));
        if overlaps_window {
            nightly_blocked += 1;
        }
        // Figure 2 regime: expired if the session outlives its guarantee.
        if schedule.expiry_time(start, n) < end {
            vnl_expired += 1;
        }
    }
    let maintenance_minutes = (0..horizon).filter(|&t| schedule.active_at(t)).count() as u64;
    AvailabilityReport {
        horizon,
        maintenance_minutes,
        sessions,
        nightly_blocked,
        nightly_availability: 1.0 - maintenance_minutes as f64 / horizon as f64,
        vnl_expired,
        vnl_availability: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_arithmetic() {
        let s = PeriodicSchedule {
            first_start: 10,
            duration: 5,
            gap: 3,
        };
        assert_eq!(s.start_of(0), 10);
        assert_eq!(s.commit_of(0), 15);
        assert_eq!(s.start_of(1), 18);
        assert!(!s.active_at(9));
        assert!(s.active_at(10));
        assert!(s.active_at(14));
        assert!(!s.active_at(15)); // gap
        assert!(s.active_at(18));
        assert_eq!(s.committed_by(14), 0);
        assert_eq!(s.committed_by(15), 1);
        assert_eq!(s.committed_by(22), 1);
        assert_eq!(s.committed_by(23), 2);
    }

    #[test]
    fn two_vnl_guarantee_matches_formula() {
        // §5: 2VNL guarantees sessions of length up to i never expire.
        for (i, m) in [(3u64, 5u64), (10, 7), (60, 1380)] {
            let guaranteed = empirical_guaranteed_length(i, m, 2);
            let formula = i; // (n-1)(i+m) - m with n=2
            assert!(
                guaranteed >= formula && guaranteed <= formula + 1,
                "i={i} m={m}: empirical {guaranteed} vs formula {formula}"
            );
        }
    }

    #[test]
    fn n_vnl_guarantee_matches_formula() {
        for n in 2..=5u64 {
            for (i, m) in [(4u64, 6u64), (10, 3)] {
                let guaranteed = empirical_guaranteed_length(i, m, n);
                let formula = (n - 1) * (i + m) - m;
                assert!(
                    guaranteed >= formula && guaranteed <= formula + 1,
                    "n={n} i={i} m={m}: empirical {guaranteed} vs formula {formula}"
                );
            }
        }
    }

    #[test]
    fn worst_case_start_is_just_before_commit() {
        // A session starting right before a commit expires soonest (§2.1's
        // "sessions beginning just before 8am expire very quickly").
        let s = PeriodicSchedule {
            first_start: 0,
            duration: 23 * 60,
            gap: 60,
        };
        let commit = s.commit_of(2);
        let worst = s.expiry_time(commit - 1, 2) - (commit - 1);
        let best = s.expiry_time(commit + 1, 2) - (commit + 1);
        assert!(worst < best);
        // Figure 2's numbers: worst ≈ 1 hour (the gap), best ≈ a full cycle.
        assert!(worst <= 61);
        assert!(best >= 23 * 60);
    }

    #[test]
    fn increasing_n_extends_guarantees() {
        let g2 = empirical_guaranteed_length(10, 30, 2);
        let g3 = empirical_guaranteed_length(10, 30, 3);
        let g4 = empirical_guaranteed_length(10, 30, 4);
        assert!(g2 < g3 && g3 < g4);
    }

    #[test]
    fn availability_comparison_shapes() {
        // Figure 2's 23h-maintenance / 1h-gap policy over a simulated month.
        let report = availability_comparison(
            PeriodicSchedule::figure_2(),
            2,
            30 * 1440,
            2_000,
            4 * 60, // sessions up to 4 hours
            7,
        );
        // Nightly regime: maintenance occupies ~96% of the clock, so nearly
        // every session overlaps a window.
        assert!(report.nightly_availability < 0.1);
        assert!(report.nightly_blocked > report.sessions * 9 / 10);
        // 2VNL regime: warehouse always readable; only sessions that
        // straddle a commit+next-start expire.
        assert_eq!(report.vnl_availability, 1.0);
        assert!(report.vnl_expired < report.sessions / 2);
        // And strictly better than blocking.
        assert!(report.vnl_expired < report.nightly_blocked);
    }

    #[test]
    fn availability_deterministic_per_seed() {
        let a = availability_comparison(PeriodicSchedule::figure_2(), 2, 1440, 100, 60, 1);
        let b = availability_comparison(PeriodicSchedule::figure_2(), 2, 1440, 100, 60, 1);
        assert_eq!(a, b);
    }
}
