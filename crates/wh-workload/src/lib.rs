//! Workloads and timeline simulation for the `warehouse-2vnl` experiments.
//!
//! * [`sales`] — a deterministic synthetic sporting-goods sales feed shaped
//!   after the paper's running example: skewed city/product-line
//!   distributions, daily insert batches with occasional corrections
//!   (source deletions).
//! * [`sim`] — a discrete-event simulator of maintenance schedules and
//!   reader sessions in *virtual* time. It reproduces the Figure 1
//!   (nightly) vs Figure 2 (2VNL round-the-clock) availability comparison
//!   and validates §5's never-expire guarantee `(n−1)(i+m) − m` against
//!   exhaustive simulation (experiments E1, E2, E9).
//! * [`soak`] — a chaos soak in *real* time: concurrent retried readers,
//!   a paced/adaptive maintenance loop, GC, and injected faults against a
//!   live [`wh_vnl::VnlTable`], with a ground-truth oracle (experiment
//!   E21).

pub mod sales;
pub mod sim;
pub mod soak;

pub use sales::{SalesConfig, SalesGenerator};
pub use sim::{
    availability_comparison, empirical_guaranteed_length, AvailabilityReport, PeriodicSchedule,
};
pub use soak::{run_soak, SoakConfig, SoakReport};
pub use wh_types::SplitMix64;
