//! Chaos soak: concurrent readers, maintenance, GC, and injected faults
//! against one nVNL table, with a ground-truth oracle.
//!
//! The harness drives the full resilience stack end to end — leased,
//! retry-wrapped readers ([`wh_vnl::RetryPolicy`]) against a maintenance
//! loop that optionally commits through a [`wh_vnl::MaintenancePacer`] and
//! feeds an [`wh_vnl::AdaptiveN`] controller, while a GC collector sweeps
//! and failpoints (when the `failpoints` feature is compiled in) knock over
//! updates and commits.
//!
//! **The oracle.** Every maintenance transaction `g` sets *every* value to
//! the stamp `g`, so any single-version read must return `keys` rows all
//! carrying one stamp from the committed set. Each reader additionally
//! scans twice inside one session and requires identical results —
//! serializability made directly observable. Any deviation is counted as a
//! wrong answer; a soak passes only with zero.
//!
//! Every thread runs a *fixed* iteration count: no thread gates on a
//! sibling's progress, so the soak terminates even on heavily
//! oversubscribed CI runners.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use wh_types::fault::{self, FaultAction};
use wh_types::{Column, DataType, Row, Schema, SplitMix64, Value};
use wh_vnl::{
    gc::Collector, recover, AdaptiveN, MaintenancePacer, PacerPolicy, RetryPolicy, VnlError,
    VnlTable,
};

/// Failpoint armed before a doomed UPDATE (exercises the abort path).
const UPDATE_FAULT: &str = "vnl.txn.update.save_pre";
/// Failpoint armed before a doomed commit (exercises log-free recovery).
const COMMIT_FAULT: &str = "vnl.version.publish_commit";

/// Everything one soak run needs to be reproducible.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for reader jitter and retry backoff (same seed → same run).
    pub seed: u64,
    /// Rows in the `kv` table.
    pub keys: i64,
    /// Physical version slots provisioned (`n` of nVNL).
    pub n_physical: usize,
    /// Effective window at start (clamped to `[2, n_physical]`).
    pub initial_n: usize,
    /// Run the [`AdaptiveN`] controller over the maintenance loop.
    pub adaptive: bool,
    /// Commit through a [`MaintenancePacer`] with this policy (`None` =
    /// plain `commit()`).
    pub pacer: Option<PacerPolicy>,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Read operations per reader thread (each = one retried double-scan).
    pub reads_per_reader: u32,
    /// How long a reader holds its session between the two scans — spanning
    /// several maintenance gaps makes expiration pressure real.
    pub reader_hold: Duration,
    /// Maintenance transactions to commit.
    pub commits: u32,
    /// Sleep between maintenance transactions (§5's gap `i`).
    pub maintenance_gap: Duration,
    /// Retry discipline for every reader operation.
    pub retry: RetryPolicy,
    /// Repair-first readers: an expired scan is patched from the retained
    /// maintenance deltas ([`wh_vnl::RepairEngine`]) and only falls back to
    /// a restart when repair declines. The oracle still applies in full to
    /// repaired results — a soak passes only with zero wrong answers.
    pub repair: bool,
    /// Spawn a GC collector sweeping at this interval.
    pub gc_interval: Option<Duration>,
    /// Arm [`COMMIT_FAULT`] before every k-th commit (fires only when the
    /// `failpoints` feature is compiled in).
    pub fault_every: Option<u32>,
    /// Arm [`UPDATE_FAULT`] before every k-th update.
    pub abort_every: Option<u32>,
}

impl Default for SoakConfig {
    /// A short, tier-1-safe soak: no faults armed, small table, ~50ms.
    fn default() -> Self {
        SoakConfig {
            seed: 0x50a4_2e76,
            keys: 16,
            n_physical: 2,
            initial_n: 2,
            adaptive: false,
            pacer: None,
            readers: 2,
            reads_per_reader: 8,
            reader_hold: Duration::from_micros(800),
            commits: 24,
            maintenance_gap: Duration::from_micros(400),
            retry: RetryPolicy::default().with_max_attempts(16),
            repair: false,
            gc_interval: None,
            fault_every: None,
            abort_every: None,
        }
    }
}

/// What a soak run observed. A correct run has `wrong_answers == 0` and
/// `unexpected_errors == 0`; everything else is degradation accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoakReport {
    /// Maintenance transactions committed.
    pub commits: u64,
    /// Maintenance transactions aborted by an injected update fault.
    pub aborts: u64,
    /// Faults actually injected (0 unless built with `failpoints`).
    pub injected_faults: u64,
    /// Commit-time faults repaired via log-free [`recover`].
    pub recoveries: u64,
    /// Reader operations that returned a verified-correct result.
    pub reads_ok: u64,
    /// Reader operations whose result violated the oracle. Must be zero.
    pub wrong_answers: u64,
    /// Reader operations that failed with anything other than the typed
    /// expiration/exhaustion errors. Must be zero.
    pub unexpected_errors: u64,
    /// Reader operations that exhausted their retry budget (typed,
    /// surfaced as [`VnlError::RetryExhausted`]).
    pub retry_exhausted: u64,
    /// Total attempts across all reader operations (≥ one per operation).
    pub attempts: u64,
    /// Session expirations readers observed (and retried through).
    pub expirations: u64,
    /// Expired reader operations fixed up from the retained deltas instead
    /// of restarting (0 unless the repair arm is on).
    pub repaired: u64,
    /// Expired reader operations that fell back to a restart (repair off or
    /// declined).
    pub restarted: u64,
    /// Rows buffered by attempts that then expired — work the cursor-restart
    /// protocol discarded. Repair exists to shrink this.
    pub wasted_rows: u64,
    /// Commits the pacer delayed.
    pub paced_commits: u64,
    /// Leases the pacer revoked (`ExpireOldest`).
    pub leases_revoked: u64,
    /// At-risk leases that commits proceeded through anyway.
    pub expired_through: u64,
    /// Effective-window transitions the adaptive controller made.
    pub adaptive_transitions: u64,
    /// The table's effective `n` when the soak ended.
    pub final_effective_n: usize,
    /// Tuples the GC collector reclaimed (0 without `gc_interval`).
    pub gc_reclaimed: u64,
}

impl SoakReport {
    /// Expirations per reader operation — the headline degradation metric
    /// E21 compares across configurations.
    pub fn expiration_rate(&self) -> f64 {
        let ops =
            self.reads_ok + self.wrong_answers + self.unexpected_errors + self.retry_exhausted;
        if ops == 0 {
            0.0
        } else {
            self.expirations as f64 / ops as f64
        }
    }

    /// Zero incorrect results and no untyped failures.
    pub fn is_correct(&self) -> bool {
        self.wrong_answers == 0 && self.unexpected_errors == 0
    }
}

fn kv_schema() -> Schema {
    Schema::with_key_names(
        vec![
            Column::new("key", DataType::Int64),
            Column::updatable("value", DataType::Int64),
        ],
        &["key"],
    )
    .expect("kv schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
}

fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run one soak. Deterministic given the config (modulo thread scheduling,
/// which the oracle is immune to by construction).
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, VnlError> {
    let table = Arc::new(VnlTable::create_named("kv", kv_schema(), cfg.n_physical)?);
    let rows: Vec<Row> = (0..cfg.keys)
        .map(|k| vec![Value::from(k), Value::from(0)])
        .collect();
    table.load_initial(&rows)?;
    table.set_effective_n(cfg.initial_n);

    // Ground truth: stamps that *may* be visible. A stamp enters before its
    // commit publishes (readers can never see it earlier) and leaves only
    // if the commit faulted and recovery rolled it back (readers can never
    // have seen it at all — the fault fires before `currentVN` flips).
    let committed: Arc<Mutex<BTreeSet<i64>>> = Arc::new(Mutex::new(BTreeSet::from([0])));

    let fault_fired_before = fault::fired(UPDATE_FAULT) + fault::fired(COMMIT_FAULT);
    let collector = cfg
        .gc_interval
        .map(|iv| Collector::spawn(Arc::clone(&table), iv));

    let reads_ok = AtomicU64::new(0);
    let wrong_answers = AtomicU64::new(0);
    let unexpected_errors = AtomicU64::new(0);
    let retry_exhausted = AtomicU64::new(0);
    let attempts = AtomicU64::new(0);
    let expirations = AtomicU64::new(0);
    let repaired = AtomicU64::new(0);
    let restarted = AtomicU64::new(0);
    let wasted_rows = AtomicU64::new(0);

    let mut report = SoakReport::default();

    std::thread::scope(|s| {
        // ---- maintenance: the single writer ------------------------------
        let maintenance = {
            let table = Arc::clone(&table);
            let committed = Arc::clone(&committed);
            let pacer = cfg.pacer.map(MaintenancePacer::new);
            let mut adaptive = cfg
                .adaptive
                .then(|| AdaptiveN::new(2, cfg.n_physical).with_window(4));
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut r = SoakReport::default();
                for g in 1..=i64::from(cfg.commits) {
                    let armed_abort = cfg
                        .abort_every
                        .is_some_and(|k| k > 0 && g % i64::from(k) == 0);
                    if armed_abort {
                        fault::configure(UPDATE_FAULT, FaultAction::ErrorTimes(1));
                    }
                    let Ok(txn) = table.begin_maintenance() else {
                        // A prior fault left the flag stuck: repair and
                        // move on to the next transaction.
                        if recover(&table).is_ok() {
                            r.recoveries += 1;
                        }
                        continue;
                    };
                    let update = format!("UPDATE kv SET value = {g}");
                    if txn.execute_sql(&update, &wh_sql::Params::new()).is_err() {
                        let _ = txn.abort();
                        r.aborts += 1;
                        continue;
                    }
                    if armed_abort {
                        // The armed fault did not fire (feature off): the
                        // update went through and will commit below.
                        fault::configure(UPDATE_FAULT, FaultAction::Off);
                    }
                    if cfg
                        .fault_every
                        .is_some_and(|k| k > 0 && g % i64::from(k) == 0)
                    {
                        fault::configure(COMMIT_FAULT, FaultAction::ErrorTimes(1));
                    }
                    locked(&committed).insert(g);
                    let outcome = match &pacer {
                        Some(p) => p.commit(txn).map(Some),
                        None => txn.commit().map(|()| None),
                    };
                    match outcome {
                        Ok(pace) => {
                            r.commits += 1;
                            if let Some(pace) = pace {
                                if !pace.waited.is_zero() {
                                    r.paced_commits += 1;
                                }
                                r.leases_revoked += pace.revoked as u64;
                                r.expired_through += pace.expired_through as u64;
                            }
                            if let Some(ctl) = adaptive.as_mut() {
                                ctl.observe_commit(&table);
                                r.adaptive_transitions = ctl.transitions();
                            }
                        }
                        Err(_) => {
                            // The stamp never became visible; retract it
                            // and rebuild the consistent pre-txn state.
                            locked(&committed).remove(&g);
                            if recover(&table).is_ok() {
                                r.recoveries += 1;
                            }
                        }
                    }
                    std::thread::sleep(cfg.maintenance_gap);
                }
                r
            })
        };

        // ---- readers: leased, retried, oracle-checked --------------------
        for reader in 0..cfg.readers as u64 {
            let table = Arc::clone(&table);
            let committed = Arc::clone(&committed);
            let retry = cfg
                .retry
                .clone()
                .with_seed(cfg.seed ^ (reader.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let (reads_ok, wrong, unexpected, exhausted, att, exp, rep, rst, wst) = (
                &reads_ok,
                &wrong_answers,
                &unexpected_errors,
                &retry_exhausted,
                &attempts,
                &expirations,
                &repaired,
                &restarted,
                &wasted_rows,
            );
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ reader);
                let engine = wh_vnl::RepairEngine::new(&table);
                for _ in 0..cfg.reads_per_reader {
                    // Two scans in one session, held apart long enough to
                    // span maintenance commits. The repaired fallback yields
                    // one row set (`second: None`): the serializability pair
                    // never existed, but the uniform-stamp oracle applies in
                    // full.
                    let wasted = std::cell::Cell::new(0u64);
                    let double_scan = |session: &wh_vnl::ReaderSession<'_>| {
                        let mut first = Vec::with_capacity(cfg.keys as usize);
                        if let Err(e) = session.scan_with(|row| {
                            first.push(row);
                            Ok(())
                        }) {
                            wasted.set(wasted.get() + first.len() as u64);
                            return Err(e);
                        }
                        std::thread::sleep(cfg.reader_hold);
                        match session.scan() {
                            Ok(second) => Ok((first, Some(second))),
                            Err(e) => {
                                wasted.set(wasted.get() + first.len() as u64);
                                Err(e)
                            }
                        }
                    };
                    let (res, mut stats) = if cfg.repair {
                        retry.run_repaired(&table, double_scan, |svn| {
                            engine
                                .scan_at_current(svn)
                                .ok()
                                .flatten()
                                .map(|r| (r.rows, None))
                        })
                    } else {
                        retry.run_with_stats(&table, double_scan)
                    };
                    stats.wasted_rows += wasted.get();
                    att.fetch_add(u64::from(stats.attempts), Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                    exp.fetch_add(u64::from(stats.expirations), Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                    rep.fetch_add(u64::from(stats.repaired), Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                    rst.fetch_add(u64::from(stats.restarted), Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                    wst.fetch_add(stats.wasted_rows, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                    match res {
                        Ok((first, second)) => {
                            let uniform = first.len() == cfg.keys as usize
                                && first.windows(2).all(|w| w[0][1] == w[1][1]);
                            let stamp_ok = first.first().is_some_and(|row| {
                                row[1]
                                    .as_int()
                                    .is_some_and(|v| locked(&committed).contains(&v))
                            });
                            let serial_ok = match &second {
                                Some(s) => *s == first,
                                None => true,
                            };
                            if uniform && stamp_ok && serial_ok {
                                reads_ok.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                            } else {
                                wrong.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                                                                       // A wrong answer is the worst anomaly this
                                                                       // harness can see — dump the ring while the
                                                                       // guilty interleaving is still in it.
                                wh_obs::recorder::trigger(
                                    "oracle_violation",
                                    &format!(
                                        "soak reader {reader} saw a non-uniform or torn \
                                         snapshot (uniform={uniform}, stamp_ok={stamp_ok})"
                                    ),
                                );
                            }
                        }
                        Err(VnlError::RetryExhausted { .. }) => {
                            exhausted.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                        }
                        Err(_) => {
                            unexpected.fetch_add(1, Ordering::Relaxed); // ordering: stat-counter Relaxed — independent event counter; read only for reporting
                        }
                    }
                    if rng.chance(1, 3) {
                        std::thread::sleep(cfg.maintenance_gap / 2);
                    }
                }
            });
        }

        report = maintenance.join().expect("maintenance thread"); // lint: allow(no-panic) — re-raises a maintenance-thread panic on the driver
    });

    fault::configure(UPDATE_FAULT, FaultAction::Off);
    fault::configure(COMMIT_FAULT, FaultAction::Off);

    report.injected_faults = (fault::fired(UPDATE_FAULT) + fault::fired(COMMIT_FAULT))
        .saturating_sub(fault_fired_before);
    report.reads_ok = reads_ok.into_inner();
    report.wrong_answers = wrong_answers.into_inner();
    report.unexpected_errors = unexpected_errors.into_inner();
    report.retry_exhausted = retry_exhausted.into_inner();
    report.attempts = attempts.into_inner();
    report.expirations = expirations.into_inner();
    report.repaired = repaired.into_inner();
    report.restarted = restarted.into_inner();
    report.wasted_rows = wasted_rows.into_inner();
    report.final_effective_n = table.effective_n();
    if let Some(c) = collector {
        report.gc_reclaimed = c.stop();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_soak_is_clean() {
        let report = run_soak(&SoakConfig::default()).unwrap();
        assert!(report.is_correct(), "oracle violated: {report:?}");
        assert_eq!(report.commits, 24);
        assert!(report.reads_ok > 0);
        assert!(report.attempts >= report.reads_ok);
    }

    #[test]
    fn adaptive_pacer_soak_is_clean_and_reduces_expirations() {
        let fixed = run_soak(&SoakConfig {
            seed: 7,
            ..SoakConfig::default()
        })
        .unwrap();
        let resilient = run_soak(&SoakConfig {
            seed: 7,
            n_physical: 4,
            adaptive: true,
            pacer: Some(PacerPolicy::BoundedDelay(Duration::from_millis(2))),
            ..SoakConfig::default()
        })
        .unwrap();
        assert!(fixed.is_correct(), "{fixed:?}");
        assert!(resilient.is_correct(), "{resilient:?}");
        // The resilient configuration must never expire *more*; under this
        // contention profile it reliably expires less or equal.
        assert!(
            resilient.expiration_rate() <= fixed.expiration_rate(),
            "adaptive+paced rate {} vs fixed {}",
            resilient.expiration_rate(),
            fixed.expiration_rate()
        );
    }

    #[test]
    fn repair_arm_soak_is_clean() {
        let report = run_soak(&SoakConfig {
            repair: true,
            ..SoakConfig::default()
        })
        .unwrap();
        assert!(report.is_correct(), "oracle violated: {report:?}");
        // Every expiration was either repaired or restarted — the
        // repair-first path never swallows one (exhaustion aside).
        if report.retry_exhausted == 0 {
            assert_eq!(
                report.repaired + report.restarted,
                report.expirations,
                "{report:?}"
            );
        }
    }

    #[test]
    fn gc_collector_runs_inside_the_soak() {
        let report = run_soak(&SoakConfig {
            gc_interval: Some(Duration::from_micros(500)),
            ..SoakConfig::default()
        })
        .unwrap();
        assert!(report.is_correct(), "{report:?}");
    }
}
