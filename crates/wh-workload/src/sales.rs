//! Synthetic sporting-goods sales feed (the paper's running example, at
//! scale).

use wh_types::{Column, DataType, Date, Row, Schema, SplitMix64, Value};
use wh_view::SourceDelta;

/// Configuration of the synthetic feed.
#[derive(Debug, Clone)]
pub struct SalesConfig {
    /// Number of distinct cities (skewed Zipf-ish popularity).
    pub cities: usize,
    /// Number of product lines.
    pub product_lines: usize,
    /// Individual sales generated per day.
    pub sales_per_day: usize,
    /// Probability (per mille) that a day's batch also retracts an earlier
    /// sale — a source *deletion*, exercising summary-table deletes.
    pub correction_per_mille: u32,
    /// RNG seed (fully deterministic output).
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            cities: 50,
            product_lines: 8,
            sales_per_day: 500,
            correction_per_mille: 20,
            seed: 0x5157_1997, // SIGMOD '97
        }
    }
}

/// Deterministic generator of daily sales batches.
pub struct SalesGenerator {
    config: SalesConfig,
    rng: SplitMix64,
    day: Date,
    /// Recent sales eligible for later correction (bounded buffer).
    recent: Vec<Row>,
}

const STATES: &[&str] = &["CA", "NY", "TX", "WA", "IL"];
const PRODUCT_LINES: &[&str] = &[
    "golf equip",
    "racquetball",
    "rollerblades",
    "swimming",
    "camping",
    "cycling",
    "running",
    "climbing",
    "skiing",
    "tennis",
];

impl SalesGenerator {
    /// Create a generator starting at `first_day`.
    pub fn new(config: SalesConfig, first_day: Date) -> Self {
        let rng = SplitMix64::seed_from_u64(config.seed);
        SalesGenerator {
            config,
            rng,
            day: first_day,
            recent: Vec::new(),
        }
    }

    /// The source-relation schema: one row per individual sale.
    pub fn source_schema() -> Schema {
        Schema::new(vec![
            Column::new("city", DataType::Char(20)),
            Column::new("state", DataType::Char(2)),
            Column::new("product_line", DataType::Char(12)),
            Column::new("date", DataType::Date),
            Column::new("amount", DataType::Int32),
        ])
        .expect("source schema is valid") // lint: allow(no-panic) — static schema literal, valid by construction
    }

    fn city(&mut self) -> (String, &'static str) {
        // Zipf-ish skew: city popularity ~ 1/(rank+1).
        let n = self.config.cities;
        let weights: f64 = (0..n).map(|i| 1.0 / (i + 1) as f64).sum();
        let mut x: f64 = self.rng.float_below(weights);
        let mut idx = 0;
        for i in 0..n {
            let w = 1.0 / (i + 1) as f64;
            if x < w {
                idx = i;
                break;
            }
            x -= w;
        }
        (format!("city{idx:03}"), STATES[idx % STATES.len()])
    }

    fn sale(&mut self) -> Row {
        let (city, state) = self.city();
        let pl = PRODUCT_LINES[self
            .rng
            .index(self.config.product_lines.min(PRODUCT_LINES.len()))];
        let amount: i64 = self.rng.range_i64(5, 500);
        vec![
            Value::from(city),
            Value::from(state),
            Value::from(pl),
            Value::from(self.day),
            Value::from(amount),
        ]
    }

    /// Generate the next day's batch of source deltas (mostly inserts, a few
    /// corrections), advancing the generator's calendar.
    pub fn next_day(&mut self) -> Vec<SourceDelta> {
        let mut batch = Vec::with_capacity(self.config.sales_per_day + 4);
        for _ in 0..self.config.sales_per_day {
            let row = self.sale();
            // Keep a bounded sample of recent sales for corrections.
            if self.recent.len() < 1024 {
                self.recent.push(row.clone());
            }
            batch.push(SourceDelta::Insert(row));
        }
        // Corrections: retract previously-recorded sales.
        let corrections =
            (self.config.sales_per_day as u32 * self.config.correction_per_mille / 1000) as usize;
        for _ in 0..corrections.min(self.recent.len()) {
            let i = self.rng.index(self.recent.len());
            let row = self.recent.swap_remove(i);
            batch.push(SourceDelta::Delete(row));
        }
        self.day = self.day.succ();
        batch
    }

    /// Generate `days` consecutive daily batches.
    pub fn days(&mut self, days: usize) -> Vec<Vec<SourceDelta>> {
        (0..days).map(|_| self.next_day()).collect()
    }

    /// The next day this generator will produce.
    pub fn current_day(&self) -> Date {
        self.day
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SalesConfig {
        SalesConfig {
            cities: 10,
            product_lines: 4,
            sales_per_day: 100,
            correction_per_mille: 50,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SalesGenerator::new(config(), Date::ymd(1996, 10, 14));
        let mut b = SalesGenerator::new(config(), Date::ymd(1996, 10, 14));
        assert_eq!(a.next_day(), b.next_day());
        assert_eq!(a.next_day(), b.next_day());
    }

    #[test]
    fn batch_shape() {
        let mut g = SalesGenerator::new(config(), Date::ymd(1996, 10, 14));
        let batch = g.next_day();
        let inserts = batch
            .iter()
            .filter(|d| matches!(d, SourceDelta::Insert(_)))
            .count();
        let deletes = batch.len() - inserts;
        assert_eq!(inserts, 100);
        assert_eq!(deletes, 5); // 50 per mille of 100
    }

    #[test]
    fn corrections_retract_real_sales() {
        let mut g = SalesGenerator::new(config(), Date::ymd(1996, 10, 14));
        let batch = g.next_day();
        let inserted: Vec<&Row> = batch
            .iter()
            .filter_map(|d| match d {
                SourceDelta::Insert(r) => Some(r),
                _ => None,
            })
            .collect();
        for d in &batch {
            if let SourceDelta::Delete(r) = d {
                assert!(inserted.contains(&r), "correction must match an insert");
            }
        }
    }

    #[test]
    fn calendar_advances() {
        let mut g = SalesGenerator::new(config(), Date::ymd(1996, 10, 14));
        let batches = g.days(3);
        assert_eq!(batches.len(), 3);
        assert_eq!(g.current_day(), Date::ymd(1996, 10, 17));
        // Each batch is dated with its own day.
        if let SourceDelta::Insert(r) = &batches[2][0] {
            assert_eq!(r[3], Value::from(Date::ymd(1996, 10, 16)));
        } else {
            panic!("first delta should be an insert");
        }
    }

    #[test]
    fn rows_validate_against_source_schema() {
        let mut g = SalesGenerator::new(config(), Date::ymd(1996, 10, 14));
        let schema = SalesGenerator::source_schema();
        for d in g.next_day() {
            let (SourceDelta::Insert(r) | SourceDelta::Delete(r)) = d;
            schema.validate(&r).unwrap();
        }
    }

    #[test]
    fn skew_favors_low_ranked_cities() {
        let mut g = SalesGenerator::new(
            SalesConfig {
                sales_per_day: 2000,
                ..config()
            },
            Date::ymd(1996, 10, 14),
        );
        let batch = g.next_day();
        let count_city0 = batch
            .iter()
            .filter(|d| matches!(d, SourceDelta::Insert(r) if r[0] == Value::from("city000")))
            .count();
        let count_city9 = batch
            .iter()
            .filter(|d| matches!(d, SourceDelta::Insert(r) if r[0] == Value::from("city009")))
            .count();
        assert!(
            count_city0 > count_city9 * 2,
            "{count_city0} vs {count_city9}"
        );
    }
}
