//! Head-to-head run of the §6 lineup — strict 2PL, 2V2PL, MV2PL, and 2VNL —
//! on the same one-writer/many-readers warehouse workload, printing the
//! blocking, throughput, I/O, and storage profile of each.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use warehouse_2vnl::bench::{all_schemes, mixed_run, print_table};

fn main() {
    let keys = 256;
    println!("one maintenance writer (4 rounds over {keys} tuples) vs 2 reader threads\n");
    let mut rows = Vec::new();
    for scheme in all_schemes(keys) {
        let r = mixed_run(scheme.as_ref(), keys, 2, 128, 4);
        rows.push(vec![
            r.scheme.clone(),
            format!("{:.0}", r.reads_ok as f64 / r.elapsed.as_secs_f64() / 1e3),
            format!("{}/4", r.commits),
            r.cc.reader_blocks.to_string(),
            r.cc.commit_delays.to_string(),
            r.cc.aborts.to_string(),
            (r.io.page_reads + r.io.page_writes).to_string(),
            r.storage_bytes.to_string(),
        ]);
    }
    print_table(
        &[
            "scheme",
            "reads/ms",
            "commits",
            "reader blocks",
            "commit delays",
            "aborts",
            "page I/Os",
            "storage B",
        ],
        &rows,
    );
    println!(
        "\n2VNL: zero blocks, zero delays, all commits — and old versions live inside\n\
         the tuples instead of a version pool."
    );
}
