//! The Example 2.1 scenario, end to end: an analyst rolls up sales by city,
//! drills down into San Jose, and — because a maintenance transaction
//! commits between the two queries — would see *inconsistent* totals on any
//! system without session-consistent reads. Under 2VNL the drill-down
//! always adds up.
//!
//! ```sh
//! cargo run --example analyst_sessions
//! ```

use warehouse_2vnl::sql::Params;
use warehouse_2vnl::types::{schema::daily_sales_schema, Date, Row, Value};
use warehouse_2vnl::vnl::VnlTable;

fn sale(city: &str, pl: &str, day: u8, sales: i64) -> Row {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(pl),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

fn main() {
    let table = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();
    table
        .load_initial(&[
            sale("San Jose", "golf equip", 14, 10_000),
            sale("San Jose", "racquetball", 14, 2_500),
            sale("San Jose", "rollerblades", 14, 1_200),
            sale("Berkeley", "racquetball", 14, 12_000),
            sale("Novato", "rollerblades", 13, 8_000),
        ])
        .unwrap();

    // ---- Query 1: the roll-up -------------------------------------------
    let session = table.begin_session();
    let rollup = session
        .query("SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state ORDER BY city")
        .unwrap();
    println!(
        "Roll-up (total sales by city):\n{}",
        rollup.to_table_string()
    );
    let san_jose_total = rollup
        .rows
        .iter()
        .find(|r| r[0] == Value::from("San Jose"))
        .unwrap()[2]
        .as_int()
        .unwrap();

    // ---- Maintenance lands mid-analysis ---------------------------------
    println!("... a maintenance transaction now loads today's sales and commits ...\n");
    let txn = table.begin_maintenance().unwrap();
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = total_sales + 7777 WHERE city = 'San Jose'",
        &Params::new(),
    )
    .unwrap();
    txn.insert(sale("San Jose", "swimming", 15, 999)).unwrap();
    txn.commit().unwrap();

    // ---- Query 2: the drill-down -----------------------------------------
    let drill = session
        .query(
            "SELECT product_line, SUM(total_sales) FROM DailySales \
             WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line ORDER BY product_line",
        )
        .unwrap();
    println!(
        "Drill-down (San Jose by product line):\n{}",
        drill.to_table_string()
    );
    let drill_total: i64 = drill.rows.iter().map(|r| r[1].as_int().unwrap()).sum();

    println!("roll-up said San Jose = {san_jose_total}");
    println!("drill-down adds up to  = {drill_total}");
    assert_eq!(
        san_jose_total, drill_total,
        "2VNL guarantees the session-consistent view"
    );
    println!("consistent ✓ — the analyst never noticed the maintenance transaction");
    session.finish();

    // The same drill-down in a new session shows the refreshed warehouse.
    let fresh = table.begin_session();
    let drill_new = fresh
        .query(
            "SELECT product_line, SUM(total_sales) FROM DailySales \
             WHERE city = 'San Jose' GROUP BY product_line ORDER BY product_line",
        )
        .unwrap();
    println!(
        "\nA new session sees today's numbers:\n{}",
        drill_new.to_table_string()
    );
    fresh.finish();
}
