//! A warehouse with TWO materialized views over the same source feed —
//! a fine-grained daily summary and a coarse city roll-up — refreshed by a
//! single warehouse-wide maintenance transaction. Sessions pin both views
//! at the same version, so cross-view queries always reconcile, even while
//! maintenance runs.
//!
//! ```sh
//! cargo run --release --example multi_view
//! ```

use warehouse_2vnl::types::Date;
use warehouse_2vnl::view::{SummaryViewDef, ViewMaintainer};
use warehouse_2vnl::vnl::WarehouseBuilder;
use warehouse_2vnl::workload::{SalesConfig, SalesGenerator};

fn main() {
    // Two view definitions over the same source-fact schema.
    let daily = SummaryViewDef::new(
        SalesGenerator::source_schema(),
        &["city", "state", "product_line", "date"],
        "amount",
        "total_sales",
    )
    .unwrap();
    let by_city = SummaryViewDef::new(
        SalesGenerator::source_schema(),
        &["city", "state"],
        "amount",
        "total_sales",
    )
    .unwrap();

    let warehouse = WarehouseBuilder::new()
        .unwrap()
        .table("DailySales", daily.summary_schema(), 2)
        .unwrap()
        .table("CitySales", by_city.summary_schema(), 2)
        .unwrap()
        .build();

    let daily_maintainer = ViewMaintainer::new(daily);
    let city_maintainer = ViewMaintainer::new(by_city);
    let mut generator = SalesGenerator::new(
        SalesConfig {
            cities: 12,
            product_lines: 5,
            sales_per_day: 300,
            correction_per_mille: 20,
            seed: 4242,
        },
        Date::ymd(1996, 10, 1),
    );

    for day in 0..5 {
        let session = warehouse.begin_session();
        // Cross-view invariant: summing the fine view by city must equal the
        // coarse view, within one session — even while a maintenance txn is
        // mid-flight below.
        let batch = generator.next_day();
        let txn = warehouse.begin_maintenance().unwrap();
        daily_maintainer
            .propagate(txn.on("DailySales").unwrap(), &batch)
            .unwrap();
        // Check BEFORE the second view is maintained: the session must not
        // see the half-updated warehouse.
        let fine = session
            .query("SELECT SUM(total_sales) FROM DailySales")
            .unwrap();
        let coarse = session
            .query("SELECT SUM(total_sales) FROM CitySales")
            .unwrap();
        assert_eq!(
            fine.rows[0][0], coarse.rows[0][0],
            "views must reconcile inside a session even mid-maintenance"
        );
        city_maintainer
            .propagate(txn.on("CitySales").unwrap(), &batch)
            .unwrap();
        txn.commit().unwrap();
        session.finish();

        // A fresh session sees both views advanced together.
        let s = warehouse.begin_session();
        let fine = s.query("SELECT SUM(total_sales) FROM DailySales").unwrap();
        let coarse = s.query("SELECT SUM(total_sales) FROM CitySales").unwrap();
        assert_eq!(fine.rows[0][0], coarse.rows[0][0]);
        println!(
            "day {day}: both views agree, warehouse total = {}",
            fine.rows[0][0]
        );
        s.finish();
        warehouse.collect_garbage().unwrap();
    }

    // Show a cross-view analysis at the end.
    let s = warehouse.begin_session();
    let top = s
        .query(
            "SELECT city, SUM(total_sales) FROM CitySales GROUP BY city \
             ORDER BY SUM(total_sales) DESC LIMIT 3",
        )
        .unwrap();
    println!("\ntop cities after five days:\n{}", top.to_table_string());
    s.finish();
}
