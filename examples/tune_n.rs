//! Tuning nVNL's `n` for a deployment (§5): given a maintenance schedule
//! (gap `i`, duration `m`) and the session lengths analysts actually run,
//! pick the smallest `n` that guarantees no expirations — validated against
//! exhaustive timeline simulation.
//!
//! ```sh
//! cargo run --example tune_n
//! ```

use warehouse_2vnl::vnl::{choose_n, guaranteed_session_length};
use warehouse_2vnl::workload::empirical_guaranteed_length;

fn main() {
    println!("nVNL tuning for the Figure 2 schedule (i = 60 min gap, m = 23 h maintenance)\n");
    let (i, m) = (60u64, 23 * 60u64);
    println!(
        "{:>16}  {:>3}  {:>18}  {:>18}",
        "session target", "n", "formula guarantee", "simulated"
    );
    for target_hours in [1u64, 4, 12, 24, 48, 96] {
        let target = target_hours * 60;
        let n = choose_n(target, i, m).expect("schedule is non-degenerate");
        let formula = guaranteed_session_length(n, i, m);
        let simulated = empirical_guaranteed_length(i, m, n);
        println!(
            "{:>13} h  {:>3}  {:>14} min  {:>14} min",
            target_hours, n, formula, simulated
        );
        assert!(simulated >= target);
    }
    println!(
        "\nEach extra version buys (i + m) = {} minutes of guaranteed session length\n\
         at ~9 bytes + one pre-update copy per updatable attribute per tuple (§5).",
        i + m
    );
}
