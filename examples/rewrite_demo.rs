//! The §4 query-rewrite layer, shown on real queries: what a stock DBMS
//! would actually execute on behalf of a 2VNL (and 4VNL) reader.
//!
//! ```sh
//! cargo run --example rewrite_demo
//! ```

use warehouse_2vnl::sql::{parse_statement, Statement};
use warehouse_2vnl::types::schema::daily_sales_schema;
use warehouse_2vnl::vnl::{ExtLayout, QueryRewriter};

fn show(rewriter: &QueryRewriter, sql: &str) {
    let Statement::Select(stmt) = parse_statement(sql).unwrap() else {
        panic!("demo queries are SELECTs")
    };
    println!("  reader writes : {sql}");
    println!(
        "  DBMS executes : {}\n",
        rewriter.rewrite_select(&stmt).unwrap()
    );
}

fn main() {
    println!("=== 2VNL rewrite (Example 4.1 and friends) ===\n");
    let r2 = QueryRewriter::new(ExtLayout::new(daily_sales_schema(), 2).unwrap());
    show(
        &r2,
        "SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state",
    );
    show(
        &r2,
        "SELECT product_line, SUM(total_sales) FROM DailySales \
         WHERE city = 'San Jose' AND state = 'CA' GROUP BY product_line",
    );
    show(&r2, "SELECT * FROM DailySales WHERE total_sales > 5000");
    show(
        &r2,
        "SELECT city, MAX(total_sales) FROM DailySales GROUP BY city ORDER BY MAX(total_sales) DESC",
    );

    println!("=== 4VNL rewrite (§5: the CASE walks three version slots) ===\n");
    let r4 = QueryRewriter::new(ExtLayout::new(daily_sales_schema(), 4).unwrap());
    show(
        &r4,
        "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city",
    );

    println!(
        "(the :sessionVN placeholder is bound by the session at execution time;\n\
         non-updatable attributes — here the group-by key — pass through untouched,\n\
         so indexes on them keep working, §4.3)"
    );
}
