//! Quickstart: a 2VNL warehouse table, one maintenance transaction, one
//! reader session — the whole algorithm in forty lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use warehouse_2vnl::types::{schema::daily_sales_schema, Date, Value};
use warehouse_2vnl::vnl::{ReadOutcome, VnlTable};

fn main() {
    // DailySales(city, state, product_line, date, total_sales) with the
    // group-by attributes as unique key and total_sales updatable — the
    // paper's running example (Example 2.1 / Figure 3).
    let table = VnlTable::create_named("DailySales", daily_sales_schema(), 2).unwrap();

    // Bulk-load yesterday's state.
    table
        .load_initial(&[
            vec![
                Value::from("San Jose"),
                Value::from("CA"),
                Value::from("golf equip"),
                Value::from(Date::ymd(1996, 10, 14)),
                Value::from(10_000),
            ],
            vec![
                Value::from("Berkeley"),
                Value::from("CA"),
                Value::from("racquetball"),
                Value::from(Date::ymd(1996, 10, 14)),
                Value::from(12_000),
            ],
        ])
        .unwrap();

    // An analyst begins a session...
    let session = table.begin_session();
    let before = session
        .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city")
        .unwrap();
    println!(
        "analyst sees (before maintenance):\n{}",
        before.to_table_string()
    );

    // ...and the maintenance transaction runs CONCURRENTLY: no locks, no
    // blocking, on either side.
    let txn = table.begin_maintenance().unwrap();
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = total_sales + 5000 WHERE city = 'San Jose'",
        &warehouse_2vnl::sql::Params::new(),
    )
    .unwrap();
    txn.commit().unwrap();

    // The analyst's view is unchanged — same session, same answers.
    let after = session
        .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city")
        .unwrap();
    assert_eq!(before.rows, after.rows);
    assert!(matches!(session.status(), ReadOutcome::Live));
    println!(
        "analyst still sees (after concurrent maintenance commit):\n{}",
        after.to_table_string()
    );
    session.finish();

    // A new session picks up the committed state.
    let fresh = table.begin_session();
    let now = fresh
        .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city")
        .unwrap();
    println!("a NEW session sees:\n{}", now.to_table_string());
    fresh.finish();
}
