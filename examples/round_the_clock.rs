//! A 24h-available warehouse, simulated over two weeks: daily source
//! batches flow through incremental view maintenance into a 2VNL summary
//! table while analyst sessions read around the clock; logically-deleted
//! tuples are garbage-collected; session expirations are counted and then
//! eliminated by switching to 3VNL.
//!
//! ```sh
//! cargo run --release --example round_the_clock
//! ```

use warehouse_2vnl::types::Date;
use warehouse_2vnl::view::{SummaryViewDef, ViewMaintainer};
use warehouse_2vnl::vnl::{gc, VnlError};
use warehouse_2vnl::workload::{SalesConfig, SalesGenerator};

fn run(n: usize) -> (u64, u64) {
    let def = SummaryViewDef::new(
        SalesGenerator::source_schema(),
        &["city", "state", "product_line", "date"],
        "amount",
        "total_sales",
    )
    .unwrap();
    let table = def.create_table("DailySales", n).unwrap();
    let maintainer = ViewMaintainer::new(def);
    let mut generator = SalesGenerator::new(
        SalesConfig {
            cities: 30,
            product_lines: 6,
            sales_per_day: 400,
            correction_per_mille: 40,
            seed: 1997,
        },
        Date::ymd(1996, 10, 1),
    );

    let mut expired = 0u64;
    let mut completed = 0u64;
    let mut reclaimed = 0u64;
    // One long-lived analyst session is (re)opened as needed; each "day"
    // interleaves maintenance with reads.
    let mut session = table.begin_session();
    for _day in 0..14 {
        // Morning analysis: two queries that must be mutually consistent.
        for _ in 0..3 {
            let q1 = session
                .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city");
            match q1 {
                Ok(rollup) => {
                    let total: i64 = rollup.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
                    let q2 = session
                        .query("SELECT SUM(total_sales) FROM DailySales")
                        .unwrap();
                    assert_eq!(q2.rows[0][0].as_int().unwrap_or(0), total);
                    completed += 1;
                }
                Err(VnlError::SessionExpired { .. }) => {
                    expired += 1;
                    session.finish();
                    session = table.begin_session();
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        // The daily maintenance transaction propagates the day's batch.
        let batch = generator.next_day();
        let txn = table.begin_maintenance().unwrap();
        maintainer.propagate(&txn, &batch).unwrap();
        txn.commit().unwrap();
        // Nightly garbage collection.
        reclaimed += gc::collect(&table).unwrap().reclaimed;
    }
    session.finish();
    println!(
        "n={n}: {completed} consistent analyses, {expired} session renewals, \
         {} tuples live, {reclaimed} reclaimed by GC",
        table.storage().len(),
    );
    (completed, expired)
}

fn main() {
    println!("two simulated weeks of round-the-clock operation\n");
    let (_, expired2) = run(2);
    let (_, expired3) = run(3);
    println!(
        "\nswitching 2VNL -> 3VNL reduced session renewals from {expired2} to {expired3} \
         (§5: more versions, longer guaranteed sessions)"
    );
    assert!(expired3 <= expired2);
}
