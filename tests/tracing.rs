//! Causal-trace well-formedness under real concurrency, plus a smoke
//! test of the introspection server and flight recorder — the CI `trace`
//! job's correctness half (the other half is the E24 overhead gate).
//!
//! The property: replaying every collected trace event in global `seq`
//! order, span nesting is well formed — each `SpanStart`'s parent is an
//! open span on the same trace, each `Instant` is attributed to an open
//! span, each `SpanEnd` matches an open span, and when the workload has
//! drained, only roots (forgotten-transaction crash simulations) may
//! remain open. This holds across threads: parallel-scan partition spans
//! open on worker threads under a context captured on the issuing thread.

use std::collections::BTreeMap;
use std::sync::Mutex;
use warehouse_2vnl::obs;
use warehouse_2vnl::obs::trace::{self, EventKind};
use warehouse_2vnl::sql::Params;
use warehouse_2vnl::types::schema::daily_sales_schema;
use warehouse_2vnl::types::{Date, Value};
use warehouse_2vnl::vnl::{recovery, VnlTable};

/// Serializes the two tests: both read the process-global trace rings and
/// the recorder's armed state, and the replay's end-state assertion would
/// otherwise race against the smoke test's in-flight spans.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn sales_row(city: &str, line: &str, day: u8, sales: i64) -> Vec<Value> {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from(line),
        Value::from(Date::ymd(1996, 10, day)),
        Value::from(sales),
    ]
}

/// Sized to span several heap pages: `scan_parallel` only spawns worker
/// threads (and their partition spans) when the heap has more pages than
/// workers.
fn build_table(cities: usize) -> VnlTable {
    let table =
        VnlTable::create_named("DailySales", daily_sales_schema(), 2).expect("create table");
    let rows: Vec<Vec<Value>> = (0..cities)
        .flat_map(|c| {
            (1..=28u8).map(move |d| sales_row(&format!("city-{c:02}"), "line-00", d, 100))
        })
        .collect();
    table.load_initial(&rows).expect("load");
    table
}

/// Readers hammering `scan_parallel` while the main thread runs
/// maintenance rounds — the exact shape that exercises cross-thread span
/// parenting (issuing thread captures the context, worker threads open
/// partition spans under it).
fn concurrent_workload(table: &VnlTable, cities: usize) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use warehouse_2vnl::vnl::VnlError;
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| {
                // Bounded above (each iteration costs ring events and the
                // replay needs the rings not to wrap) and below (the
                // maintenance rounds may drain before the readers warm up,
                // and the replay wants a known minimum of sessions).
                for i in 0..40 {
                    if i >= 4 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let session = table.begin_session();
                    let rows = std::sync::atomic::AtomicUsize::new(0);
                    let scanned = session.scan_parallel(4, |_, _row| {
                        rows.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    });
                    session.finish();
                    match scanned {
                        // Expiration is the §4.1 outcome this workload is
                        // *supposed* to provoke: n=2 versions, maintenance
                        // committing under the scan.
                        Ok(()) | Err(VnlError::SessionExpired { .. }) => {}
                        Err(e) => panic!("scan_parallel: {e:?}"),
                    }
                }
            });
        }
        // `stop` is set even if a round fails, so a maintenance failure
        // cannot strand the reader threads in their loops.
        let rounds = || -> Result<(), VnlError> {
            for round in 0..6 {
                let txn = table.begin_maintenance()?;
                for c in 0..cities {
                    txn.update_row(&sales_row(&format!("city-{c:02}"), "line-00", 1, round))?;
                }
                txn.commit()?;
            }
            Ok(())
        }();
        stop.store(true, Ordering::Relaxed);
        rounds.expect("maintenance rounds");
    });
}

#[test]
fn span_nesting_is_well_formed_under_parallel_scan_and_maintenance() {
    let _guard = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !obs::is_enabled() {
        return; // disabled builds compile every trace site to a no-op
    }

    let table = build_table(8);
    concurrent_workload(&table, 8);

    // The replay below assumes no events were lost; keep the workload
    // sized well under THREAD_RING_CAPACITY per thread.
    assert!(
        !trace::any_ring_wrapped(),
        "workload overflowed a per-thread ring; shrink it or grow the ring"
    );

    let mut events = trace::collect();
    events.sort_by_key(|e| e.seq);
    assert!(!events.is_empty(), "workload produced no trace events");

    // span_id → (trace_id, parent_id, name) for every currently-open span.
    let mut open: BTreeMap<u64, (u64, u64, &str)> = BTreeMap::new();
    let mut saw_cross_thread_partition = false;
    let mut session_traces: std::collections::BTreeSet<u64> = Default::default();

    for e in &events {
        if e.trace_id == 0 {
            continue; // unattributed events carry no nesting obligations
        }
        match e.kind {
            EventKind::SpanStart => {
                if e.parent_id != 0 {
                    let parent = open.get(&e.parent_id).unwrap_or_else(|| {
                        panic!(
                            "span {} ({}) started under closed/unknown parent {}",
                            e.span_id, e.name, e.parent_id
                        )
                    });
                    assert_eq!(
                        parent.0, e.trace_id,
                        "span {} ({}) crosses traces: parent {} is on trace {}",
                        e.span_id, e.name, e.parent_id, parent.0
                    );
                    if e.name == "storage.scan.partition" && parent.2 == "vnl.read.scan_parallel" {
                        saw_cross_thread_partition = true;
                    }
                } else if e.name == "vnl.session" {
                    session_traces.insert(e.trace_id);
                }
                open.insert(e.span_id, (e.trace_id, e.parent_id, e.name));
            }
            EventKind::SpanEnd => {
                let (trace_id, _, _) = open.remove(&e.span_id).unwrap_or_else(|| {
                    panic!("span {} ({}) ended but was never open", e.span_id, e.name)
                });
                assert_eq!(
                    trace_id, e.trace_id,
                    "span {} ended on the wrong trace",
                    e.span_id
                );
            }
            EventKind::Instant => {
                if e.span_id != 0 {
                    let (trace_id, _, _) = open.get(&e.span_id).unwrap_or_else(|| {
                        panic!("instant {} attributed to closed span {}", e.name, e.span_id)
                    });
                    assert_eq!(
                        *trace_id, e.trace_id,
                        "instant {} on the wrong trace",
                        e.name
                    );
                }
            }
        }
    }

    // Everything non-root balanced. Roots may outlive the replay window:
    // a `mem::forget`-ten transaction (the crash model, exercised by the
    // smoke test below when it runs first) deliberately never closes.
    for (span, (_, parent, name)) in &open {
        assert_eq!(
            *parent, 0,
            "non-root span {span} ({name}) still open after the workload drained"
        );
    }

    assert!(
        saw_cross_thread_partition,
        "no storage.scan.partition span was parented under vnl.read.scan_parallel — \
         cross-thread context propagation is broken"
    );
    assert!(
        session_traces.len() >= 12,
        "expected one distinct trace per reader session (3 threads × ≥4 sessions), saw {}",
        session_traces.len()
    );
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect introspection server");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or("").to_string();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn introspection_server_and_flight_recorder_smoke() {
    let _guard = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !obs::is_enabled() {
        return;
    }

    // --- live introspection over a real workload ---
    let table = build_table(4);
    concurrent_workload(&table, 4);

    let server = obs::IntrospectionServer::start("127.0.0.1:0").expect("start server");
    let addr = server.addr();
    let (status, metrics) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "/metrics: {status}");
    assert!(
        metrics.contains("vnl_maintenance_arm_update_saving_pre"),
        "/metrics missing maintenance counters"
    );
    let (status, health) = http_get(addr, "/health");
    assert!(status.contains("200"), "/health: {status}");
    assert!(health.contains("\"status\""), "/health not JSON: {health}");
    let (status, _) = http_get(addr, "/snapshot");
    assert!(status.contains("200"), "/snapshot: {status}");

    // A live trace id from the rings must be servable.
    let trace_id = trace::collect()
        .iter()
        .map(|e| e.trace_id)
        .find(|&t| t != 0)
        .expect("workload produced traced events");
    let (status, body) = http_get(addr, &format!("/traces/{trace_id}"));
    assert!(status.contains("200"), "/traces/{trace_id}: {status}");
    assert!(body.contains("\"trace\""), "trace body: {body}");
    server.stop();

    // --- flight recorder: a forgotten txn leaves its causal chain open,
    // and recovery dumps it ---
    let dir = std::env::temp_dir().join(format!("wh-trace-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create flight dir");
    obs::recorder::arm(&dir);

    let txn = table.begin_maintenance().expect("begin");
    txn.execute_sql(
        "UPDATE DailySales SET total_sales = 0 WHERE product_line = 'line-00'",
        &Params::new(),
    )
    .expect("update");
    std::mem::forget(txn); // simulated crash: the txn root span stays open
    let report = recovery::recover(&table).expect("recover");
    obs::recorder::disarm();
    assert!(report.pending_found > 0, "recovery saw no pending tuples");

    let dumps: Vec<String> = std::fs::read_dir(&dir)
        .expect("read flight dir")
        .filter_map(|e| std::fs::read_to_string(e.ok()?.path()).ok())
        .filter(|text| text.starts_with("{\"schema\":\"wh-flight-1\""))
        .collect();
    assert!(
        !dumps.is_empty(),
        "recovery produced no flight-recorder dump"
    );
    let dump = &dumps[0];
    assert!(
        dump.contains("\"reason\":\"recovery_entry\""),
        "dump missing trigger reason"
    );
    // The causal chain: the forgotten txn's root span and its phase spans
    // must be visible in the dump.
    assert!(
        dump.contains("vnl.txn"),
        "dump missing the open txn root span"
    );
    assert!(
        dump.contains("vnl.recovery"),
        "dump missing the recovery span"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
