//! The paper's headline claims, asserted end-to-end across crates.

use warehouse_2vnl::vnl::{choose_n, guaranteed_session_length};
use warehouse_2vnl::workload::empirical_guaranteed_length;

#[test]
fn claim_1_2_no_locks_no_blocking_serializable() {
    // §1.2: "(i) readers and the maintenance transaction execute
    // concurrently without blocking, (ii) readers see a consistent database
    // state throughout an entire session, (iii) without the overhead of
    // placing locks." Driven through the common scheme interface so blocking
    // would be counted if it happened.
    use warehouse_2vnl::bench::mixed_run;
    use warehouse_2vnl::vnl::VnlStore;
    let store = VnlStore::populate(128, 2).unwrap();
    let report = mixed_run(&store, 128, 3, 64, 4);
    assert_eq!(report.commits, 4, "maintenance always completes");
    assert_eq!(report.cc.total_blocks(), 0, "no blocking, ever");
    assert_eq!(report.cc.aborts, 0, "no lock-timeout aborts");
    assert!(report.reads_ok > 0, "readers made progress throughout");
}

#[test]
fn claim_section_5_choose_n_validated_by_simulation() {
    // §5: n is tunable for the expected session/maintenance pattern. For a
    // spread of schedules and target session lengths, the chosen n's
    // guarantee holds in exhaustive simulation, and n−1 would not suffice.
    for (i, m) in [(30u64, 60u64), (60, 1380), (120, 240)] {
        for target in [10u64, 200, 2_000] {
            let n = choose_n(target, i, m).unwrap();
            let simulated = empirical_guaranteed_length(i, m, n);
            assert!(
                simulated >= target,
                "choose_n({target}, {i}, {m}) = {n}, but simulation only guarantees {simulated}"
            );
            if n > 2 {
                let weaker = empirical_guaranteed_length(i, m, n - 1);
                // Discretization grants at most +1 over the formula.
                assert!(
                    weaker < target + 2,
                    "n - 1 = {} should not cover {target} (covers {weaker})",
                    n - 1
                );
            }
            assert!(
                guaranteed_session_length(n, i, m) >= target,
                "formula agrees"
            );
        }
    }
}

#[test]
fn claim_storage_overhead_figure_3() {
    // §3.1/Figure 3, through the public API end to end.
    use warehouse_2vnl::vnl::VnlTable;
    let t = VnlTable::create_from_sql(
        "CREATE TABLE DailySales (
           city CHAR(20), state CHAR(2), product_line CHAR(12), date DATE,
           total_sales INT UPDATABLE,
           PRIMARY KEY (city, state, product_line, date))",
        2,
    )
    .unwrap();
    let o = t.layout().overhead();
    assert_eq!((o.base_tuple_bytes, o.ext_tuple_bytes), (42, 51));
}

#[test]
fn claim_24h_availability_with_bounded_expiration() {
    // §1.2 "possible to make a warehouse available to readers 24 hours a
    // day": in the Figure 2 schedule, the 2VNL regime is always readable
    // and 3VNL removes expirations for ≤4h sessions entirely.
    use warehouse_2vnl::workload::{availability_comparison, PeriodicSchedule};
    let r2 = availability_comparison(PeriodicSchedule::figure_2(), 2, 30 * 1440, 2_000, 240, 3);
    let r3 = availability_comparison(PeriodicSchedule::figure_2(), 3, 30 * 1440, 2_000, 240, 3);
    assert_eq!(r2.vnl_availability, 1.0);
    assert!(r2.nightly_availability < 0.1);
    assert!(r2.vnl_expired > 0); // 2VNL pays a small expiration tax...
    assert_eq!(r3.vnl_expired, 0); // ...which 3VNL eliminates here, as
                                   // guaranteed_session_length(3, 60, 1380) = 4260 > 240.
    assert!(guaranteed_session_length(3, 60, 1380) > 240);
}
