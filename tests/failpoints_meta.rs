//! Meta-test: the failpoint catalogs are mutually exhaustive.
//!
//! Three layers name failpoints: the central `wh_types::fault::REGISTRY`,
//! the per-crate `FAILPOINTS` consts the crash-matrix driver sweeps, and
//! the `fail_point!` call sites in the source. This test pins the first
//! two to each other (and the crash-matrix catalog to both); `wh-analyze`
//! pins the call sites to the registry by scanning the tree.

use std::collections::BTreeSet;

fn registry() -> BTreeSet<&'static str> {
    wh_types::fault::REGISTRY.iter().copied().collect()
}

fn crate_catalogs() -> BTreeSet<&'static str> {
    wh_storage::FAILPOINTS
        .iter()
        .chain(wh_vnl::FAILPOINTS)
        .chain(wh_cc::FAILPOINTS)
        .copied()
        .collect()
}

#[test]
fn registry_is_sorted_and_unique() {
    let reg = wh_types::fault::REGISTRY;
    assert!(
        reg.windows(2).all(|w| w[0] < w[1]),
        "REGISTRY must stay sorted and duplicate-free; found disorder in {reg:?}"
    );
}

#[test]
fn per_crate_catalogs_union_to_the_registry() {
    let reg = registry();
    let crates = crate_catalogs();
    let missing: Vec<_> = reg.difference(&crates).collect();
    let unregistered: Vec<_> = crates.difference(&reg).collect();
    assert!(
        missing.is_empty() && unregistered.is_empty(),
        "central registry and per-crate FAILPOINTS diverged:\n  in REGISTRY \
         but no crate declares: {missing:?}\n  declared by a crate but not \
         in REGISTRY: {unregistered:?}"
    );
}

#[test]
fn per_crate_catalogs_do_not_overlap() {
    let total = wh_storage::FAILPOINTS.len() + wh_vnl::FAILPOINTS.len() + wh_cc::FAILPOINTS.len();
    assert_eq!(
        total,
        crate_catalogs().len(),
        "a failpoint name is declared by more than one crate"
    );
}

// The crash-matrix driver only compiles under `failpoints` (the
// fault-matrix CI job runs this test with the feature on).
#[cfg(feature = "failpoints")]
#[test]
fn repair_cell_points_are_registered_vnl_points() {
    let reg = registry();
    let vnl: BTreeSet<&'static str> = wh_vnl::FAILPOINTS.iter().copied().collect();
    for p in wh_vnl::crashmatrix::REPAIR_POINTS {
        assert!(reg.contains(p), "repair-cell point {p} is not in REGISTRY");
        assert!(
            vnl.contains(p),
            "repair-cell point {p} is not declared by wh_vnl::FAILPOINTS"
        );
    }
}

#[cfg(feature = "failpoints")]
#[test]
fn crash_matrix_sweeps_the_whole_registry() {
    let swept: BTreeSet<&'static str> = wh_vnl::crashmatrix::catalog().into_iter().collect();
    assert_eq!(
        swept,
        registry(),
        "the crash-matrix catalog must sweep exactly the central registry"
    );
}
