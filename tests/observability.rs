//! Cross-crate observability: after an E18-shaped reader/maintenance
//! workload, one `Registry::snapshot()` must report every layer — latch
//! waits from storage, reader staleness and decision-table arms from the
//! 2VNL layer, GC reclaim latency, and the per-scheme lock-wait histograms
//! from the §6 baselines. This is the PR's acceptance gate for the metric
//! plumbing: each assertion fails if the corresponding instrumentation site
//! stops reporting.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use warehouse_2vnl::cc::{ConcurrencyScheme, S2plStore};
use warehouse_2vnl::obs;
use warehouse_2vnl::storage::HeapFile;
use warehouse_2vnl::types::schema::daily_sales_schema;
use warehouse_2vnl::types::{Date, Value};
use warehouse_2vnl::vnl::{gc, VnlTable};

fn sales_row(city: &str, sales: i64) -> Vec<Value> {
    vec![
        Value::from(city),
        Value::from("CA"),
        Value::from("golf equip"),
        Value::from(Date::ymd(1996, 10, 14)),
        Value::from(sales),
    ]
}

/// Force a measured latch wait: one thread parks inside `HeapFile::modify`
/// (holding the page's write latch) until a reader has been seen blocking
/// on `read`, which must then land in `storage.latch.read_wait_ns`.
fn force_latch_contention() {
    let heap =
        Arc::new(HeapFile::new(16, Arc::new(warehouse_2vnl::storage::IoStats::new())).unwrap());
    let rid = heap.insert(&[7u8; 16]).unwrap();
    let holding = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let writer = {
            let heap = Arc::clone(&heap);
            let holding = Arc::clone(&holding);
            let release = Arc::clone(&release);
            s.spawn(move || {
                heap.modify(rid, |current| {
                    holding.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(current.to_vec())
                })
                .unwrap();
            })
        };
        while !holding.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let reader = {
            let heap = Arc::clone(&heap);
            s.spawn(move || {
                // Blocks on the page latch until the writer releases.
                heap.read(rid).unwrap();
            })
        };
        // Keep the latch held long enough that the reader is certainly
        // parked on it, then let everyone go.
        std::thread::sleep(Duration::from_millis(20));
        release.store(true, Ordering::SeqCst);
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

#[test]
fn registry_reports_every_layer_after_workload() {
    // --- 2VNL: maintenance arms, GC reclaim, reader staleness ---
    let table = VnlTable::create(daily_sales_schema(), 2).unwrap();
    let cities: Vec<String> = (0..8).map(|i| format!("city-{i}")).collect();
    table
        .load_initial(&cities.iter().map(|c| sales_row(c, 100)).collect::<Vec<_>>())
        .unwrap();

    // A pinned session reads across a committing maintenance transaction,
    // so its staleness (currentVN − sessionVN) becomes nonzero.
    let pinned = table.begin_session();
    let txn = table.begin_maintenance().unwrap();
    for c in &cities[1..] {
        txn.update_row(&sales_row(c, 200)).unwrap(); // Table 3 row 1 arm
    }
    // cities[0] is untouched by this txn, so its delete takes Table 4 row 1.
    txn.delete_row(&sales_row(&cities[0], 0)).unwrap();
    txn.commit().unwrap();
    let rows = pinned.scan().unwrap(); // staleness = 1, still live (n = 2)
    assert_eq!(rows.len(), cities.len(), "pinned session sees its version");
    let staleness_gauge = obs::registry::global()
        .snapshot()
        .gauge("vnl.reader.staleness");
    pinned.finish();

    // With no session pinning the pre-delete version, GC reclaims.
    let report = gc::collect(&table).unwrap();
    assert_eq!(report.reclaimed, 1);

    // --- storage: a deterministic latch wait ---
    force_latch_contention();

    // --- cc baseline: a writer blocking behind a pinned S lock ---
    let store = S2plStore::populate(4, Duration::from_millis(5)).unwrap();
    let mut pin = store.begin_reader();
    pin.read(0).unwrap();
    let mut w = store.begin_writer();
    let _ = w.update(0, 1); // times out against the S lock → recorded wait
    let _ = w.abort();
    pin.finish();

    if !obs::is_enabled() {
        return; // disabled builds compile every site to a no-op
    }

    let snap = obs::registry::global().snapshot();

    // Latch-wait histogram saw the forced contention.
    assert!(
        snap.histogram("storage.latch.read_wait_ns").count() >= 1,
        "latch read-wait histogram empty"
    );
    // The pinned reader observed staleness 1 while it was live.
    assert_eq!(staleness_gauge, 1, "reader staleness gauge");
    assert!(
        snap.histogram("vnl.reader.staleness_vns").count() >= 1,
        "staleness histogram empty"
    );
    // Maintenance decision-table arms fired.
    assert!(
        snap.counter("vnl.maintenance.arm.update_saving_pre") >= (cities.len() - 1) as u64,
        "update arm counter"
    );
    assert!(
        snap.counter("vnl.maintenance.arm.mark_deleted") >= 1,
        "delete arm counter"
    );
    // GC reclaim latency recorded.
    assert!(
        snap.histogram("vnl.gc.reclaim_ns").count() >= 1,
        "gc reclaim histogram empty"
    );
    assert!(snap.counter("vnl.gc.reclaimed") >= 1);
    // Per-scheme lock waits from the S2PL baseline.
    assert!(
        snap.histogram("cc.s2pl.writer_wait_ns").count() >= 1
            || snap.counter("cc.s2pl.aborts") >= 1,
        "s2pl scheme reported neither waits nor aborts"
    );

    // The encoders cover everything the workload produced.
    let json = snap.to_json();
    assert!(json.contains("vnl.maintenance.arm.update_saving_pre"));
    let prom = snap.to_prometheus();
    assert!(prom.contains("vnl_gc_reclaimed_total"));
}
