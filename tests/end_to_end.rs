//! Cross-crate integration: the full warehouse pipeline — synthetic source
//! feed → net-effect deltas → incremental view maintenance → 2VNL summary
//! table — exercised with concurrent analyst sessions, garbage collection,
//! and rollback, across multiple simulated days.

use std::sync::Arc;
use warehouse_2vnl::types::{Date, Value};
use warehouse_2vnl::view::{SourceDelta, SummaryViewDef, ViewMaintainer};
use warehouse_2vnl::vnl::{gc, VnlError};
use warehouse_2vnl::workload::{SalesConfig, SalesGenerator};

fn view_def() -> SummaryViewDef {
    SummaryViewDef::new(
        SalesGenerator::source_schema(),
        &["city", "state", "product_line", "date"],
        "amount",
        "total_sales",
    )
    .unwrap()
}

fn generator(seed: u64) -> SalesGenerator {
    SalesGenerator::new(
        SalesConfig {
            cities: 20,
            product_lines: 5,
            sales_per_day: 300,
            correction_per_mille: 30,
            seed,
        },
        Date::ymd(1996, 10, 1),
    )
}

/// Apply a batch directly to an in-memory model for cross-checking.
fn model_apply(model: &mut std::collections::HashMap<String, (i64, i64)>, batch: &[SourceDelta]) {
    for d in batch {
        let (row, sign) = match d {
            SourceDelta::Insert(r) => (r, 1i64),
            SourceDelta::Delete(r) => (r, -1i64),
        };
        let key = format!("{}|{}|{}|{}", row[0], row[1], row[2], row[3]);
        let e = model.entry(key.clone()).or_insert((0, 0));
        e.0 += sign * row[4].as_int().unwrap();
        e.1 += sign;
        if e.1 <= 0 {
            model.remove(&key);
        }
    }
}

#[test]
fn week_of_maintenance_matches_reference_model() {
    let def = view_def();
    let table = def.create_table("DailySales", 2).unwrap();
    let maintainer = ViewMaintainer::new(def);
    let mut gen = generator(11);
    let mut model = std::collections::HashMap::new();
    for _day in 0..7 {
        let batch = gen.next_day();
        let txn = table.begin_maintenance().unwrap();
        maintainer.propagate(&txn, &batch).unwrap();
        txn.commit().unwrap();
        model_apply(&mut model, &batch);
        // Cross-check the warehouse against the reference model.
        let session = table.begin_session();
        let rows = session.scan().unwrap();
        assert_eq!(rows.len(), model.len(), "group count diverged");
        for r in rows {
            let key = format!("{}|{}|{}|{}", r[0], r[1], r[2], r[3]);
            let (sum, count) = model[&key];
            assert_eq!(r[4].as_int().unwrap(), sum, "sum diverged for {key}");
            assert_eq!(r[5].as_int().unwrap(), count, "count diverged for {key}");
        }
        session.finish();
    }
}

#[test]
fn gc_reclaims_without_disturbing_history() {
    let def = view_def();
    let table = def.create_table("DailySales", 2).unwrap();
    let maintainer = ViewMaintainer::new(def);
    let mut gen = generator(23);
    let mut total_reclaimed = 0;
    for _day in 0..10 {
        let batch = gen.next_day();
        let txn = table.begin_maintenance().unwrap();
        maintainer.propagate(&txn, &batch).unwrap();
        txn.commit().unwrap();
        total_reclaimed += gc::collect(&table).unwrap().reclaimed;
        // After GC, a fresh session still reads a consistent state.
        let s = table.begin_session();
        let total: i64 = s
            .scan()
            .unwrap()
            .iter()
            .map(|r| r[4].as_int().unwrap())
            .sum();
        assert!(total > 0);
        s.finish();
    }
    // With corrections in the feed, some groups must have emptied & been
    // reclaimed along the way.
    assert!(total_reclaimed > 0, "expected the GC to find garbage");
}

#[test]
fn aborted_day_leaves_no_trace_in_the_pipeline() {
    let def = view_def();
    let table = def.create_table("DailySales", 2).unwrap();
    let maintainer = ViewMaintainer::new(def);
    let mut gen = generator(31);
    // Day 1 commits.
    let txn = table.begin_maintenance().unwrap();
    maintainer.propagate(&txn, &gen.next_day()).unwrap();
    txn.commit().unwrap();
    let reference: Vec<_> = {
        let s = table.begin_session();
        let r = s.scan().unwrap();
        s.finish();
        r
    };
    // Day 2 aborts mid-flight.
    let txn = table.begin_maintenance().unwrap();
    maintainer.propagate(&txn, &gen.next_day()).unwrap();
    txn.abort().unwrap();
    let s = table.begin_session();
    let mut after = s.scan().unwrap();
    s.finish();
    let mut want = reference.clone();
    after.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    assert_eq!(after, want);
    // Day 2 retried then commits cleanly.
    let txn = table.begin_maintenance().unwrap();
    maintainer.propagate(&txn, &gen.next_day()).unwrap();
    txn.commit().unwrap();
}

#[test]
fn analysts_stay_consistent_through_a_week_with_threads() {
    let def = view_def();
    let table = Arc::new(def.create_table("DailySales", 3).unwrap());
    let maintainer = ViewMaintainer::new(def);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|s| {
        // Maintenance thread: 7 daily batches.
        {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut gen = generator(47);
                for _ in 0..7 {
                    let txn = table.begin_maintenance().unwrap();
                    maintainer.propagate(&txn, &gen.next_day()).unwrap();
                    txn.commit().unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::SeqCst);
            });
        }
        // Analyst threads: sum-by-city must equal the grand total within a
        // session, forever.
        for _ in 0..3 {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let session = table.begin_session();
                    let per_city = session
                        .query("SELECT city, SUM(total_sales) FROM DailySales GROUP BY city");
                    let grand = session.query("SELECT SUM(total_sales) FROM DailySales");
                    // The session can honestly expire between the two
                    // queries (the detector fires at query time); only an
                    // expiration-free pair must agree.
                    match (per_city, grand) {
                        (Ok(rollup), Ok(grand)) => {
                            let total: i64 =
                                rollup.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
                            assert_eq!(
                                grand.rows[0][0],
                                if total == 0 {
                                    Value::Null
                                } else {
                                    Value::from(total)
                                },
                                "drill-down must match roll-up inside one session"
                            );
                        }
                        (Err(VnlError::SessionExpired { .. }), _)
                        | (_, Err(VnlError::SessionExpired { .. })) => {}
                        (Err(e), _) | (_, Err(e)) => panic!("unexpected: {e}"),
                    }
                    session.finish();
                }
            });
        }
    });
}

#[test]
fn query_rewrite_agrees_with_extraction_at_scale() {
    let def = view_def();
    let table = def.create_table("DailySales", 2).unwrap();
    let maintainer = ViewMaintainer::new(def);
    let mut gen = generator(59);
    let txn = table.begin_maintenance().unwrap();
    maintainer.propagate(&txn, &gen.next_day()).unwrap();
    txn.commit().unwrap();
    let session = table.begin_session();
    // Second batch in flight while we compare paths.
    let txn = table.begin_maintenance().unwrap();
    maintainer.propagate(&txn, &gen.next_day()).unwrap();
    for sql in [
        "SELECT city, SUM(total_sales) FROM DailySales GROUP BY city ORDER BY city",
        "SELECT COUNT(*) FROM DailySales",
        "SELECT product_line, MIN(total_sales), MAX(total_sales) FROM DailySales GROUP BY product_line ORDER BY product_line",
    ] {
        let a = session.query(sql).unwrap();
        let b = session.query_via_rewrite(sql).unwrap();
        assert_eq!(a.rows, b.rows, "paths diverged for {sql}");
    }
    txn.commit().unwrap();
    session.finish();
}

#[test]
fn nvnl_keeps_a_session_alive_across_three_days() {
    let def = view_def();
    let table = def.create_table("DailySales", 4).unwrap();
    let maintainer = ViewMaintainer::new(def);
    let mut gen = generator(61);
    let txn = table.begin_maintenance().unwrap();
    maintainer.propagate(&txn, &gen.next_day()).unwrap();
    txn.commit().unwrap();

    let session = table.begin_session();
    let day1_total = session
        .query("SELECT SUM(total_sales) FROM DailySales")
        .unwrap()
        .rows[0][0]
        .clone();
    // Three more maintenance days under 4VNL: the session survives all of
    // them and keeps answering with day-1 numbers.
    for _ in 0..3 {
        let txn = table.begin_maintenance().unwrap();
        maintainer.propagate(&txn, &gen.next_day()).unwrap();
        txn.commit().unwrap();
        let again = session
            .query("SELECT SUM(total_sales) FROM DailySales")
            .unwrap()
            .rows[0][0]
            .clone();
        assert_eq!(again, day1_total);
    }
    session.finish();
}
